//! Whole-tree integration tests for the analyzer: the lexer must
//! round-trip every real source file, the analyzer must be a
//! deterministic pure function of the tree, the real tree must audit
//! clean, and the fixture corpus must score 100%.

#![forbid(unsafe_code)]

use farmem_audit::{
    audit_tree, lex, run_fixture_corpus, source_files, workspace_root, AuditConfig, PASSES,
};

/// Every token's span concatenates back to the original source, and
/// the masked text preserves byte length and newline positions — the
/// two properties every pass leans on for line numbers.
#[test]
fn lexer_round_trips_every_workspace_file() {
    let root = workspace_root();
    let files = source_files(&root);
    assert!(files.len() > 50, "walker found only {} files", files.len());
    for path in files {
        let src = std::fs::read_to_string(&path).expect("read source");
        let lx = lex::lex(&src);
        let rebuilt: String = lx.tokens.iter().map(|t| lx.text(t)).collect();
        assert_eq!(rebuilt, src, "token spans must tile {}", path.display());
        let masked = lx.masked();
        assert_eq!(masked.len(), src.len(), "masked length drifted in {}", path.display());
        let nl = |s: &str| {
            s.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i).collect::<Vec<_>>()
        };
        assert_eq!(nl(&masked), nl(&src), "masked newlines moved in {}", path.display());
    }
}

/// Two independent runs over the same tree render byte-identical
/// findings JSON — no iteration-order or hashing nondeterminism.
#[test]
fn audit_is_deterministic() {
    let root = workspace_root();
    let cfg = AuditConfig::default();
    let a = audit_tree(&root, &cfg).expect("audit tree");
    let b = audit_tree(&root, &cfg).expect("audit tree");
    assert_eq!(a.to_json(), b.to_json(), "two audits of the same tree diverged");
}

/// The committed tree carries no unjustified violations: every finding
/// class is either fixed or annotated with a reasoned exception.
#[test]
fn real_tree_audits_clean() {
    let root = workspace_root();
    let report = audit_tree(&root, &AuditConfig::default()).expect("audit tree");
    assert!(
        report.clean(),
        "workspace must audit clean, found:\n{}",
        report.render_text()
    );
}

/// Mutation score: every seeded-violation fixture is caught by every
/// pass it seeds, every clean fixture stays clean, and each of the
/// nine passes is exercised by at least one mutant.
#[test]
fn fixture_corpus_scores_100_percent() {
    let root = workspace_root();
    let results = run_fixture_corpus(&root.join("crates/audit/fixtures"), &AuditConfig::default())
        .expect("read fixture corpus");
    let mutants: Vec<_> = results.iter().filter(|r| !r.spec.expect.is_empty()).collect();
    assert!(mutants.len() >= 8, "corpus too small: {} mutants", mutants.len());
    assert!(
        results.len() > mutants.len(),
        "corpus needs at least one clean fixture as a false-positive control"
    );
    for r in &results {
        assert!(
            r.caught,
            "fixture {} (as {}) missed: expected [{}], fired [{}]",
            r.name,
            r.spec.pretend_path,
            r.spec.expect.join(", "),
            r.fired.join(", ")
        );
    }
    for pass in PASSES {
        assert!(
            mutants.iter().any(|r| r.spec.expect.iter().any(|e| e == pass)),
            "no mutant exercises pass {pass}"
        );
    }
}
