//! A small Rust lexer — the foundation every pass sits on.
//!
//! The five original `xtask` lints were line-based greps with a
//! [`LineFilter`]-style comment heuristic, which had two known
//! blind-spot classes: multi-line `/* */` block comments (code inside
//! them was still linted) and raw strings `r#"…"#` (their *contents*
//! look like code to a grep). This lexer tokenizes the real thing —
//! line and nested block comments, plain and raw (and byte) string
//! literals, char literals vs. lifetimes, numbers, identifiers — so
//! both the migrated lints and the new dataflow passes see tokens, not
//! bytes.
//!
//! The lexer is *lossless*: concatenating every token's text
//! reconstructs the source byte-for-byte (a tested property, see
//! `tests/lexer_roundtrip.rs`, which lexes every `.rs` file in the
//! workspace). It does not need to be a full Rust grammar — it only
//! has to classify code vs. non-code exactly, and keep enough shape
//! (punctuation, identifiers) for the sketch extractor to build
//! control-flow sketches on top.

/// Token classes. `White`, `LineComment` and `BlockComment` are
/// non-code trivia; `Str`/`RawStr`/`Char` are code but their *contents*
/// are data, not code — [`Lexed::masked`] blanks all five classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Whitespace run (spaces, tabs, newlines).
    White,
    /// `// …` to end of line (newline excluded).
    LineComment,
    /// `/* … */`, nested per Rust rules.
    BlockComment,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'a`, `'static` — a quote that opens a lifetime, not a char.
    Lifetime,
    /// `0`, `0xff`, `1_000_000u64` (a `.` is a separate `Punct`).
    Number,
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident,
    /// Any single remaining character (full UTF-8 width).
    Punct,
}

/// One token: a classification plus a byte range into the source and
/// the 1-based line its first byte sits on.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

/// A lexed source file: the original text plus its token stream.
pub struct Lexed {
    /// The source exactly as read.
    pub src: String,
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
}

impl Lexed {
    /// The text of one token.
    pub fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    /// The source with every non-code byte blanked to a space:
    /// comments, string/char contents (and their delimiters) become
    /// spaces while newlines survive, so line numbers and column
    /// positions are unchanged and a line-oriented lint sees *only*
    /// code. This is the `LineFilter` replacement: a `FarAddr(p + 8)`
    /// inside a block comment or a raw string vanishes before any
    /// pattern looks at it.
    pub fn masked(&self) -> String {
        let mut out = String::with_capacity(self.src.len());
        for t in &self.tokens {
            let text = self.text(t);
            match t.kind {
                Kind::LineComment | Kind::BlockComment | Kind::Str | Kind::RawStr | Kind::Char => {
                    // One space per byte (not per char): multi-byte
                    // chars in comments must not shift byte columns.
                    for b in text.bytes() {
                        // audit: rt-in-loop-ok: String building — `b` is a byte, not a client
                        out.push(if b == b'\n' { '\n' } else { ' ' });
                    }
                }
                _ => out.push_str(text),
            }
        }
        out
    }

    /// Indices of the significant (non-trivia) tokens, in order.
    pub fn significant(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| {
                !matches!(
                    self.tokens[i].kind,
                    Kind::White | Kind::LineComment | Kind::BlockComment
                )
            })
            .collect()
    }

    /// The line of the first `#[cfg(test)]` attribute, if any. By the
    /// repo-wide tests-module-last convention everything from that line
    /// on is test code and exempt from source lints (same rule the old
    /// `LineFilter` applied, now matched on real tokens so the pattern
    /// inside a string or comment no longer trips it).
    pub fn test_cutoff_line(&self) -> Option<u32> {
        let sig = self.significant();
        let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
        for w in sig.windows(pat.len()) {
            if w.iter()
                .zip(pat.iter())
                .all(|(&i, &p)| self.text(&self.tokens[i]) == p)
            {
                return Some(self.tokens[w[0]].line);
            }
        }
        None
    }
}

/// Lexes a source file. Never fails: unterminated constructs run to
/// end of input (the analyzer's job is classification, not parsing
/// diagnostics).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let kind = match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                Kind::LineComment
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                Kind::BlockComment
            }
            c if c.is_ascii_whitespace() => {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                Kind::White
            }
            b'"' => {
                i = scan_str(b, i, &mut line);
                Kind::Str
            }
            b'\'' => scan_quote(b, &mut i, &mut line),
            c if c == b'r' || c == b'b' => {
                // Raw/byte literal prefixes before plain identifiers:
                // r"…", r#"…"#, b"…", br#"…"#, b'…'.
                if let Some(end) = raw_str_end(b, i) {
                    let _ = end;
                    i = scan_raw_str(b, i, &mut line);
                    Kind::RawStr
                } else if c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
                    i = scan_str(b, i + 1, &mut line);
                    Kind::Str
                } else if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                    i += 1;
                    let k = scan_quote(b, &mut i, &mut line);
                    debug_assert!(matches!(k, Kind::Char | Kind::Lifetime));
                    Kind::Char
                } else {
                    i = scan_ident(b, i);
                    Kind::Ident
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                i = scan_ident(b, i);
                Kind::Ident
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                Kind::Number
            }
            _ => {
                // One character of punctuation — full UTF-8 width so a
                // multibyte char (×, µ in doc text) never splits.
                let ch = src[i..].chars().next().expect("char at boundary");
                i += ch.len_utf8();
                Kind::Punct
            }
        };
        tokens.push(Token { kind, start, end: i, line: start_line });
    }
    Lexed { src: src.to_string(), tokens }
}

/// Scans a `"…"` string starting at the opening quote; returns the
/// index one past the closing quote.
fn scan_str(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If position `i` starts a raw-string prefix (`r`/`br`/`rb` + `#`* +
/// `"`), returns the index of the opening quote.
fn raw_str_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some(j)
    } else {
        None
    }
}

/// Scans a raw string starting at its prefix; returns one past the
/// closing quote+hashes.
fn scan_raw_str(b: &[u8], start: usize, line: &mut u32) -> usize {
    let quote = raw_str_end(b, start).expect("raw prefix");
    let hashes = quote - start - usize::from(b[start] == b'b') - 1;
    let mut i = quote + 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Scans from a `'`: classifies char literal vs. lifetime. `i` points
/// at the quote on entry and one past the token on exit.
fn scan_quote(b: &[u8], i: &mut usize, line: &mut u32) -> Kind {
    let open = *i;
    *i += 1;
    if *i >= b.len() {
        return Kind::Char;
    }
    if b[*i] == b'\\' {
        // Escaped char literal: '\n', '\'', '\u{1F600}'.
        *i += 2;
        while *i < b.len() && b[*i] != b'\'' {
            if b[*i] == b'\n' {
                *line += 1;
            }
            *i += 1;
        }
        *i = (*i + 1).min(b.len());
        return Kind::Char;
    }
    if b[*i] == b'_' || b[*i].is_ascii_alphabetic() {
        let ident_start = *i;
        *i = scan_ident(b, *i);
        let run = *i - ident_start;
        if run == 1 && *i < b.len() && b[*i] == b'\'' {
            *i += 1; // 'a'
            return Kind::Char;
        }
        return Kind::Lifetime; // 'a as in <'a>, 'static
    }
    // Non-identifier char literal: '0', '+', '✓'.
    let rest = std::str::from_utf8(&b[*i..]).unwrap_or("");
    if let Some(ch) = rest.chars().next() {
        *i += ch.len_utf8();
    }
    if *i < b.len() && b[*i] == b'\'' {
        *i += 1;
        Kind::Char
    } else {
        // A stray quote (macro-generated source); classify as Char so
        // masking stays conservative.
        *i = open + 1;
        Kind::Char
    }
}

fn scan_ident(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Lexed {
        let lx = lex(src);
        let rebuilt: String = lx.tokens.iter().map(|t| lx.text(t)).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless");
        lx
    }

    #[test]
    fn classifies_line_and_nested_block_comments() {
        let lx = roundtrip("a // c1\n/* x /* y */ z */ b");
        let kinds: Vec<Kind> = lx
            .tokens
            .iter()
            .filter(|t| t.kind != Kind::White)
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![Kind::Ident, Kind::LineComment, Kind::BlockComment, Kind::Ident]
        );
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let lx = roundtrip(r###"let s = r#"client.read(x)"#; let t = r"y";"###);
        let raws: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::RawStr)
            .map(|t| lx.text(t))
            .collect();
        assert_eq!(raws, vec![r##"r#"client.read(x)"#"##, "r\"y\""]);
    }

    #[test]
    fn byte_raw_strings_and_byte_chars() {
        let lx = roundtrip(r##"let a = br#"x"#; let b = b"s"; let c = b'z';"##);
        let kinds: Vec<Kind> = lx
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Kind::RawStr | Kind::Str | Kind::Char))
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds, vec![Kind::RawStr, Kind::Str, Kind::Char]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = roundtrip("fn f<'a>(x: &'a str) -> &'static str { 'q' }");
        let lifetimes: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| lx.text(t))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Char)
            .map(|t| lx.text(t))
            .collect();
        assert_eq!(chars, vec!["'q'"]);
    }

    #[test]
    fn escaped_char_literals() {
        let lx = roundtrip(r"let n = '\n'; let q = '\''; let u = '\u{1F600}';");
        let chars: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Char)
            .map(|t| lx.text(t))
            .collect();
        assert_eq!(chars, vec![r"'\n'", r"'\''", r"'\u{1F600}'"]);
    }

    #[test]
    fn masked_blanks_comments_and_string_contents() {
        let src = "client.read(a); // client.cas(b)\nlet s = \"client.faa(c)\";";
        let m = lex(src).masked();
        assert!(m.contains("client.read(a);"));
        assert!(!m.contains("client.cas"));
        assert!(!m.contains("client.faa"));
        assert_eq!(m.lines().count(), src.lines().count());
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masked_preserves_line_structure_of_multiline_trivia() {
        let src = "a\n/* x\ny\nz */\nb r#\"p\nq\"# c";
        let m = lex(src).masked();
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(m.lines().nth(4).unwrap().starts_with('b'));
    }

    #[test]
    fn test_cutoff_found_on_tokens_not_text() {
        let src = "let a = \"#[cfg(test)]\";\n// #[cfg(test)]\nfn f() {}\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(lex(src).test_cutoff_line(), Some(4));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "/* a\nb */ x\n\"s\ntr\" y";
        let lx = lex(src);
        let x = lx.tokens.iter().find(|t| lx.text(t) == "x").unwrap();
        let y = lx.tokens.iter().find(|t| lx.text(t) == "y").unwrap();
        assert_eq!(x.line, 2);
        assert_eq!(y.line, 4);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let lx = roundtrip("for i in 0..10 { let f = 1.5; }");
        let nums: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Number)
            .map(|t| lx.text(t))
            .collect();
        assert_eq!(nums, vec!["0", "10", "1", "5"]);
    }
}
