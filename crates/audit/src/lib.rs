#![forbid(unsafe_code)]
//! # farmem-audit — static round-trip & lease-safety analysis
//!
//! The paper's design axis is round trips, but nothing *static* in the
//! repo enforced it: a PR could turn an O(1) batched path into an O(n)
//! serial-verb loop and only a human reading e-driver tables would
//! notice. This crate is the compile-time counterpart of `farmem-check`
//! (which model-checks the protocols dynamically): a small Rust lexer,
//! a per-function control-flow sketch extractor, and dataflow passes
//! over the sketches.
//!
//! ## Pass catalog
//!
//! Dataflow passes (new in this crate):
//!
//! * **rt-in-loop** — serial fabric verbs inside a loop body with no
//!   batch adopter (`pipeline()`, `get_many`, `read_ranges`,
//!   `dequeue_batch`, ...) in scope: loop-carried round-trip
//!   amplification. The finding names the batched twin to adopt.
//! * **lock-across-rt** — a `FarMutex`/`FarRwLock` held across ≥ N
//!   fabric verbs (default 4) or across any `.await`: the 100 ms
//!   virtual lease can expire under the holder and a contender will
//!   fence it out mid-critical-section.
//! * **guard-escape** — a value derived from a fabric read under an
//!   epoch [`Guard`](../farmem_reclaim) dereferenced after the guard
//!   ends: the reclaimer may already have freed the target.
//! * **verb-in-drop** — fabric verbs inside `Drop` impls, where
//!   retry/backoff cannot surface errors and drops run at
//!   unpredictable times (mid-panic, mid-failover).
//!
//! Migrated legacy lints ([`legacy`]): `far-addr`, `retire-guard`,
//! `stats-mut`, `block-async` (per-file) and `forbid-unsafe` (per
//! crate root). Same rules as the old `xtask` greps, but matched
//! against [`lex::Lexed::masked`] text, which retires the
//! `LineFilter` blind spots (multi-line `/* */` comments, raw
//! strings).
//!
//! ## Annotation grammar
//!
//! A deliberate exception carries a marker in a comment on the finding
//! line or within the 4 lines above it:
//!
//! ```text
//! // audit: rt-in-loop-ok: pointer chase — each hop depends on the last
//! ```
//!
//! (`lint:` is accepted as a synonym for the migrated lints, which
//! keep their historical `lint: far-addr-ok` spelling.) The marker
//! names the pass it suppresses; a marker never suppresses another
//! pass.
//!
//! ## Fixture corpus
//!
//! `fixtures/*.rs` are standalone seeded-violation files (never
//! compiled) in the farmem-check mutation-score style: each declares
//! the path it pretends to live at and the passes it must trip:
//!
//! ```text
//! // fixture-path: crates/core/src/seeded.rs
//! // fixture-expect: rt-in-loop
//! ```
//!
//! `fixture-expect: clean` asserts zero findings. The audit gate
//! (`cargo run -p xtask -- audit`, driver `e21_audit`) requires 100%
//! of mutants caught and every clean fixture clean — an analyzer
//! change that silently loses a detection class fails CI the same way
//! a lost dynamic invariant fails `farmem-check`.

pub mod legacy;
pub mod lex;
pub mod passes;
pub mod sketch;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use farmem_fabric::AccessStats;

/// One analyzer finding. `function` is empty for line-oriented legacy
/// lints, which do not track enclosing functions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub function: String,
    pub pass: String,
    pub message: String,
    pub suggestion: String,
}

/// Analyzer knobs. The defaults are the repo gate's settings.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// `lock-across-rt` fires when a lease lock is held across at
    /// least this many fabric verbs (any `.await` fires regardless).
    /// Bounded CAS retries under a lock are normal; a verb-per-element
    /// loop under a lock is not.
    pub lock_rt_threshold: usize,
    /// Field names `stats-mut` protects. Defaults to the real
    /// [`AccessStats::FIELD_NAMES`], so the lint tracks the struct.
    pub stats_fields: Vec<String>,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            lock_rt_threshold: 4,
            stats_fields: AccessStats::FIELD_NAMES.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Every pass the analyzer runs: four dataflow passes, four migrated
/// line lints, and the crate-root `forbid-unsafe` check. The fixture
/// corpus gate requires at least one mutant per entry.
pub const PASSES: [&str; 9] = [
    "rt-in-loop",
    "lock-across-rt",
    "guard-escape",
    "verb-in-drop",
    "far-addr",
    "retire-guard",
    "stats-mut",
    "block-async",
    "forbid-unsafe",
];

/// Pass scoping by workspace-relative path (forward slashes). Mirrors
/// the old linter's per-pass exclude lists and extends them to the
/// dataflow passes:
///
/// * `rt-in-loop` skips `crates/fabric` (the verb and pipeline
///   implementations themselves), `crates/baselines` (deliberately
///   serial paper baselines), `crates/bench` and `crates/check`
///   (measurement drivers and protocol programs that exercise serial
///   paths on purpose), and `shims`.
/// * the other dataflow passes skip only `shims` (no fabric there).
/// * migrated lints keep their historical scopes: `far-addr` and
///   `stats-mut` skip `crates/fabric`, `retire-guard` skips
///   `crates/reclaim`, `block-async` applies only in `crates/core`.
pub fn pass_enabled(pass: &str, path: &str) -> bool {
    let starts = |p: &str| path.starts_with(p);
    match pass {
        "rt-in-loop" => {
            !starts("crates/fabric")
                && !starts("crates/baselines")
                && !starts("crates/bench")
                && !starts("crates/check")
                && !starts("shims")
        }
        "lock-across-rt" | "guard-escape" | "verb-in-drop" => !starts("shims"),
        "far-addr" | "stats-mut" => !starts("crates/fabric"),
        "retire-guard" => !starts("crates/reclaim"),
        "block-async" => starts("crates/core"),
        _ => true,
    }
}

/// All per-file passes (dataflow + migrated lints) over one source
/// file. `path` is the workspace-relative path used for scoping and
/// reporting.
pub fn audit_source(path: &str, src: &str, cfg: &AuditConfig) -> Vec<Finding> {
    let lx = lex::lex(src);
    let sketches = sketch::extract(&lx);
    let mut out = passes::dataflow_findings(path, &lx, &sketches, cfg);
    out.extend(legacy::legacy_findings(path, &lx, cfg));
    out.sort();
    out
}

/// Only the migrated legacy lints over one source file — the
/// `xtask lint` surface, for verdict parity with the old linter.
pub fn lint_source(path: &str, src: &str, cfg: &AuditConfig) -> Vec<Finding> {
    let lx = lex::lex(src);
    let mut out = legacy::legacy_findings(path, &lx, cfg);
    out.sort();
    out
}

/// The result of running the analyzer over a tree: findings plus the
/// coverage denominator, rendered as text or schema-versioned JSON.
#[derive(Debug, Clone)]
pub struct AuditReport {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-oriented rendering, one block per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let at = if f.function.is_empty() {
                String::new()
            } else {
                format!(" (fn {})", f.function)
            };
            let _ = writeln!(out, "{}:{} [{}]{}: {}", f.file, f.line, f.pass, at, f.message);
            let _ = writeln!(out, "    fix: {}", f.suggestion);
        }
        let _ = writeln!(
            out,
            "audit: {} finding(s) across {} file(s)",
            self.findings.len(),
            self.files_scanned
        );
        out
    }

    /// Machine-oriented rendering. Byte-identical across runs on the
    /// same tree (findings are fully sorted, no timestamps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":1,");
        let _ = write!(out, "\"files_scanned\":{},\"findings\":[", self.files_scanned);
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"line\":{},\"function\":{},\"pass\":{},\
                 \"message\":{},\"suggestion\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.function),
                json_str(&f.pass),
                json_str(&f.message),
                json_str(&f.suggestion)
            );
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with the escapes the findings can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            // audit: rt-in-loop-ok: String building — `c` is a char, not a client
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The directory holding the workspace `Cargo.toml` (where
/// `[workspace]` lives), found by walking up from the current
/// directory.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(s) = fs::read_to_string(&manifest) {
                if s.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            panic!("no workspace Cargo.toml above cwd");
        }
    }
}

/// Every crate root in the workspace (for `forbid-unsafe`).
pub fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("src/lib.rs"), root.join("xtask/src/main.rs")];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for e in entries.flatten() {
            let lib = e.path().join("src/lib.rs");
            if lib.is_file() {
                out.push(lib);
            }
        }
    }
    out.sort();
    out
}

/// Files subject to per-file passes: `.rs` under `src/`, `crates/`,
/// `shims/`, excluding integration `tests/`, `benches/`, and this
/// crate's seeded-violation `fixtures/`.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for group in ["src", "crates", "shims"] {
        walk(&root.join(group), &mut out);
    }
    out.retain(|p| {
        let r = rel(root, p);
        !r.contains("/tests/") && !r.contains("/benches/") && !r.contains("/fixtures/")
    });
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Workspace-relative path with forward slashes (stable across hosts,
/// so findings JSON is portable).
pub fn rel(root: &Path, p: &Path) -> String {
    let r = p.strip_prefix(root).unwrap_or(p);
    r.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// `forbid-unsafe` on one crate root's source: every crate opts out
/// of `unsafe` at the root (matched on masked text, so a commented-out
/// attribute no longer satisfies it — and a real one inside a block
/// comment never did).
pub fn forbid_unsafe_source(path: &str, src: &str) -> Option<Finding> {
    let masked = lex::lex(src).masked();
    if masked.contains("#![forbid(unsafe_code)]") {
        return None;
    }
    Some(Finding {
        file: path.to_string(),
        line: 1,
        function: String::new(),
        pass: "forbid-unsafe".to_string(),
        message: "crate root missing #![forbid(unsafe_code)]".to_string(),
        suggestion: "add `#![forbid(unsafe_code)]` as the first line".to_string(),
    })
}

fn forbid_unsafe_findings(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for path in crate_roots(root) {
        let text = fs::read_to_string(&path).unwrap_or_default();
        out.extend(forbid_unsafe_source(&rel(root, &path), &text));
    }
    out
}

fn tree_report(
    root: &Path,
    cfg: &AuditConfig,
    per_file: fn(&str, &str, &AuditConfig) -> Vec<Finding>,
) -> io::Result<AuditReport> {
    let files = source_files(root);
    let mut findings = forbid_unsafe_findings(root);
    for path in &files {
        let src = fs::read_to_string(path)?;
        findings.extend(per_file(&rel(root, path), &src, cfg));
    }
    findings.sort();
    Ok(AuditReport { findings, files_scanned: files.len() })
}

/// All passes over the workspace tree.
pub fn audit_tree(root: &Path, cfg: &AuditConfig) -> io::Result<AuditReport> {
    tree_report(root, cfg, audit_source)
}

/// Only the five legacy lints over the workspace tree (the
/// `xtask lint` surface).
pub fn lint_tree(root: &Path, cfg: &AuditConfig) -> io::Result<AuditReport> {
    tree_report(root, cfg, lint_source)
}

/// One fixture file's contract, parsed from its header directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixtureSpec {
    /// The workspace-relative path the fixture pretends to live at
    /// (so path-scoped passes apply as they would in the real tree).
    pub pretend_path: String,
    /// Passes the fixture must trip; empty means `clean` (zero
    /// findings required).
    pub expect: Vec<String>,
}

/// Parses `// fixture-path:` and `// fixture-expect:` directives.
/// Returns `None` when either is missing (not a fixture file).
pub fn fixture_spec(src: &str) -> Option<FixtureSpec> {
    let mut path = None;
    let mut expect: Vec<String> = Vec::new();
    let mut saw_expect = false;
    for line in src.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("// fixture-path:") {
            path = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("// fixture-expect:") {
            saw_expect = true;
            for p in rest.split(',') {
                let p = p.trim();
                if !p.is_empty() && p != "clean" {
                    expect.push(p.to_string());
                }
            }
        }
    }
    expect.sort();
    expect.dedup();
    Some(FixtureSpec { pretend_path: path?, expect: if saw_expect { expect } else { return None } })
}

/// One fixture's outcome under the analyzer.
#[derive(Debug, Clone)]
pub struct FixtureResult {
    /// Fixture file name (not the pretend path).
    pub name: String,
    pub spec: FixtureSpec,
    /// Distinct passes that fired, sorted.
    pub fired: Vec<String>,
    /// Total findings.
    pub findings: usize,
    /// Mutants: every expected pass fired. Clean fixtures: zero
    /// findings.
    pub caught: bool,
}

/// Runs the analyzer over every `*.rs` fixture in `dir`, in file-name
/// order (deterministic). Panics on a fixture missing its directives —
/// a malformed corpus is a bug, not a soft failure.
pub fn run_fixture_corpus(dir: &Path, cfg: &AuditConfig) -> io::Result<Vec<FixtureResult>> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = fs::read_to_string(&path)?;
        let spec = fixture_spec(&src)
            .unwrap_or_else(|| panic!("{name}: missing fixture-path/fixture-expect directives"));
        let mut findings = audit_source(&spec.pretend_path, &src, cfg);
        // A fixture pretending to be a crate root is also subject to
        // the root-level forbid-unsafe pass.
        if spec.pretend_path.ends_with("/lib.rs") || spec.pretend_path.ends_with("main.rs") {
            findings.extend(forbid_unsafe_source(&spec.pretend_path, &src));
        }
        let mut fired: Vec<String> = findings.iter().map(|f| f.pass.clone()).collect();
        fired.sort();
        fired.dedup();
        let caught = if spec.expect.is_empty() {
            findings.is_empty()
        } else {
            spec.expect.iter().all(|p| fired.contains(p))
        };
        out.push(FixtureResult { name, spec, fired, findings: findings.len(), caught });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_table_matches_the_old_linter() {
        assert!(!pass_enabled("far-addr", "crates/fabric/src/lib.rs"));
        assert!(pass_enabled("far-addr", "crates/core/src/httree.rs"));
        assert!(!pass_enabled("retire-guard", "crates/reclaim/src/lib.rs"));
        assert!(pass_enabled("retire-guard", "crates/serve/src/store.rs"));
        assert!(!pass_enabled("stats-mut", "crates/fabric/src/stats.rs"));
        assert!(pass_enabled("block-async", "crates/core/src/httree.rs"));
        assert!(!pass_enabled("block-async", "crates/serve/src/store.rs"));
    }

    #[test]
    fn dataflow_scoping_skips_serial_by_design_crates() {
        for p in [
            "crates/fabric/src/client.rs",
            "crates/baselines/src/lib.rs",
            "crates/bench/src/bin/e13_queue.rs",
            "crates/check/src/lib.rs",
            "shims/rand/src/lib.rs",
        ] {
            assert!(!pass_enabled("rt-in-loop", p), "{p}");
        }
        assert!(pass_enabled("rt-in-loop", "crates/core/src/vector.rs"));
        assert!(pass_enabled("lock-across-rt", "crates/bench/src/bin/e13_queue.rs"));
        assert!(!pass_enabled("lock-across-rt", "shims/rand/src/lib.rs"));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn report_json_shape_and_determinism() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            function: "get".into(),
            pass: "rt-in-loop".into(),
            message: "m".into(),
            suggestion: "s".into(),
        };
        let r = AuditReport { findings: vec![f], files_scanned: 1 };
        let j = r.to_json();
        assert!(j.starts_with("{\"schema_version\":1,"));
        assert!(j.contains("\"pass\":\"rt-in-loop\""));
        assert_eq!(j, r.to_json());
        assert!(r.render_text().contains("crates/core/src/x.rs:3 [rt-in-loop] (fn get): m"));
    }

    #[test]
    fn fixture_directive_parsing() {
        let src = "// fixture-path: crates/core/src/x.rs\n// fixture-expect: rt-in-loop, lock-across-rt\nfn f() {}\n";
        let spec = fixture_spec(src).unwrap();
        assert_eq!(spec.pretend_path, "crates/core/src/x.rs");
        assert_eq!(spec.expect, vec!["lock-across-rt".to_string(), "rt-in-loop".to_string()]);

        let clean = "// fixture-path: crates/core/src/x.rs\n// fixture-expect: clean\n";
        assert_eq!(fixture_spec(clean).unwrap().expect, Vec::<String>::new());

        assert!(fixture_spec("fn f() {}\n").is_none());
        assert!(fixture_spec("// fixture-path: a.rs\n").is_none());
    }

    #[test]
    fn audit_source_merges_dataflow_and_legacy() {
        let src = "fn f(client: &mut FabricClient, n: u64) {\n\
                   \x20   let a = FarAddr(base + 8);\n\
                   \x20   for i in 0..n {\n\
                   \x20       client.read_u64(a).unwrap();\n\
                   \x20   }\n\
                   }\n";
        let f = audit_source("crates/core/src/x.rs", src, &AuditConfig::default());
        let passes: Vec<&str> = f.iter().map(|x| x.pass.as_str()).collect();
        assert!(passes.contains(&"far-addr"), "{passes:?}");
        assert!(passes.contains(&"rt-in-loop"), "{passes:?}");
        // lint_source sees only the legacy half.
        let l = lint_source("crates/core/src/x.rs", src, &AuditConfig::default());
        assert!(l.iter().all(|x| x.pass == "far-addr"));
    }
}
