//! The five original `xtask` repo lints, migrated onto the lexer.
//!
//! Semantics are unchanged — same rules, same `lint: <name>-ok` marker
//! grammar, same test-module and per-crate exemptions — but every
//! pattern now matches against [`Lexed::masked`] text, where comments
//! and string/char *contents* are blanked before any pattern looks at
//! a line. That retires the two `LineFilter` blind-spot classes:
//!
//! * multi-line `/* … */` block comments: code inside them was linted
//!   (false positives on commented-out examples);
//! * raw strings `r#"…"#`: their contents looked like code to a grep
//!   (false positives on embedded source, e.g. this crate's own
//!   fixtures).
//!
//! Markers stay matched against the *raw* line — they live in
//! comments, which masking blanks.

use crate::lex::Lexed;
use crate::{AuditConfig, Finding};

/// The balanced-paren argument of the first `FarAddr(` at/after `at`,
/// within one line, with nested `[...]` index expressions removed
/// (array indexing arithmetic is not address arithmetic).
pub fn far_addr_arg(line: &str, at: usize) -> String {
    let body = &line[at..];
    let mut depth = 0usize;
    let mut bracket = 0usize;
    let mut arg = String::new();
    for c in body.chars() {
        if bracket > 0 {
            match c {
                '[' => bracket += 1,
                ']' => bracket -= 1,
                _ => {}
            }
            continue;
        }
        match c {
            '(' => {
                depth += 1;
                if depth > 1 {
                    // audit: rt-in-loop-ok: String building — `c` is a char, not a client
                    arg.push(c);
                }
            }
            ')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
                arg.push(c);
            }
            '[' => bracket = 1,
            c => arg.push(c),
        }
    }
    arg
}

/// True when the text immediately after a field reference is an
/// assignment (`= v`, `+= v`, ...), as opposed to a comparison
/// (`==`), a match arm (`=>`), a method call or a plain read.
pub fn is_assignment(rest: &str) -> bool {
    let rest = rest.trim_start();
    for op in ["+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="] {
        if rest.starts_with(op) {
            return true;
        }
    }
    rest.starts_with('=') && !rest.starts_with("==") && !rest.starts_with("=>")
}

/// Line-oriented view shared by the migrated lints: masked (code-only)
/// lines for pattern matching, raw lines for marker lookup, and the
/// test-module cutoff.
struct LintView<'a> {
    masked_lines: Vec<String>,
    raw_lines: Vec<&'a str>,
    cutoff: u32,
}

impl<'a> LintView<'a> {
    fn new(lx: &'a Lexed) -> LintView<'a> {
        LintView {
            masked_lines: lx.masked().lines().map(str::to_string).collect(),
            raw_lines: lx.src.lines().collect(),
            cutoff: lx.test_cutoff_line().unwrap_or(u32::MAX),
        }
    }

    /// Code text of 0-based line `i`, empty once the test module opens.
    fn code(&self, i: usize) -> &str {
        if (i as u32) + 1 >= self.cutoff {
            ""
        } else {
            self.masked_lines.get(i).map_or("", String::as_str)
        }
    }

    /// Raw text of 0-based line `i` (for marker lookup).
    fn raw(&self, i: usize) -> &str {
        self.raw_lines.get(i).copied().unwrap_or("")
    }

    fn len(&self) -> usize {
        self.masked_lines.len()
    }
}

/// Runs the four per-file legacy lints (the fifth, `forbid-unsafe`, is
/// per-crate-root and lives in [`crate::audit_tree`]). Pass scoping by
/// path is identical to the pre-migration linter.
pub fn legacy_findings(path: &str, lx: &Lexed, cfg: &AuditConfig) -> Vec<Finding> {
    let v = LintView::new(lx);
    let mut out = Vec::new();
    if crate::pass_enabled("far-addr", path) {
        far_addr(path, &v, &mut out);
    }
    if crate::pass_enabled("retire-guard", path) {
        retire_guard(path, &v, &mut out);
    }
    if crate::pass_enabled("stats-mut", path) {
        stats_mut(path, &v, cfg, &mut out);
    }
    if crate::pass_enabled("block-async", path) {
        block_async(path, &v, &mut out);
    }
    out
}

/// No hand-built `FarAddr` arithmetic outside `crates/fabric`.
fn far_addr(path: &str, v: &LintView, out: &mut Vec<Finding>) {
    const OPS: [&str; 7] = [" + ", " - ", " * ", " / ", " % ", " << ", " >> "];
    for i in 0..v.len() {
        let line = v.code(i);
        if v.raw(i).contains("lint: far-addr-ok") {
            continue;
        }
        let mut from = 0usize;
        while let Some(pos) = line[from..].find("FarAddr(") {
            let at = from + pos + "FarAddr".len();
            let arg = far_addr_arg(line, at);
            if OPS.iter().any(|op| arg.contains(op)) {
                out.push(Finding {
                    file: path.to_string(),
                    line: (i + 1) as u32,
                    function: String::new(),
                    pass: "far-addr".to_string(),
                    message: format!("FarAddr arithmetic constructed by hand ({})", arg.trim()),
                    suggestion: "use FarAddr::offset, or annotate `lint: far-addr-ok`"
                        .to_string(),
                });
            }
            from = at;
        }
    }
}

/// Every `retire(x)` call sits in a guard scope: a `pin(`/`Guard`
/// within the preceding 80 *code* lines, or an explicit
/// `lint: retire-ok` justification within 10 lines.
fn retire_guard(path: &str, v: &LintView, out: &mut Vec<Finding>) {
    for i in 0..v.len() {
        let line = v.code(i);
        // `.retire(x` with an argument; `.retire()` is Arena's
        // unrelated whole-arena teardown.
        let Some(pos) = line.find(".retire(") else { continue };
        if line[pos + ".retire(".len()..].starts_with(')') {
            continue;
        }
        let marker = (i.saturating_sub(10)..=i).any(|j| v.raw(j).contains("lint: retire-ok"));
        let guarded = (i.saturating_sub(80)..i)
            .any(|j| v.code(j).contains("pin(") || v.code(j).contains("Guard"));
        if !marker && !guarded {
            out.push(Finding {
                file: path.to_string(),
                line: (i + 1) as u32,
                function: String::new(),
                pass: "retire-guard".to_string(),
                message: "retire outside a guard scope (no pin()/Guard within 80 lines)"
                    .to_string(),
                suggestion: "annotate `// lint: retire-ok: <why>` if the protocol justifies it"
                    .to_string(),
            });
        }
    }
}

/// No direct `AccessStats` counter-field assignment outside
/// `crates/fabric`.
fn stats_mut(path: &str, v: &LintView, cfg: &AuditConfig, out: &mut Vec<Finding>) {
    for i in 0..v.len() {
        let line = v.code(i);
        // The justification marker may sit on the line itself or the
        // comment line directly above it.
        let marked = v.raw(i).contains("lint: stats-ok")
            || (i > 0 && v.raw(i - 1).contains("lint: stats-ok"));
        if marked {
            continue;
        }
        for field in &cfg.stats_fields {
            let needle = format!(".{field}");
            let mut from = 0usize;
            while let Some(pos) = line[from..].find(&needle) {
                let end = from + pos + needle.len();
                from = end;
                // Reject partial identifier matches (`.retries_total`).
                if line[end..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                if is_assignment(&line[end..]) {
                    out.push(Finding {
                        file: path.to_string(),
                        line: (i + 1) as u32,
                        function: String::new(),
                        pass: "stats-mut".to_string(),
                        message: format!(
                            "direct mutation of AccessStats field `{field}` outside \
                             crates/fabric; counters move only through fabric verbs"
                        ),
                        suggestion: "annotate `lint: stats-ok: <why>` if this is a \
                                     different struct's field"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Inside `async fn` bodies in `crates/core`, no unannotated blocking
/// fabric access (`client.<verb>(...)` or the `.with(...)` escape
/// hatch).
fn block_async(path: &str, v: &LintView, out: &mut Vec<Finding>) {
    // `Some(depth)` while an `async fn` is open: 0 until its `{`
    // arrives, then the running brace depth of the body.
    let mut body: Option<i64> = None;
    for i in 0..v.len() {
        let line = v.code(i);
        if body.is_none() && line.contains("async fn ") {
            body = Some(0);
        }
        let Some(depth) = body.as_mut() else { continue };
        let inside = *depth > 0;
        for c in line.chars() {
            match c {
                '{' => *depth += 1,
                '}' => *depth -= 1,
                _ => {}
            }
        }
        if *depth <= 0 && inside {
            body = None;
        }
        if !inside {
            continue;
        }
        // `.with(` is the sole synchronous escape hatch on
        // `AsyncClient`; `client.` is the repo-wide name for a
        // blocking `&mut FabricClient` receiver.
        if !line.contains(".with(") && !line.contains("client.") {
            continue;
        }
        let marked = (i.saturating_sub(4)..=i).any(|j| v.raw(j).contains("lint: block-ok"));
        if !marked {
            out.push(Finding {
                file: path.to_string(),
                line: (i + 1) as u32,
                function: String::new(),
                pass: "block-async".to_string(),
                message: "blocking fabric access inside an async fn".to_string(),
                suggestion: "suspend at the doorbell instead, or annotate \
                             `// lint: block-ok — <why>` within 4 lines above"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        legacy_findings(path, &lex(src), &AuditConfig::default())
    }

    #[test]
    fn far_addr_arg_strips_index_expressions() {
        let line = "let a = FarAddr(w[(A_DIR / 8) as usize]);";
        let at = line.find("FarAddr").unwrap() + "FarAddr".len();
        assert_eq!(far_addr_arg(line, at), "w");
    }

    #[test]
    fn far_addr_arg_keeps_top_level_arithmetic() {
        let line = "c.read(FarAddr(p + 16), 8)";
        let at = line.find("FarAddr").unwrap() + "FarAddr".len();
        assert_eq!(far_addr_arg(line, at), "p + 16");
    }

    #[test]
    fn assignment_detection_separates_writes_from_reads() {
        assert!(is_assignment(" = 3;"));
        assert!(is_assignment(" += len;"));
        assert!(is_assignment("<<= 1;"));
        assert!(!is_assignment(" == other.retries"));
        assert!(!is_assignment(" => {}"));
        assert!(!is_assignment(".to_string()"));
        assert!(!is_assignment(" > 0"));
    }

    #[test]
    fn far_addr_flags_hand_arithmetic_in_code() {
        let f = run("crates/core/src/x.rs", "let a = FarAddr(base + 8 * i);\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, "far-addr");
    }

    #[test]
    fn far_addr_ignores_block_comments_and_raw_strings() {
        // Both were LineFilter blind spots: the old linter flagged the
        // second line of a block comment and the contents of r#"…"#.
        let src = r##"
/* example of what NOT to do:
   let a = FarAddr(base + 8 * i);
*/
let doc = r#"FarAddr(base + 8 * i)"#;
let ok = FarAddr(stored);
"##;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn stats_mut_flags_assignment_not_comparison() {
        let src = "s.retries += 1;\nif s.retries == 2 {}\n";
        let cfg =
            AuditConfig { stats_fields: vec!["retries".to_string()], ..AuditConfig::default() };
        let f = legacy_findings("crates/core/src/x.rs", &lex(src), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn stats_mut_ignores_raw_string_contents() {
        let src = "let doc = r#\"s.retries = 1;\"#;\n";
        let cfg =
            AuditConfig { stats_fields: vec!["retries".to_string()], ..AuditConfig::default() };
        assert!(legacy_findings("crates/core/src/x.rs", &lex(src), &cfg).is_empty());
    }

    #[test]
    fn retire_guard_needs_code_evidence_not_comment_mentions() {
        // A `Guard` mention in a comment is no longer guard evidence.
        let bare = "// the Guard is elsewhere\nh.retire(client, addr, len)?;\n";
        let f = run("crates/core/src/x.rs", bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, "retire-guard");

        let guarded = "let guard = pin(&shared, client)?;\nh.retire(client, addr, len)?;\n";
        assert!(run("crates/core/src/x.rs", guarded).is_empty());

        let marked = "// lint: retire-ok: teardown after quiesce\nh.retire(client, addr, len)?;\n";
        assert!(run("crates/core/src/x.rs", marked).is_empty());
    }

    #[test]
    fn block_async_brace_depth_survives_braces_in_strings() {
        // The old line-based depth tracker counted the `{` inside the
        // string and never saw the async fn close, so a later sync fn
        // was still "inside" it.
        let src = r#"
async fn a(x: u64) -> String {
    format!("{{x}}")
}
fn b(client: &mut FabricClient) {
    client.read_u64(addr).unwrap();
}
"#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn block_async_still_flags_blocking_access() {
        let src = "async fn a(client: &mut FabricClient) {\n    client.read_u64(addr).unwrap();\n}\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, "block-async");
    }

    #[test]
    fn pass_scoping_matches_the_old_linter() {
        let far = "let a = FarAddr(base + 8);\n";
        assert!(run("crates/fabric/src/x.rs", far).is_empty());
        assert!(!run("crates/core/src/x.rs", far).is_empty());
        let block = "async fn a(client: &mut C) {\n    client.read(a, 8);\n}\n";
        assert!(run("crates/serve/src/x.rs", block).is_empty());
        assert!(!run("crates/core/src/x.rs", block).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let a = FarAddr(b + 8); }\n}\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
