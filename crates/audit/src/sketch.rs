//! Per-function control-flow sketches.
//!
//! The extractor walks the significant token stream of a lexed file and
//! produces, for every `fn` body, an ordered event list: scope
//! openings/closings (loop bodies flagged), serial fabric verbs with
//! the identifiers they touch, batch adopters, `.await` suspension
//! points, lease-lock acquire/release pairs, `let` bindings (tagged
//! when their initializer issues a fabric verb or pins an epoch
//! guard), and explicit `drop(x)` calls. The dataflow passes in
//! [`crate::passes`] run over these events; they never look at raw
//! source again.
//!
//! Verb recognition follows the repo-wide receiver convention that the
//! `block-async` lint already enshrined: a blocking `&mut FabricClient`
//! receiver is named `client` (or `c`/`cl` inside `.with(|c| …)`
//! closures and helper bodies). Raw verbs (`read`, `write`, `cas`,
//! `faa`, …) must sit on a client-ish receiver; structure-level verbs
//! (`get`, `insert`, `enqueue`, …) must pass a client-ish argument —
//! which is exactly what separates `tree.get(client, k)` (one-plus
//! round trips) from `map.get(&k)` (a plain `HashMap` probe).

use crate::lex::{Kind, Lexed, Token};

/// Serial fabric verbs on a client receiver — each call is at least one
/// round trip (posted writes are one message).
pub const RAW_VERBS: &[&str] = &[
    "read",
    "write",
    "read_u64",
    "write_u64",
    "cas",
    "faa",
    "post_write_u64",
    "post_faa_u64",
    "load0",
    "load2",
    "store2",
    "rgather",
    "wscatter",
    "faai_swap_guarded",
    "notify0",
    "notifye",
    "notify0d",
];

/// Structure-level verbs: one-plus round trips when a client-ish
/// identifier is among the arguments.
pub const STRUCT_VERBS: &[&str] = &[
    "get", "insert", "remove", "push", "pop", "enqueue", "dequeue", "put", "delete", "lookup",
];

/// Batched twins and pipelining entry points: seeing one inside a loop
/// body means the loop already amortizes its round trips.
pub const ADOPTERS: &[&str] = &[
    "pipeline",
    "batch",
    "commit",
    "get_many",
    "get_many_async",
    "read_ranges",
    "read_ranges_async",
    "dequeue_batch",
    "dequeue_batch_async",
    "scan",
];

/// The batched twin each serial verb should migrate to — surfaced in
/// `rt-in-loop` findings.
pub fn batched_twin(verb: &str) -> &'static str {
    match verb {
        "read" | "read_u64" | "load0" | "load2" => "FarVec::read_ranges or pipeline().read",
        "write" | "write_u64" | "post_write_u64" | "store2" => {
            "write coalescing or pipeline().write"
        }
        "get" | "lookup" => "HtTree::get_many",
        "dequeue" | "pop" => "FarQueue::dequeue_batch",
        "cas" | "faa" | "post_faa_u64" | "faai_swap_guarded" => "pipeline() descriptors",
        _ => "a pipeline() batch behind one doorbell",
    }
}

/// Lease-lock classes — acquire/release must match within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `FarMutex::lock` / `unlock`.
    Mutex,
    /// `FarRwLock::read_lock` / `read_unlock`.
    Read,
    /// `FarRwLock::write_lock` / `write_unlock`.
    Write,
}

/// One sketch event, in source order.
#[derive(Debug, Clone)]
pub enum Ev {
    /// A `{` — `is_loop` when it opens a `for`/`while`/`loop` body.
    Open {
        /// Line of the brace.
        line: u32,
        /// Loop-body flag.
        is_loop: bool,
    },
    /// The matching `}`.
    Close {
        /// Line of the brace.
        line: u32,
    },
    /// A serial fabric verb call.
    Verb {
        /// Line of the method name.
        line: u32,
        /// Verb name (`read`, `enqueue`, …).
        name: String,
        /// Receiver and argument identifiers (for dataflow).
        idents: Vec<String>,
    },
    /// A batch adopter call (`pipeline`, `get_many`, …).
    Adopter {
        /// Line of the call.
        line: u32,
    },
    /// A `.await` suspension point.
    Await {
        /// Line of the `await`.
        line: u32,
    },
    /// A lease-lock acquisition with a client argument.
    Acquire {
        /// Line of the call.
        line: u32,
        /// Lock class.
        kind: LockKind,
    },
    /// The matching release verb.
    Release {
        /// Line of the call.
        line: u32,
        /// Lock class.
        kind: LockKind,
    },
    /// A `let` binding.
    Let {
        /// Line of the `let`.
        line: u32,
        /// Bound (lowercase) pattern identifiers.
        names: Vec<String>,
        /// Initializer contained a fabric verb.
        from_verb: bool,
        /// Initializer contained an epoch `pin(…)`.
        from_pin: bool,
    },
    /// An explicit `drop(x)`.
    DropIdent {
        /// Line of the call.
        line: u32,
        /// The dropped identifier.
        name: String,
    },
}

impl Ev {
    /// The source line the event anchors to.
    pub fn line(&self) -> u32 {
        match self {
            Ev::Open { line, .. }
            | Ev::Close { line }
            | Ev::Verb { line, .. }
            | Ev::Adopter { line }
            | Ev::Await { line }
            | Ev::Acquire { line, .. }
            | Ev::Release { line, .. }
            | Ev::Let { line, .. }
            | Ev::DropIdent { line, .. } => *line,
        }
    }
}

/// The control-flow sketch of one function body.
pub struct FnSketch {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Declared `async fn`.
    pub is_async: bool,
    /// Body sits inside an `impl Drop for …` block.
    pub in_drop_impl: bool,
    /// Ordered events.
    pub events: Vec<Ev>,
}

/// True for identifiers the repo uses for blocking fabric clients.
pub fn client_ish(ident: &str) -> bool {
    ident == "c" || ident == "cl" || ident.ends_with("client")
}

fn lower_binding(ident: &str) -> bool {
    !matches!(ident, "mut" | "ref" | "box" | "_")
        && ident
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

/// Extracts every function sketch from a lexed file, stopping at the
/// `#[cfg(test)]` cutoff (tests exercise protocols; they do not define
/// them).
pub fn extract(lx: &Lexed) -> Vec<FnSketch> {
    let cutoff = lx.test_cutoff_line().unwrap_or(u32::MAX);
    let sig: Vec<usize> = lx
        .significant()
        .into_iter()
        .filter(|&i| lx.tokens[i].line < cutoff)
        .collect();
    let toks: Vec<&Token> = sig.iter().map(|&i| &lx.tokens[i]).collect();
    let text = |k: usize| -> &str { lx.text(toks[k]) };

    let mut out = Vec::new();
    // Stack of brace contexts opened so far at item level; `true` for
    // `impl Drop for …` block bodies.
    let mut impl_drop_stack: Vec<bool> = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        let t = toks[k];
        match (t.kind, text(k)) {
            (Kind::Ident, "impl") => {
                // Scan the impl header up to its `{`, remembering
                // whether it is `impl Drop for …`.
                let mut saw_drop = false;
                let mut saw_for = false;
                let mut j = k + 1;
                while j < toks.len() && text(j) != "{" && text(j) != ";" {
                    if toks[j].kind == Kind::Ident {
                        match text(j) {
                            "Drop" => saw_drop = true,
                            "for" => saw_for = true,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if j < toks.len() && text(j) == "{" {
                    impl_drop_stack.push(saw_drop && saw_for);
                    k = j + 1;
                } else {
                    k = j + 1;
                }
            }
            (Kind::Punct, "{") => {
                // A brace at item level that is not an impl body —
                // mod body, match in a const, … Track it so the
                // impl_drop_stack stays balanced.
                impl_drop_stack.push(impl_drop_stack.last().copied().unwrap_or(false));
                k += 1;
            }
            (Kind::Punct, "}") => {
                impl_drop_stack.pop();
                k += 1;
            }
            (Kind::Ident, "fn") => {
                let is_async = (k.saturating_sub(3)..k).any(|j| text(j) == "async");
                let name = if k + 1 < toks.len() && toks[k + 1].kind == Kind::Ident {
                    text(k + 1).to_string()
                } else {
                    "<fn>".to_string()
                };
                let fn_line = t.line;
                // Skip the signature: find the body `{` at zero
                // paren/angle depth (`->` arrows excluded), or `;` for
                // a bodyless trait method.
                let mut paren = 0i64;
                let mut angle = 0i64;
                let mut j = k + 1;
                let mut body = None;
                while j < toks.len() {
                    match text(j) {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "<" => angle += 1,
                        ">" if j > 0 && text(j - 1) != "-" => {
                            angle = (angle - 1).max(0);
                        }
                        "{" if paren == 0 && angle <= 0 => {
                            body = Some(j);
                            break;
                        }
                        ";" if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let Some(open) = body else {
                    k = j + 1;
                    continue;
                };
                let in_drop_impl = impl_drop_stack.last().copied().unwrap_or(false);
                let (events, after) = walk_body(&toks, open, |k| lx.text(toks[k]));
                out.push(FnSketch { name, line: fn_line, is_async, in_drop_impl, events });
                k = after;
            }
            _ => k += 1,
        }
    }
    out
}

/// An in-flight `let` statement capture: bound names, the brace depth
/// the statement sits at, whether scanning is past the `=`, and what
/// the initializer contained so far.
struct LetCap {
    line: u32,
    names: Vec<String>,
    depth: i64,
    in_rhs: bool,
    from_verb: bool,
    from_pin: bool,
}

impl LetCap {
    fn into_ev(self) -> Ev {
        Ev::Let {
            line: self.line,
            names: self.names,
            from_verb: self.from_verb,
            from_pin: self.from_pin,
        }
    }
}

/// Walks one `{ … }` body starting at the opening brace index; returns
/// the event list and the index one past the closing brace.
fn walk_body<'a>(
    toks: &[&Token],
    open: usize,
    text: impl Fn(usize) -> &'a str,
) -> (Vec<Ev>, usize) {
    let mut events = Vec::new();
    let mut depth = 0i64;
    let mut pending_loop = false;
    // Stack: closures and nested blocks inside an initializer may open
    // their own `let` statements before the outer one ends.
    let mut lets: Vec<LetCap> = Vec::new();
    let mut k = open;
    while k < toks.len() {
        let tx = text(k);
        match tx {
            "{" => {
                depth += 1;
                events.push(Ev::Open { line: toks[k].line, is_loop: pending_loop });
                pending_loop = false;
                k += 1;
                continue;
            }
            "}" => {
                depth -= 1;
                // A scope close ends any let statement opened inside it
                // (`match`/`if` initializers end at the `;` instead, at
                // their own depth).
                while lets.last().is_some_and(|c| c.depth > depth) {
                    events.push(lets.pop().expect("let cap").into_ev());
                }
                events.push(Ev::Close { line: toks[k].line });
                k += 1;
                if depth == 0 {
                    return (events, k);
                }
                continue;
            }
            ";" => {
                if lets.last().is_some_and(|c| c.depth == depth) {
                    events.push(lets.pop().expect("let cap").into_ev());
                }
                k += 1;
                continue;
            }
            "for" | "while" | "loop" => {
                // `for` in `for<'a>` bounds is followed by `<`.
                if !(tx == "for" && k + 1 < toks.len() && text(k + 1) == "<") {
                    pending_loop = true;
                }
                k += 1;
                continue;
            }
            "=" => {
                let prev = if k > 0 { text(k - 1) } else { "" };
                let next = if k + 1 < toks.len() { text(k + 1) } else { "" };
                if let Some(cap) = lets.last_mut() {
                    if !cap.in_rhs
                        && cap.depth == depth
                        && next != "="
                        && !matches!(prev, "=" | "!" | "<" | ">")
                    {
                        cap.in_rhs = true;
                    }
                }
                k += 1;
                continue;
            }
            "let" => {
                lets.push(LetCap {
                    line: toks[k].line,
                    names: Vec::new(),
                    depth,
                    in_rhs: false,
                    from_verb: false,
                    from_pin: false,
                });
                k += 1;
                continue;
            }
            _ => {}
        }

        if toks[k].kind == Kind::Ident {
            let ident = tx;
            let prev = if k > 0 { text(k - 1) } else { "" };
            let prev2 = if k > 1 { text(k - 2) } else { "" };
            let next = if k + 1 < toks.len() { text(k + 1) } else { "" };

            // Pattern identifiers of the innermost open let (before its
            // `=`).
            if let Some(cap) = lets.last_mut() {
                if !cap.in_rhs && lower_binding(ident) && prev != ":" && prev != "." {
                    cap.names.push(ident.to_string());
                }
            }

            // `.await` suspension point.
            if ident == "await" && prev == "." {
                events.push(Ev::Await { line: toks[k].line });
                k += 1;
                continue;
            }

            // `drop(x)`.
            if ident == "drop" && prev != "." && prev != ":" && next == "(" {
                if k + 3 < toks.len() && toks[k + 2].kind == Kind::Ident && text(k + 3) == ")" {
                    events.push(Ev::DropIdent {
                        line: toks[k].line,
                        name: text(k + 2).to_string(),
                    });
                }
                k += 1;
                continue;
            }

            // `pin(…)` call (epoch guard), bare or path-qualified
            // (`farmem_reclaim::pin`), not `Box::pin` / `self.pin_epoch`.
            let path_pin = prev == ":" && prev2 == ":" && k >= 3 && text(k - 3) != "Box";
            if ident == "pin" && next == "(" && prev != "." && (prev != ":" || path_pin) {
                if let Some(cap) = lets.last_mut() {
                    if cap.in_rhs || cap.depth < depth {
                        cap.from_pin = true;
                    }
                }
                k += 1;
                continue;
            }

            // Method calls: `.name(…)`.
            if prev == "." && next == "(" && prev2 != "." {
                let (args, direct) = call_idents(toks, k + 1, &text);
                let receiver = if k >= 2 && toks[k - 2].kind == Kind::Ident {
                    text(k - 2)
                } else {
                    ""
                };
                let line = toks[k].line;
                let is_raw = RAW_VERBS.contains(&ident) && client_ish(receiver);
                let is_struct = STRUCT_VERBS.contains(&ident)
                    && direct.iter().any(|a| client_ish(a))
                    && !client_ish(receiver);
                if ADOPTERS.contains(&ident) {
                    events.push(Ev::Adopter { line });
                } else if matches!(ident, "lock" | "read_lock" | "write_lock") {
                    if direct.iter().any(|a| client_ish(a)) {
                        let kind = match ident {
                            "read_lock" => LockKind::Read,
                            "write_lock" => LockKind::Write,
                            _ => LockKind::Mutex,
                        };
                        events.push(Ev::Acquire { line, kind });
                    }
                } else if matches!(ident, "unlock" | "read_unlock" | "write_unlock") {
                    if direct.iter().any(|a| client_ish(a)) {
                        let kind = match ident {
                            "read_unlock" => LockKind::Read,
                            "write_unlock" => LockKind::Write,
                            _ => LockKind::Mutex,
                        };
                        events.push(Ev::Release { line, kind });
                    }
                } else if is_raw || is_struct {
                    let mut idents = args;
                    if !receiver.is_empty() {
                        idents.push(receiver.to_string());
                    }
                    if let Some(cap) = lets.last_mut() {
                        if cap.in_rhs || cap.depth < depth {
                            cap.from_verb = true;
                        }
                    }
                    events.push(Ev::Verb { line, name: ident.to_string(), idents });
                }
                k += 1;
                continue;
            }
        }
        k += 1;
    }
    (events, k)
}

/// Identifiers inside the argument list whose `(` sits at index
/// `open`: all of them (any nesting depth — guard-escape wants a
/// dereference wherever it hides) and the *direct* ones (depth 1
/// only). Client-ish classification uses the direct list, so an
/// unrelated `client` or closure `|c|` inside a nested call —
/// `joins.push(scope.spawn(move || fabric.client()))` — cannot turn a
/// plain `Vec::push` into a fabric verb.
fn call_idents<'a>(
    toks: &[&Token],
    open: usize,
    text: &impl Fn(usize) -> &'a str,
) -> (Vec<String>, Vec<String>) {
    let mut depth = 0i64;
    let mut all = Vec::new();
    let mut direct = Vec::new();
    let mut k = open;
    while k < toks.len() {
        match text(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if toks[k].kind == Kind::Ident {
                    all.push(text(k).to_string());
                    if depth == 1 {
                        direct.push(text(k).to_string());
                    }
                }
            }
        }
        k += 1;
    }
    (all, direct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn sketch(src: &str) -> Vec<FnSketch> {
        extract(&lex(src))
    }

    #[test]
    fn finds_functions_loops_and_verbs() {
        let src = r#"
fn touch(client: &mut FabricClient, ptrs: &[u64]) {
    for p in ptrs {
        let v = client.read_u64(FarAddr(*p)).unwrap();
        consume(v);
    }
}
"#;
        let fns = sketch(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "touch");
        assert!(!fns[0].is_async);
        let loops = fns[0]
            .events
            .iter()
            .filter(|e| matches!(e, Ev::Open { is_loop: true, .. }))
            .count();
        assert_eq!(loops, 1);
        let verbs: Vec<&str> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Verb { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(verbs, vec!["read_u64"]);
    }

    #[test]
    fn struct_verbs_require_a_client_argument() {
        let src = r#"
fn f(client: &mut FabricClient, tree: &mut HtTree, map: &mut HashMap<u64, u64>) {
    let a = tree.get(client, 7).unwrap();
    let b = map.get(&7);
    map.insert(1, 2);
    tree.insert(client, 1, 2).unwrap();
}
"#;
        let fns = sketch(src);
        let verbs: Vec<&str> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Verb { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(verbs, vec!["get", "insert"], "HashMap calls must not count");
    }

    #[test]
    fn locks_need_client_args_so_std_mutex_is_ignored() {
        let src = r#"
fn f(client: &mut FabricClient, m: &FarMutex, s: &Mutex<u32>) {
    let g = s.lock().unwrap();
    m.lock(client, 100).unwrap();
    m.unlock(client).unwrap();
}
"#;
        let fns = sketch(src);
        let acquires = fns[0]
            .events
            .iter()
            .filter(|e| matches!(e, Ev::Acquire { .. }))
            .count();
        let releases = fns[0]
            .events
            .iter()
            .filter(|e| matches!(e, Ev::Release { .. }))
            .count();
        assert_eq!((acquires, releases), (1, 1));
    }

    #[test]
    fn drop_impl_and_async_flags() {
        let src = r#"
impl Drop for Widget {
    fn drop(&mut self) { let x = 1; }
}
impl Widget {
    pub async fn go(&self) { work().await; }
}
"#;
        let fns = sketch(src);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].in_drop_impl);
        assert!(!fns[1].in_drop_impl);
        assert!(fns[1].is_async);
        assert!(fns[1].events.iter().any(|e| matches!(e, Ev::Await { .. })));
    }

    #[test]
    fn let_bindings_tag_verb_and_pin_initializers() {
        let src = r#"
fn f(client: &mut FabricClient, shared: &SharedReclaim) {
    let guard = pin(shared, client).unwrap();
    let ptr = client.read_u64(addr).unwrap();
    let plain = 5;
}
"#;
        let fns = sketch(src);
        let lets: Vec<(Vec<String>, bool, bool)> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Let { names, from_verb, from_pin, .. } => {
                    Some((names.clone(), *from_verb, *from_pin))
                }
                _ => None,
            })
            .collect();
        assert_eq!(lets.len(), 3);
        assert_eq!(lets[0], (vec!["guard".to_string()], false, true));
        assert_eq!(lets[1], (vec!["ptr".to_string()], true, false));
        assert_eq!(lets[2], (vec!["plain".to_string()], false, false));
    }

    #[test]
    fn path_qualified_pin_is_an_epoch_pin() {
        let src = r#"
fn f(client: &mut FabricClient, shared: &SharedReclaim) {
    let guard = farmem_reclaim::pin(shared, client).unwrap();
}
"#;
        let fns = sketch(src);
        assert!(fns[0].events.iter().any(|e| match e {
            Ev::Let { from_pin, .. } => *from_pin,
            _ => false,
        }));
    }

    #[test]
    fn box_pin_is_not_an_epoch_pin() {
        let src = r#"
fn f() {
    let fut = Box::pin(async move { 1 });
}
"#;
        let fns = sketch(src);
        assert!(fns[0].events.iter().all(|e| match e {
            Ev::Let { from_pin, .. } => !from_pin,
            _ => true,
        }));
    }

    #[test]
    fn let_else_scans_to_the_statement_end() {
        let src = r#"
fn f(client: &mut FabricClient, tree: &HtTree) -> Result<()> {
    let Some(ptr) = tree.get(client, 9)? else {
        return Ok(());
    };
    use_it(ptr);
    Ok(())
}
"#;
        let fns = sketch(src);
        let lets: Vec<(Vec<String>, bool)> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Let { names, from_verb, .. } => Some((names.clone(), *from_verb)),
                _ => None,
            })
            .collect();
        assert_eq!(lets, vec![(vec!["ptr".to_string()], true)]);
    }

    #[test]
    fn adopters_inside_loops_are_events() {
        let src = r#"
fn f(client: &mut FabricClient, keys: &[u64], tree: &mut HtTree) {
    for chunk in keys.chunks(64) {
        let got = tree.get_many(client, chunk).unwrap();
    }
}
"#;
        let fns = sketch(src);
        assert!(fns[0].events.iter().any(|e| matches!(e, Ev::Adopter { .. })));
    }
}
