//! The four dataflow passes over function sketches.
//!
//! Each pass encodes one far-memory discipline the paper's round-trip
//! arithmetic depends on (DESIGN.md §14 catalogs them):
//!
//! * **rt-in-loop** — a serial fabric verb inside a loop body with no
//!   batch adopter in scope is loop-carried RT amplification: the
//!   O(1)-RT structure the paper argues for silently becomes O(n)
//!   serial verbs. The finding names the batched twin to migrate to.
//! * **lock-across-rt** — a `FarMutex`/`FarRwLock` is *lease*-fenced
//!   (100 ms virtual); holding one across many round trips, or across
//!   any `.await` (unbounded suspension), is how a lease expires under
//!   the holder and a steal fences it out mid-critical-section.
//! * **guard-escape** — a far pointer read under an epoch `Guard` is
//!   only protected while that guard is alive; dereferencing it after
//!   the guard's scope ends races the reclaimer's grace detection
//!   (use-after-free on a one-sided fabric).
//! * **verb-in-drop** — fabric verbs inside `Drop` impls can't surface
//!   `FabricError`s and run at unpredictable times (mid-panic,
//!   mid-failover); both real `Drop` impls in the tree are purely
//!   local by design, and this pass keeps it that way.
//!
//! Deliberate exceptions carry `// audit: <pass>-ok: <why>` markers on
//! the finding line or within the four lines above — the same grammar
//! (and window) the legacy `lint: <name>-ok` markers use.

use crate::lex::{Kind, Lexed};
use crate::sketch::{batched_twin, Ev, FnSketch, LockKind};
use crate::{AuditConfig, Finding};

/// One `audit:`/`lint:` suppression marker: the pass it waives and the
/// line it sits on.
pub struct Marker {
    /// Pass name (`rt-in-loop`, `far-addr`, …).
    pub pass: String,
    /// 1-based line of the marker text.
    pub line: u32,
}

/// Extracts every suppression marker from the comment tokens.
/// Grammar: `audit: <pass>-ok[: <why>]` (new passes) and
/// `lint: <name>-ok[: <why>]` (legacy lints) — found anywhere inside a
/// line or block comment; a marker inside a string literal is data,
/// not a waiver.
pub fn markers(lx: &Lexed) -> Vec<Marker> {
    let mut out = Vec::new();
    for t in &lx.tokens {
        if !matches!(t.kind, Kind::LineComment | Kind::BlockComment) {
            continue;
        }
        let text = lx.text(t);
        for key in ["audit:", "lint:"] {
            let mut from = 0usize;
            while let Some(pos) = text[from..].find(key) {
                let at = from + pos + key.len();
                from = at;
                let rest = text[at..].trim_start();
                let word: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if let Some(pass) = word.strip_suffix("-ok") {
                    if !pass.is_empty() {
                        let line = t.line + text[..at].matches('\n').count() as u32;
                        out.push(Marker { pass: pass.to_string(), line });
                    }
                }
            }
        }
    }
    out
}

/// True when a finding of `pass` at `line` carries a marker on the
/// line itself or within the four lines above.
pub fn suppressed(marks: &[Marker], pass: &str, line: u32) -> bool {
    marks
        .iter()
        .any(|m| m.pass == pass && m.line <= line && m.line + 4 >= line)
}

/// Runs all four dataflow passes over one file's sketches.
pub fn dataflow_findings(
    path: &str,
    lx: &Lexed,
    sketches: &[FnSketch],
    cfg: &AuditConfig,
) -> Vec<Finding> {
    let marks = markers(lx);
    let mut out = Vec::new();
    for f in sketches {
        if crate::pass_enabled("rt-in-loop", path) {
            rt_in_loop(path, f, &marks, &mut out);
        }
        if crate::pass_enabled("lock-across-rt", path) {
            lock_across_rt(path, f, &marks, cfg, &mut out);
        }
        if crate::pass_enabled("guard-escape", path) {
            guard_escape(path, f, &marks, &mut out);
        }
        if crate::pass_enabled("verb-in-drop", path) {
            verb_in_drop(path, f, &marks, &mut out);
        }
    }
    out
}

struct LoopFrame {
    head_line: u32,
    verbs: Vec<(u32, String)>,
    adopter: bool,
}

/// One finding per innermost loop that issues serial verbs without a
/// batch adopter in scope.
fn rt_in_loop(path: &str, f: &FnSketch, marks: &[Marker], out: &mut Vec<Finding>) {
    let mut scopes: Vec<bool> = Vec::new();
    let mut loops: Vec<LoopFrame> = Vec::new();
    let flush = |frame: LoopFrame, out: &mut Vec<Finding>| {
        if frame.adopter || frame.verbs.is_empty() {
            return;
        }
        let (line, first) = frame.verbs[0].clone();
        if suppressed(marks, "rt-in-loop", line) {
            return;
        }
        let names: Vec<&str> = frame.verbs.iter().map(|(_, n)| n.as_str()).collect();
        out.push(Finding {
            file: path.to_string(),
            line,
            function: f.name.clone(),
            pass: "rt-in-loop".to_string(),
            message: format!(
                "{} serial fabric verb(s) ({}) in the loop starting at line {} with no \
                 batch adopter in scope — loop-carried round-trip amplification",
                frame.verbs.len(),
                names.join(", "),
                frame.head_line,
            ),
            suggestion: format!(
                "batch through {}, or annotate `// audit: rt-in-loop-ok: <why>`",
                batched_twin(&first)
            ),
        });
    };
    for ev in &f.events {
        match ev {
            Ev::Open { line, is_loop } => {
                scopes.push(*is_loop);
                if *is_loop {
                    loops.push(LoopFrame { head_line: *line, verbs: Vec::new(), adopter: false });
                }
            }
            Ev::Close { .. } => {
                let closed_loop = scopes.pop() == Some(true);
                match loops.pop() {
                    Some(frame) if closed_loop => flush(frame, out),
                    Some(frame) => loops.push(frame),
                    None => {}
                }
            }
            Ev::Verb { line, name, .. } => {
                if let Some(frame) = loops.last_mut() {
                    frame.verbs.push((*line, name.clone()));
                }
            }
            Ev::Adopter { .. } => {
                for frame in loops.iter_mut() {
                    frame.adopter = true;
                }
            }
            _ => {}
        }
    }
    for frame in loops.drain(..).rev() {
        flush(frame, out);
    }
}

struct LockRegion {
    kind: LockKind,
    line: u32,
    verbs: u32,
    awaits: u32,
}

/// Flags lock-held regions spanning ≥ `lock_rt_threshold` fabric verbs
/// or any `.await` — the lease-expiry hazard.
fn lock_across_rt(
    path: &str,
    f: &FnSketch,
    marks: &[Marker],
    cfg: &AuditConfig,
    out: &mut Vec<Finding>,
) {
    let mut open: Vec<LockRegion> = Vec::new();
    for ev in &f.events {
        match ev {
            Ev::Verb { .. } | Ev::Adopter { .. } => {
                for r in open.iter_mut() {
                    r.verbs += 1;
                }
            }
            Ev::Await { .. } => {
                for r in open.iter_mut() {
                    r.awaits += 1;
                }
            }
            Ev::Acquire { line, kind } => {
                open.push(LockRegion { kind: *kind, line: *line, verbs: 0, awaits: 0 });
            }
            Ev::Release { kind, .. } => {
                let Some(pos) = open.iter().rposition(|r| r.kind == *kind) else { continue };
                let r = open.remove(pos);
                let over = r.verbs >= cfg.lock_rt_threshold as u32 || r.awaits > 0;
                if over && !suppressed(marks, "lock-across-rt", r.line) {
                    let what = if r.awaits > 0 {
                        format!("{} .await point(s)", r.awaits)
                    } else {
                        format!("{} fabric verbs (threshold {})", r.verbs, cfg.lock_rt_threshold)
                    };
                    out.push(Finding {
                        file: path.to_string(),
                        line: r.line,
                        function: f.name.clone(),
                        pass: "lock-across-rt".to_string(),
                        message: format!(
                            "lease lock held across {what} — the 100 ms virtual lease can \
                             expire under the holder and a contender will fence it out"
                        ),
                        suggestion: "shrink the critical section (stage work before the lock, \
                                     commit under it), or annotate \
                                     `// audit: lock-across-rt-ok: <why>`"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

struct LiveGuard {
    id: usize,
    name: String,
    depth: usize,
    alive: bool,
}

/// Flags fabric verbs that dereference an identifier derived under an
/// epoch guard after every guard it was derived under has died.
fn guard_escape(path: &str, f: &FnSketch, marks: &[Marker], out: &mut Vec<Finding>) {
    let mut depth = 0usize;
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut next_id = 0usize;
    // ident -> ids of the guards alive when it was bound from a verb.
    let mut derived: std::collections::HashMap<String, Vec<usize>> =
        std::collections::HashMap::new();
    for ev in &f.events {
        match ev {
            Ev::Open { .. } => depth += 1,
            Ev::Close { .. } => {
                depth = depth.saturating_sub(1);
                for g in guards.iter_mut() {
                    if g.depth > depth {
                        g.alive = false;
                    }
                }
            }
            Ev::Let { names, from_verb, from_pin, .. } => {
                if *from_pin {
                    for n in names {
                        guards.push(LiveGuard {
                            id: next_id,
                            name: n.clone(),
                            depth,
                            alive: true,
                        });
                        next_id += 1;
                    }
                } else if *from_verb {
                    let live: Vec<usize> =
                        guards.iter().filter(|g| g.alive).map(|g| g.id).collect();
                    for n in names {
                        if live.is_empty() {
                            derived.remove(n);
                        } else {
                            derived.insert(n.clone(), live.clone());
                        }
                    }
                } else {
                    // A fresh non-verb binding shadows any stale value.
                    for n in names {
                        derived.remove(n);
                    }
                }
            }
            Ev::DropIdent { name, .. } => {
                for g in guards.iter_mut() {
                    if g.name == *name {
                        g.alive = false;
                    }
                }
            }
            Ev::Verb { line, name, idents } => {
                let dead = |id: &usize| guards.iter().any(|g| g.id == *id && !g.alive);
                for ident in idents {
                    let Some(ids) = derived.get(ident) else { continue };
                    if ids.iter().all(dead) && !suppressed(marks, "guard-escape", *line) {
                        out.push(Finding {
                            file: path.to_string(),
                            line: *line,
                            function: f.name.clone(),
                            pass: "guard-escape".to_string(),
                            message: format!(
                                "`{ident}` was derived from a fabric read under an epoch \
                                 guard that has since ended, and `{name}` dereferences it \
                                 here — the reclaimer may already have freed the target"
                            ),
                            suggestion: "keep the guard alive across every use of the \
                                         derived pointer (or re-pin and re-read), or \
                                         annotate `// audit: guard-escape-ok: <why>`"
                                .to_string(),
                        });
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Flags any fabric verb (including lock traffic) inside an
/// `impl Drop` body.
fn verb_in_drop(path: &str, f: &FnSketch, marks: &[Marker], out: &mut Vec<Finding>) {
    if !f.in_drop_impl {
        return;
    }
    for ev in &f.events {
        let (line, what) = match ev {
            Ev::Verb { line, name, .. } => (*line, name.clone()),
            Ev::Adopter { line } => (*line, "batched verbs".to_string()),
            Ev::Acquire { line, .. } => (*line, "lock acquisition".to_string()),
            Ev::Release { line, .. } => (*line, "lock release".to_string()),
            _ => continue,
        };
        if suppressed(marks, "verb-in-drop", line) {
            continue;
        }
        out.push(Finding {
            file: path.to_string(),
            line,
            function: f.name.clone(),
            pass: "verb-in-drop".to_string(),
            message: format!(
                "fabric access ({what}) inside a Drop impl — retry/backoff cannot \
                 surface errors from a destructor, and drops run at unpredictable \
                 times (mid-panic, mid-failover)"
            ),
            suggestion: "move far-memory teardown to an explicit `retire`/`close` \
                         method (Drop should only release local state), or annotate \
                         `// audit: verb-in-drop-ok: <why>`"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::sketch::extract;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let sketches = extract(&lx);
        dataflow_findings(path, &lx, &sketches, &AuditConfig::default())
    }

    #[test]
    fn rt_in_loop_flags_serial_verbs_and_honors_adopters() {
        let bad = r#"
fn chase(client: &mut FabricClient, ptrs: &[u64]) {
    for p in ptrs {
        let v = client.read_u64(FarAddr(*p)).unwrap();
    }
}
"#;
        let f = run("crates/core/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].pass, "rt-in-loop");

        let batched = r#"
fn chase(client: &mut FabricClient, vec: &FarVec, ranges: &[(u64, u64)]) {
    for chunk in ranges.chunks(32) {
        let v = vec.read_ranges(client, chunk).unwrap();
    }
}
"#;
        assert!(run("crates/core/src/x.rs", batched).is_empty());
    }

    #[test]
    fn rt_in_loop_marker_suppresses() {
        let src = r#"
fn walk(client: &mut FabricClient, mut p: u64) {
    while p != 0 {
        // audit: rt-in-loop-ok: pointer chase — each RT depends on the last
        p = client.read_u64(FarAddr(p)).unwrap();
    }
}
"#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn rt_in_loop_skips_measurement_and_baseline_crates() {
        let src = r#"
fn drive(client: &mut FabricClient, ptrs: &[u64]) {
    for p in ptrs {
        let v = client.read_u64(FarAddr(*p)).unwrap();
    }
}
"#;
        assert!(run("crates/bench/src/bin/e1.rs", src).is_empty());
        assert!(run("crates/baselines/src/list.rs", src).is_empty());
        assert!(!run("crates/serve/src/store.rs", src).is_empty());
    }

    #[test]
    fn lock_across_rt_counts_verbs_between_acquire_and_release() {
        let src = r#"
fn mutate(client: &mut FabricClient, m: &FarMutex, a: FarAddr) -> Result<()> {
    m.lock(client, 100)?;
    client.write_u64(a, 1)?;
    client.write_u64(a, 2)?;
    client.write_u64(a, 3)?;
    client.write_u64(a, 4)?;
    m.unlock(client)?;
    Ok(())
}
"#;
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].pass, "lock-across-rt");

        let short = r#"
fn mutate(client: &mut FabricClient, m: &FarMutex, a: FarAddr) -> Result<()> {
    m.lock(client, 100)?;
    client.write_u64(a, 1)?;
    m.unlock(client)?;
    Ok(())
}
"#;
        assert!(run("crates/core/src/x.rs", short).is_empty());
    }

    #[test]
    fn lock_across_await_always_flags() {
        let src = r#"
async fn mutate(ac: &AsyncClient, m: &FarMutex) -> Result<()> {
    m.lock(client, 100)?;
    ac.read(a, 8).await?;
    m.unlock(client)?;
    Ok(())
}
"#;
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".await"));
    }

    #[test]
    fn guard_escape_catches_use_after_scope() {
        let src = r#"
fn escape(client: &mut FabricClient, shared: &SharedReclaim, slot: FarAddr) -> Result<u64> {
    let ptr;
    {
        let guard = pin(shared, client)?;
        ptr = 0;
        let target = client.read_u64(slot)?;
        consume(target);
    }
    let stale = client.read_u64(FarAddr(target))?;
    Ok(stale)
}
"#;
        // `target` derived under the guard, used by a verb after the
        // guard's scope closed.
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].pass, "guard-escape");
    }

    #[test]
    fn guard_escape_allows_use_while_guard_lives_and_drop_kills() {
        let ok = r#"
fn fine(client: &mut FabricClient, shared: &SharedReclaim, slot: FarAddr) -> Result<u64> {
    let guard = pin(shared, client)?;
    let target = client.read_u64(slot)?;
    let v = client.read_u64(FarAddr(target))?;
    drop(guard);
    Ok(v)
}
"#;
        assert!(run("crates/core/src/x.rs", ok).is_empty());

        let bad = r#"
fn late(client: &mut FabricClient, shared: &SharedReclaim, slot: FarAddr) -> Result<u64> {
    let guard = pin(shared, client)?;
    let target = client.read_u64(slot)?;
    drop(guard);
    let v = client.read_u64(FarAddr(target))?;
    Ok(v)
}
"#;
        let f = run("crates/core/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].pass, "guard-escape");
    }

    #[test]
    fn verb_in_drop_flags_only_drop_impls() {
        let src = r#"
impl Drop for Lease {
    fn drop(&mut self) {
        let _ = self.client.write_u64(self.addr, 0);
    }
}
impl Lease {
    fn release(&mut self, client: &mut FabricClient) {
        let _ = client.write_u64(self.addr, 0);
    }
}
"#;
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].pass, "verb-in-drop");
        assert_eq!(f[0].function, "drop");
    }
}
