//! The record store: slab-class values with TTL words, freed through
//! epoch reclamation.
//!
//! Follows the `FarBlobMap` layout (a value is a pointer to an immutable
//! far record) with one extra header word for the absolute expiry
//! instant:
//!
//! ```text
//! record := { len: u64 | expiry_ns: u64 | payload bytes }
//! ```
//!
//! Records are slab-allocated ([`FarAlloc`] size classes), so the bytes
//! a tenant is charged for are the *rounded* class — exactly what
//! [`charged_bytes`] reports and what `FarAlloc::class_stats` audits.
//! Every unlink (overwrite, delete, expiry, eviction) retires the old
//! record into the reclaim limbo list; it stays readable by concurrent
//! epoch guards until grace elapses, and only then returns to the
//! allocator. Mutations of one key must stay single-writer (the server
//! guarantees this by routing each key to one owning worker).

use farmem_alloc::{AllocHint, FarAlloc};
use farmem_core::{HtTree, HtTreeConfig, HtTreeHandle};
use farmem_fabric::{FabricClient, FarAddr, PAGE, WORD};
use farmem_reclaim::{pin, SharedReclaim};
use farmem_runtime::AsyncClient;
use std::sync::Arc;

use crate::Result;

/// Record header: length word + expiry word.
pub const RECORD_HEADER: u64 = 2 * WORD;

/// Largest slab size class (mirrors the allocator's rounding boundary).
const MAX_CLASS: u64 = 2048;

/// The far-memory bytes a stored value of `len` payload bytes is
/// charged: header plus payload, rounded up to the allocator's
/// power-of-two size class (whole pages past the slab boundary). This
/// is the quantity tenant byte quotas meter, so quota accounting and
/// allocator occupancy reconcile exactly.
pub fn charged_bytes(len: u64) -> u64 {
    let raw = RECORD_HEADER + len;
    if raw > MAX_CLASS {
        raw.div_ceil(PAGE) * PAGE
    } else {
        raw.max(WORD).next_power_of_two()
    }
}

/// What a lookup found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GetOutcome {
    /// No record under the key.
    Miss,
    /// A record exists but its TTL instant has passed; it is *never*
    /// returned to the caller. The owning worker unlinks and retires it.
    Expired,
    /// A live value.
    Hit(Vec<u8>),
}

/// One handle onto the shared record tree (per worker or per session;
/// cheap, client-side).
pub struct RecordStore {
    inner: HtTreeHandle,
    alloc: Arc<FarAlloc>,
    reclaim: SharedReclaim,
}

impl RecordStore {
    /// Bytes fetched with the first record read; values up to
    /// `PREFETCH - RECORD_HEADER` bytes complete in that one access.
    pub const PREFETCH: u64 = 256;

    /// Attaches a handle to the shared tree in reclaim mode.
    pub fn attach(
        client: &mut FabricClient,
        alloc: &Arc<FarAlloc>,
        tree: HtTree,
        cfg: HtTreeConfig,
        reclaim: SharedReclaim,
    ) -> Result<RecordStore> {
        let inner = tree.attach_reclaimed(client, alloc, cfg, reclaim.clone())?;
        Ok(RecordStore { inner, alloc: alloc.clone(), reclaim: reclaim.clone() })
    }

    /// The underlying tree handle's stats.
    pub fn tree_stats(&self) -> farmem_core::HtTreeStats {
        self.inner.stats()
    }

    /// Stores `value` under the namespaced key with an absolute expiry
    /// instant (`0` = never). Returns `true` when an existing record was
    /// replaced (and retired).
    pub fn put(
        &mut self,
        client: &mut FabricClient,
        nskey: u64,
        value: &[u8],
        expiry_ns: u64,
    ) -> Result<bool> {
        let old = self.inner.get(client, nskey)?;
        let record = self.alloc.alloc(RECORD_HEADER + value.len() as u64, AllocHint::Spread)?;
        let mut bytes = Vec::with_capacity(16 + value.len());
        bytes.extend_from_slice(&(value.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&expiry_ns.to_le_bytes());
        bytes.extend_from_slice(value);
        client.write(record, &bytes)?;
        self.inner.put(client, nskey, record.0)?;
        if let Some(ptr) = old {
            // lint: retire-ok: the overwritten record was unlinked by the
            // tree put above; readers hold epoch guards until grace.
            self.retire(client, ptr)?;
        }
        Ok(old.is_some())
    }

    /// Looks the key up and reads the record, enforcing the TTL against
    /// `now_ns`: an expired record is reported as [`GetOutcome::Expired`]
    /// and its payload is never materialized. The read runs under an
    /// epoch guard, so a record another worker is concurrently retiring
    /// stays readable until grace elapses.
    pub fn get(&mut self, client: &mut FabricClient, nskey: u64, now_ns: u64) -> Result<GetOutcome> {
        let guard = pin(&self.reclaim, client)?;
        let Some(ptr) = self.inner.get(client, nskey)? else {
            drop(guard);
            return Ok(GetOutcome::Miss);
        };
        let record = FarAddr(ptr);
        let first = client.read(record, Self::PREFETCH)?;
        let len = u64::from_le_bytes(first[0..8].try_into().expect("length word"));
        let expiry = u64::from_le_bytes(first[8..16].try_into().expect("expiry word"));
        if expiry != 0 && now_ns >= expiry {
            drop(guard);
            return Ok(GetOutcome::Expired);
        }
        let mut out = Vec::with_capacity(len as usize);
        let have = (Self::PREFETCH - RECORD_HEADER).min(len);
        out.extend_from_slice(&first[16..16 + have as usize]);
        if len > have {
            let tail = client.read(record.offset(RECORD_HEADER + have), len - have)?;
            out.extend_from_slice(&tail);
        }
        drop(guard);
        Ok(GetOutcome::Hit(out))
    }

    /// Async twin of [`get`](Self::get) over a batch of keys: the tree
    /// lookups post through one doorbell (`HtTree::get_many_async`), then
    /// every found record's prefetch read posts through a second shared
    /// doorbell — so an executor interleaves whole sessions' batches on
    /// one OS thread. TTL semantics are identical to the sync path.
    pub async fn get_many_async(
        &mut self,
        ac: &AsyncClient,
        nskeys: &[u64],
        now_ns: u64,
    ) -> Result<Vec<GetOutcome>> {
        // lint: block-ok — guard pin is control-plane (local unless the
        // epoch advanced), identical to the sync path.
        let guard = ac.with(|c| pin(&self.reclaim, c))?;
        let ptrs = self.inner.get_many_async(ac, nskeys).await?;
        let mut b = ac.batch();
        let mut slots = Vec::with_capacity(nskeys.len());
        for ptr in &ptrs {
            match ptr {
                Some(p) => {
                    slots.push(Some(b.read(FarAddr(*p), Self::PREFETCH)));
                }
                None => slots.push(None),
            }
        }
        let mut cq = b.commit().await;
        let mut out = Vec::with_capacity(nskeys.len());
        for (i, ptr) in ptrs.iter().enumerate() {
            let Some(p) = ptr else {
                out.push(GetOutcome::Miss);
                continue;
            };
            let slot = slots[i].expect("descriptor posted for found key");
            let first = match cq.take(slot) {
                Some(Ok(res)) => res.into_bytes(),
                // lint: block-ok — serial fallback after a failed
                // prefetch, identical to the sync path.
                // audit: rt-in-loop-ok: rare per-key fallback — the hot path
                // batched every prefetch through one doorbell above.
                _ => ac.with(|c| c.read(FarAddr(*p), Self::PREFETCH))?,
            };
            let len = u64::from_le_bytes(first[0..8].try_into().expect("length word"));
            let expiry = u64::from_le_bytes(first[8..16].try_into().expect("expiry word"));
            if expiry != 0 && now_ns >= expiry {
                out.push(GetOutcome::Expired);
                continue;
            }
            let mut v = Vec::with_capacity(len as usize);
            let have = (Self::PREFETCH - RECORD_HEADER).min(len);
            v.extend_from_slice(&first[16..16 + have as usize]);
            if len > have {
                let tail =
                    ac.read(FarAddr(*p).offset(RECORD_HEADER + have), len - have).await?;
                v.extend_from_slice(&tail);
            }
            out.push(GetOutcome::Hit(v));
        }
        drop(guard);
        Ok(out)
    }

    /// Unlinks the key and retires its record. Returns whether a record
    /// existed.
    pub fn remove(&mut self, client: &mut FabricClient, nskey: u64) -> Result<bool> {
        let old = self.inner.get(client, nskey)?;
        self.inner.remove(client, nskey)?;
        if let Some(ptr) = old {
            self.retire(client, ptr)?;
        }
        Ok(old.is_some())
    }

    /// Retires an unlinked record: reads its length word to recover the
    /// allocation size, then hands it to the limbo list. Readers holding
    /// epoch guards keep it readable until grace elapses.
    fn retire(&mut self, client: &mut FabricClient, ptr: u64) -> Result<()> {
        let len = client.read_u64(FarAddr(ptr))?;
        let mut r = self.reclaim.lock().unwrap();
        // lint: retire-ok: the record was unlinked from the tree by this (single-writer) worker; concurrent readers hold epoch guards until grace elapses.
        r.retire(client, FarAddr(ptr), RECORD_HEADER + len)?;
        Ok(())
    }

    /// Seals the current epoch and runs one reclaim pass, returning the
    /// bytes handed back to the allocator.
    pub fn reclaim_pass(&mut self, client: &mut FabricClient) -> Result<u64> {
        let mut r = self.reclaim.lock().unwrap();
        r.seal(client)?;
        let freed = r.reclaim(client)?;
        Ok(freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmem_fabric::FabricConfig;
    use farmem_reclaim::ReclaimRegistry;

    fn setup() -> (Arc<farmem_fabric::Fabric>, Arc<FarAlloc>) {
        let f = FabricConfig::count_only(256 << 20).build();
        let a = FarAlloc::new(f.clone());
        (f, a)
    }

    fn store(
        _f: &Arc<farmem_fabric::Fabric>,
        a: &Arc<FarAlloc>,
        c: &mut FabricClient,
    ) -> RecordStore {
        let reg = ReclaimRegistry::create(c, a, 8).unwrap();
        let shared = reg.attach(c, a).unwrap();
        let cfg = HtTreeConfig { initial_buckets: 1024, ..HtTreeConfig::default() };
        let tree = HtTree::create(c, a, cfg).unwrap();
        RecordStore::attach(c, a, tree, cfg, shared).unwrap()
    }

    #[test]
    fn charged_bytes_round_to_classes() {
        assert_eq!(charged_bytes(0), 16);
        assert_eq!(charged_bytes(1), 32);
        assert_eq!(charged_bytes(48), 64);
        assert_eq!(charged_bytes(2032), 2048);
        assert_eq!(charged_bytes(2033), 4096); // past the slab boundary: pages
    }

    #[test]
    fn values_round_trip_and_expire() {
        let (f, a) = setup();
        let mut c = f.client();
        let mut s = store(&f, &a, &mut c);
        s.put(&mut c, 1, b"forever", 0).unwrap();
        s.put(&mut c, 2, b"short-lived", 1_000).unwrap();
        assert_eq!(s.get(&mut c, 1, 999).unwrap(), GetOutcome::Hit(b"forever".to_vec()));
        assert_eq!(
            s.get(&mut c, 2, 999).unwrap(),
            GetOutcome::Hit(b"short-lived".to_vec())
        );
        // At exactly the TTL instant the record is gone.
        assert_eq!(s.get(&mut c, 2, 1_000).unwrap(), GetOutcome::Expired);
        assert_eq!(s.get(&mut c, 1, u64::MAX - 1).unwrap(), GetOutcome::Hit(b"forever".to_vec()));
        assert_eq!(s.get(&mut c, 3, 0).unwrap(), GetOutcome::Miss);
    }

    #[test]
    fn large_values_cross_the_prefetch() {
        let (f, a) = setup();
        let mut c = f.client();
        let mut s = store(&f, &a, &mut c);
        let v: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        s.put(&mut c, 9, &v, 0).unwrap();
        assert_eq!(s.get(&mut c, 9, 1).unwrap(), GetOutcome::Hit(v));
    }

    #[test]
    fn overwrites_and_removes_retire_records() {
        let (f, a) = setup();
        let mut c = f.client();
        let mut s = store(&f, &a, &mut c);
        s.put(&mut c, 5, &[1u8; 100], 0).unwrap();
        let live0 = a.stats().live_bytes;
        assert!(s.put(&mut c, 5, &[2u8; 100], 0).unwrap(), "replacement detected");
        assert!(s.remove(&mut c, 5).unwrap());
        assert!(!s.remove(&mut c, 5).unwrap(), "second remove is a no-op");
        // A seal + reclaim pass returns both records to the allocator.
        let freed = s.reclaim_pass(&mut c).unwrap();
        assert!(freed >= 2 * (RECORD_HEADER + 100), "freed {freed}");
        assert!(a.stats().live_bytes < live0);
    }
}
