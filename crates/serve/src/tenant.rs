//! Tenant namespaces, quotas, and accounting.
//!
//! The tenant table is the only cross-worker shared compute-side state:
//! a mutex-protected registry the admission path touches briefly (pure
//! local bookkeeping — no far access is ever issued under the lock).
//! Everything else (LRU metadata, hot-key sketches) is worker-local.

/// Highest raw key a tenant may store: keys are namespaced by packing
/// the tenant id into the top 16 bits of the shared `HtTree` keyspace,
/// leaving 48 bits of per-tenant key space.
pub const MAX_RAW_KEY: u64 = (1 << 48) - 1;

/// Maximum registered tenants. Small and static so per-tenant trace
/// spans can use static names (`AccessStats` attribution requires
/// `&'static str` span labels).
pub const MAX_TENANTS: usize = 8;

/// Static span names, one per tenant slot: every far access a worker
/// issues on behalf of tenant `t` runs under span `TENANT_SPANS[t]`, so
/// a traced run attributes the fabric counters back to tenants exactly
/// (`TraceReport::reconcile`).
pub(crate) const TENANT_SPANS: [&str; MAX_TENANTS] = [
    "serve.tenant0",
    "serve.tenant1",
    "serve.tenant2",
    "serve.tenant3",
    "serve.tenant4",
    "serve.tenant5",
    "serve.tenant6",
    "serve.tenant7",
];

/// A registered tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The namespaced key this tenant's `raw` key maps to in the shared
    /// tree: tenant id in the top 16 bits.
    pub fn namespaced(self, raw: u64) -> u64 {
        debug_assert!(raw <= MAX_RAW_KEY);
        (u64::from(self.0) << 48) | raw
    }

    /// The span name all of this tenant's far accesses run under.
    pub fn span_name(self) -> &'static str {
        TENANT_SPANS[self.0 as usize]
    }
}

/// Admission-time configuration of one tenant.
#[derive(Clone, Copy, Debug)]
pub struct TenantSpec {
    /// Human-readable label (reports only).
    pub name: &'static str,
    /// Maximum live far-memory bytes, charged at slab-class-rounded
    /// record size ([`crate::charged_bytes`]). A put that would exceed
    /// it is rejected at admission.
    pub byte_quota: u64,
    /// Maximum admitted operations per quota window. `u64::MAX`
    /// disables the op quota.
    pub op_quota: u64,
    /// Default record TTL in virtual ns (`0` = no expiry) applied when
    /// a put does not carry its own.
    pub default_ttl_ns: u64,
}

impl TenantSpec {
    /// An unlimited tenant (no quotas, no TTL).
    pub fn unlimited(name: &'static str) -> TenantSpec {
        TenantSpec { name, byte_quota: u64::MAX, op_quota: u64::MAX, default_ttl_ns: 0 }
    }
}

/// Why a request was turned away at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The tenant's live-byte quota would be exceeded.
    ByteQuota,
    /// The tenant's per-window operation quota is exhausted.
    OpQuota,
    /// The raw key is above [`MAX_RAW_KEY`].
    KeyTooLarge,
    /// The value is larger than the serving layer accepts.
    ValueTooLarge,
}

impl Reject {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Reject::ByteQuota => "byte-quota",
            Reject::OpQuota => "op-quota",
            Reject::KeyTooLarge => "key-too-large",
            Reject::ValueTooLarge => "value-too-large",
        }
    }
}

/// Per-tenant accounting, visible through
/// [`CacheServer::tenant_stats`](crate::CacheServer::tenant_stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Operations admitted (passed both quotas).
    pub admitted_ops: u64,
    /// Operations rejected by the op quota.
    pub rejected_ops: u64,
    /// Puts rejected by the byte quota.
    pub rejected_bytes: u64,
    /// Gets that returned a live value.
    pub hits: u64,
    /// Gets that found nothing.
    pub misses: u64,
    /// Gets that found a record past its TTL (served as misses).
    pub expired: u64,
    /// Values stored (every successful put, including overwrites).
    pub stored: u64,
    /// Puts that replaced an existing record (so
    /// `stored - overwritten - deleted - expired - evicted == live_records`).
    pub overwritten: u64,
    /// Values deleted by the tenant.
    pub deleted: u64,
    /// Values evicted by the LRU watermark.
    pub evicted: u64,
    /// Live far-memory bytes, charged at slab-class rounding. Always
    /// `≤ byte_quota`.
    pub live_bytes: u64,
    /// Live record count.
    pub live_records: u64,
}

/// One tenant's registry slot.
struct TenantState {
    spec: TenantSpec,
    stats: TenantStats,
    /// Quota window the op counter belongs to.
    window: u64,
    /// Admission-attempted ops in the current window.
    window_ops: u64,
}

/// The shared tenant registry (behind `Arc<Mutex<…>>` in the server).
pub(crate) struct TenantTable {
    tenants: Vec<TenantState>,
    window_ns: u64,
}

impl TenantTable {
    pub(crate) fn new(window_ns: u64) -> TenantTable {
        TenantTable { tenants: Vec::new(), window_ns: window_ns.max(1) }
    }

    pub(crate) fn add(&mut self, spec: TenantSpec) -> Option<TenantId> {
        if self.tenants.len() >= MAX_TENANTS {
            return None;
        }
        let id = TenantId(self.tenants.len() as u16);
        self.tenants.push(TenantState {
            spec,
            stats: TenantStats::default(),
            window: 0,
            window_ops: 0,
        });
        Some(id)
    }

    pub(crate) fn contains(&self, t: TenantId) -> bool {
        (t.0 as usize) < self.tenants.len()
    }

    pub(crate) fn spec(&self, t: TenantId) -> TenantSpec {
        self.tenants[t.0 as usize].spec
    }

    /// Charges one operation against the tenant's window quota.
    /// Deterministic: depends only on the virtual clock and the
    /// admission sequence, never on wall time.
    pub(crate) fn admit_op(&mut self, t: TenantId, now_ns: u64) -> bool {
        let window_ns = self.window_ns;
        let s = &mut self.tenants[t.0 as usize];
        let w = now_ns / window_ns;
        if w != s.window {
            s.window = w;
            s.window_ops = 0;
        }
        if s.window_ops >= s.spec.op_quota {
            s.stats.rejected_ops += 1;
            return false;
        }
        s.window_ops += 1;
        s.stats.admitted_ops += 1;
        true
    }

    /// Charges a put's rounded bytes against the byte quota, net of the
    /// `old_charged` bytes the put replaces. Rejects without mutating.
    pub(crate) fn admit_bytes(&mut self, t: TenantId, charged: u64, old_charged: u64) -> bool {
        let s = &mut self.tenants[t.0 as usize];
        let after = s.stats.live_bytes - old_charged + charged;
        if after > s.spec.byte_quota {
            s.stats.rejected_bytes += 1;
            return false;
        }
        true
    }

    /// Commits a stored record's accounting (after the far write).
    pub(crate) fn stored(&mut self, t: TenantId, charged: u64, old_charged: Option<u64>) {
        let s = &mut self.tenants[t.0 as usize];
        if let Some(old) = old_charged {
            s.stats.live_bytes -= old;
            s.stats.live_records -= 1;
            s.stats.overwritten += 1;
        }
        s.stats.live_bytes += charged;
        s.stats.live_records += 1;
        s.stats.stored += 1;
    }

    /// Credits a removed record back to the tenant.
    pub(crate) fn removed(&mut self, t: TenantId, charged: u64, kind: RemoveKind) {
        let s = &mut self.tenants[t.0 as usize];
        s.stats.live_bytes -= charged;
        s.stats.live_records -= 1;
        match kind {
            RemoveKind::Deleted => s.stats.deleted += 1,
            RemoveKind::Expired => s.stats.expired += 1,
            RemoveKind::Evicted => s.stats.evicted += 1,
        }
    }

    pub(crate) fn hit(&mut self, t: TenantId) {
        self.tenants[t.0 as usize].stats.hits += 1;
    }

    pub(crate) fn miss(&mut self, t: TenantId) {
        self.tenants[t.0 as usize].stats.misses += 1;
    }

    /// A non-owner worker observed an expired record (it cannot unlink
    /// it; the owner will). Count the expired miss without accounting.
    pub(crate) fn expired_observed(&mut self, t: TenantId) {
        self.tenants[t.0 as usize].stats.expired += 1;
    }

    pub(crate) fn stats(&self) -> Vec<(TenantSpec, TenantStats)> {
        self.tenants.iter().map(|s| (s.spec, s.stats)).collect()
    }
}

/// How a record left the map (accounting bucket).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RemoveKind {
    Deleted,
    Expired,
    Evicted,
}
