//! The serving front end: shared server state, per-worker shards, and
//! the runtime-driven session multiplexer.
//!
//! Threading follows the Dragonfly shared-nothing design (SNIPPETS.md
//! Snippet 3): compute-side metadata (LRU order, hot-key sketch, slab
//! accounting) is sharded by key hash over workers, so no per-key lock
//! exists anywhere — a key's owning worker is the only mutator it ever
//! has. Far-memory state (the record tree, the reclaim registry) is
//! shared by construction; cross-worker *reads* are safe under epoch
//! guards. The listener role is [`CacheServer::run_sessions`]: it lays
//! logical sessions onto [`Runtime`] workers (session `s` lands on
//! worker `s % workers`, the runtime's own sharding), so a request
//! generator that routes by [`CacheServer::owner_of`] gets
//! single-writer-per-key for free.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use farmem_alloc::FarAlloc;
use farmem_core::{HtTree, HtTreeConfig};
use farmem_fabric::{Fabric, FabricClient};
use farmem_reclaim::ReclaimRegistry;
use farmem_runtime::{AsyncClient, Runtime, TaskResult};

use crate::hotkey::HotKeyDetector;
use crate::store::{charged_bytes, GetOutcome, RecordStore};
use crate::tenant::{Reject, RemoveKind, TenantId, TenantSpec, TenantStats, TenantTable};
use crate::{Result, ServeError, MAX_RAW_KEY};

/// Serving-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Configuration of the shared record tree.
    pub ht: HtTreeConfig,
    /// Epoch slots in the reclaim registry: one per worker plus one per
    /// concurrent session (each attaches its own guard slot).
    pub reclaim_slots: u64,
    /// Requested worker count for [`CacheServer::run_sessions`] (the
    /// effective count is capped by the session count).
    pub n_workers: usize,
    /// Per-worker live-byte watermark: a put that leaves the worker's
    /// charged bytes above it evicts LRU records until back under.
    /// `u64::MAX` disables eviction.
    pub worker_byte_budget: u64,
    /// Largest accepted value payload.
    pub max_value_len: u64,
    /// Hot-key threshold in parts-per-million of a worker's observed
    /// traffic (e.g. `50_000` = keys drawing ≥ 5% of ops are hot).
    pub hot_ppm: u32,
    /// Observations before hotness can trigger (warmup).
    pub hot_min_ops: u64,
    /// Count-min sketch width per row.
    pub hot_sketch_width: usize,
    /// Top-k list size.
    pub hot_topk: usize,
    /// Sketch aging period in observations.
    pub hot_decay_every: u64,
    /// Spread reads of detected hot keys over the replica group (only
    /// effective on a replicated fabric).
    pub spread_hot_reads: bool,
    /// Tenant op-quota window length in virtual ns.
    pub quota_window_ns: u64,
    /// Run a seal + reclaim pass every this many mutations per worker
    /// (amortizes the epoch FAA over many retires).
    pub reclaim_every: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            ht: HtTreeConfig::default(),
            reclaim_slots: 64,
            n_workers: 1,
            worker_byte_budget: u64::MAX,
            max_value_len: 64 << 10,
            hot_ppm: 50_000,
            hot_min_ops: 256,
            hot_sketch_width: 1024,
            hot_topk: 16,
            hot_decay_every: 1 << 16,
            spread_hot_reads: true,
            quota_window_ns: 1_000_000, // 1 ms of virtual time
            reclaim_every: 64,
        }
    }
}

/// A client request, as the listener would decode it off the wire.
#[derive(Clone, Debug)]
pub enum Request {
    /// Read `key`.
    Get {
        /// Issuing tenant.
        tenant: TenantId,
        /// Raw (un-namespaced) key.
        key: u64,
    },
    /// Store `value` under `key`.
    Put {
        /// Issuing tenant.
        tenant: TenantId,
        /// Raw key.
        key: u64,
        /// Value payload.
        value: Vec<u8>,
        /// TTL override (`None` = the tenant's default).
        ttl_ns: Option<u64>,
    },
    /// Remove `key`.
    Delete {
        /// Issuing tenant.
        tenant: TenantId,
        /// Raw key.
        key: u64,
    },
}

impl Request {
    /// The namespaced tree key this request addresses.
    pub fn nskey(&self) -> u64 {
        match *self {
            Request::Get { tenant, key }
            | Request::Put { tenant, key, .. }
            | Request::Delete { tenant, key } => tenant.namespaced(key & MAX_RAW_KEY),
        }
    }
}

/// A request's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Get hit.
    Value(Vec<u8>),
    /// Get miss (including TTL-expired records, which are never served).
    Miss,
    /// Put accepted and durable.
    Stored,
    /// Delete processed; `true` when a record existed.
    Deleted(bool),
    /// Turned away at admission — no far access was issued.
    Rejected(Reject),
}

/// Per-worker counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker id.
    pub wid: usize,
    /// Requests processed (admitted or rejected).
    pub ops: u64,
    /// Gets that returned a value.
    pub hits: u64,
    /// Gets that found nothing live.
    pub misses: u64,
    /// Expired records this worker unlinked and retired.
    pub expired_unlinked: u64,
    /// Records evicted by the byte watermark.
    pub evicted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Gets of keys that were hot at access time.
    pub hot_gets: u64,
    /// Hot gets actually spread over the replica group.
    pub spread_gets: u64,
    /// Seal + reclaim passes run.
    pub reclaim_passes: u64,
    /// Bytes returned to the allocator by this worker's passes.
    pub freed_bytes: u64,
    /// Currently charged (slab-rounded) bytes across this worker's keys.
    pub charged_bytes: u64,
    /// High-water mark of `charged_bytes`.
    pub peak_charged_bytes: u64,
}

/// Client-side metadata for one owned key.
struct Meta {
    tick: u64,
    charged: u64,
    tenant: TenantId,
}

/// The shared serving state: one per cache deployment.
///
/// Cheap to share (`Arc`); all far-memory handles inside are attach-on-
/// demand. See the module docs for the threading model.
pub struct CacheServer {
    fabric: Arc<Fabric>,
    alloc: Arc<FarAlloc>,
    tree: HtTree,
    registry: ReclaimRegistry,
    tenants: Arc<Mutex<TenantTable>>,
    cfg: ServeConfig,
}

/// Deterministic owner shard of a namespaced key.
fn owner_shard(nskey: u64, n_workers: usize) -> usize {
    // SplitMix64 finalizer — decorrelates owner from tenant prefix bits.
    let mut z = nskey.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) % n_workers.max(1) as u64) as usize
}

impl CacheServer {
    /// Creates the far-memory side of a cache deployment: the shared
    /// record tree and the reclaim registry.
    pub fn create(
        client: &mut FabricClient,
        alloc: &Arc<FarAlloc>,
        cfg: ServeConfig,
    ) -> Result<CacheServer> {
        let tree = HtTree::create(client, alloc, cfg.ht)?;
        let registry = ReclaimRegistry::create(client, alloc, cfg.reclaim_slots)?;
        Ok(CacheServer {
            fabric: alloc.fabric().clone(),
            alloc: alloc.clone(),
            tree,
            registry,
            tenants: Arc::new(Mutex::new(TenantTable::new(cfg.quota_window_ns))),
            cfg,
        })
    }

    /// Registers a tenant; ids are assigned densely from 0.
    pub fn add_tenant(&self, spec: TenantSpec) -> Result<TenantId> {
        self.tenants.lock().unwrap().add(spec).ok_or(ServeError::TooManyTenants)
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The fabric the cache serves from.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The allocator records live in (its
    /// [`class_stats`](FarAlloc::class_stats) audit slab occupancy).
    pub fn alloc(&self) -> &Arc<FarAlloc> {
        &self.alloc
    }

    /// The worker count [`run_sessions`](Self::run_sessions) will use
    /// for `n_sessions` sessions (the runtime caps workers at the task
    /// count). Request generators route with this.
    pub fn effective_workers(&self, n_sessions: usize) -> usize {
        self.cfg.n_workers.max(1).min(n_sessions.max(1))
    }

    /// The worker that owns `nskey` among `n_workers` shards.
    pub fn owner_of(&self, nskey: u64, n_workers: usize) -> usize {
        owner_shard(nskey, n_workers)
    }

    /// Attaches a worker shard: its own tree handle, reclaim slot,
    /// hot-key sketch, and LRU metadata. `wid` must be below the worker
    /// count the deployment shards by.
    pub fn worker(&self, wid: usize, n_workers: usize, client: &mut FabricClient) -> Result<ServeWorker> {
        let shared = self.registry.attach(client, &self.alloc)?;
        let store = RecordStore::attach(client, &self.alloc, self.tree, self.cfg.ht, shared)?;
        Ok(ServeWorker {
            wid,
            n_workers: n_workers.max(1),
            store,
            tenants: self.tenants.clone(),
            hot: HotKeyDetector::new(
                self.cfg.hot_sketch_width,
                self.cfg.hot_topk,
                self.cfg.hot_decay_every,
            ),
            meta: HashMap::new(),
            lru: BTreeSet::new(),
            tick: 0,
            replicated: self.fabric.replicated(),
            cfg: self.cfg,
            mutations_since_reclaim: 0,
            stats: WorkerStats { wid, ..WorkerStats::default() },
        })
    }

    /// Per-tenant accounting snapshot.
    pub fn tenant_stats(&self) -> Vec<(TenantSpec, TenantStats)> {
        self.tenants.lock().unwrap().stats()
    }

    /// The listener: runs `n_sessions` logical sessions over a
    /// [`Runtime`] of `cfg.n_workers` OS threads. Session `s` executes
    /// on worker `s % workers` and shares that worker's shard (LRU,
    /// sketch, accounting) with its thread-mates; its far accesses run
    /// on its own client, and batched gets overlap through the async
    /// doorbell. The generator is called once per session and must
    /// route mutations to sessions of the owning worker
    /// ([`owner_of`](Self::owner_of) with
    /// [`effective_workers`](Self::effective_workers)); gets may go
    /// anywhere.
    pub fn run_sessions<G>(
        self: &Arc<CacheServer>,
        n_sessions: usize,
        gen: G,
    ) -> Vec<TaskResult<SessionSummary>>
    where
        G: Fn(usize) -> Vec<Request> + Send + Sync + 'static,
    {
        let runtime = Runtime::new(self.cfg.n_workers);
        let workers = self.effective_workers(n_sessions);
        let server = self.clone();
        runtime.run(&self.fabric.clone(), n_sessions, move |index, ac| {
            let server = server.clone();
            let reqs = gen(index);
            Box::pin(session_body(server, index, workers, ac, reqs))
        })
    }
}

/// One shard of the serving layer: owned by exactly one worker thread.
pub struct ServeWorker {
    wid: usize,
    n_workers: usize,
    store: RecordStore,
    tenants: Arc<Mutex<TenantTable>>,
    hot: HotKeyDetector,
    /// Owned-key metadata (exact, client-side — the worker sees every
    /// access to its shard, so no far traffic is spent on recency).
    meta: HashMap<u64, Meta>,
    /// Recency order: `(tick, nskey)`, oldest first.
    lru: BTreeSet<(u64, u64)>,
    tick: u64,
    replicated: bool,
    cfg: ServeConfig,
    mutations_since_reclaim: u64,
    stats: WorkerStats,
}

impl ServeWorker {
    /// This worker's shard id.
    pub fn wid(&self) -> usize {
        self.wid
    }

    /// Whether this worker owns (may mutate) `nskey`.
    pub fn owns(&self, nskey: u64) -> bool {
        owner_shard(nskey, self.n_workers) == self.wid
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkerStats {
        self.stats
    }

    /// The hot-key detector (for reports).
    pub fn hot_keys(&self) -> Vec<(u64, u64)> {
        self.hot.topk()
    }

    /// The record store's tree-handle stats.
    pub fn tree_stats(&self) -> farmem_core::HtTreeStats {
        self.store.tree_stats()
    }

    /// Executes one request on this worker.
    pub fn execute(&mut self, client: &mut FabricClient, req: &Request) -> Result<Response> {
        match req {
            Request::Get { tenant, key } => self.get(client, *tenant, *key),
            Request::Put { tenant, key, value, ttl_ns } => {
                self.put(client, *tenant, *key, value, *ttl_ns)
            }
            Request::Delete { tenant, key } => self.delete(client, *tenant, *key),
        }
    }

    /// Serves a get: admission, hot-key accounting, TTL enforcement.
    pub fn get(&mut self, client: &mut FabricClient, tenant: TenantId, key: u64) -> Result<Response> {
        self.stats.ops += 1;
        let Some(nskey) = self.admit(client, tenant, key, 0, None)? else {
            return Ok(Response::Rejected(self.last_reject(tenant, key)));
        };
        let _span = client.span(tenant.span_name());
        let spread = self.classify_hot(nskey);
        if spread {
            client.set_spread_reads(Some(true));
            self.stats.spread_gets += 1;
        }
        let now = client.now_ns();
        let out = self.store.get(client, nskey, now);
        if spread {
            client.set_spread_reads(None);
        }
        match out? {
            GetOutcome::Hit(v) => {
                self.touch(nskey);
                self.tenants.lock().unwrap().hit(tenant);
                self.stats.hits += 1;
                Ok(Response::Value(v))
            }
            GetOutcome::Expired => {
                self.expire(client, nskey, tenant)?;
                self.tenants.lock().unwrap().miss(tenant);
                self.stats.misses += 1;
                Ok(Response::Miss)
            }
            GetOutcome::Miss => {
                self.tenants.lock().unwrap().miss(tenant);
                self.stats.misses += 1;
                Ok(Response::Miss)
            }
        }
    }

    /// Serves a put: byte + op quotas at admission, slab-class storage,
    /// TTL stamping, watermark eviction.
    pub fn put(
        &mut self,
        client: &mut FabricClient,
        tenant: TenantId,
        key: u64,
        value: &[u8],
        ttl_ns: Option<u64>,
    ) -> Result<Response> {
        self.stats.ops += 1;
        let charged = charged_bytes(value.len() as u64);
        let Some(nskey) =
            self.admit(client, tenant, key, value.len() as u64, Some(charged))?
        else {
            return Ok(Response::Rejected(self.last_reject_put(tenant, key, value.len() as u64, charged)));
        };
        if !self.owns(nskey) {
            return Err(ServeError::NotOwner);
        }
        let _span = client.span(tenant.span_name());
        let now = client.now_ns();
        let ttl = ttl_ns.unwrap_or_else(|| self.tenants.lock().unwrap().spec(tenant).default_ttl_ns);
        let expiry = if ttl == 0 { 0 } else { now + ttl };
        self.store.put(client, nskey, value, expiry)?;
        let old_charged = self.index_put(nskey, tenant, charged);
        self.tenants.lock().unwrap().stored(tenant, charged, old_charged);
        while self.stats.charged_bytes > self.cfg.worker_byte_budget {
            if !self.evict_one(client)? {
                break;
            }
        }
        self.maybe_reclaim(client)?;
        Ok(Response::Stored)
    }

    /// Serves a delete.
    pub fn delete(&mut self, client: &mut FabricClient, tenant: TenantId, key: u64) -> Result<Response> {
        self.stats.ops += 1;
        let Some(nskey) = self.admit(client, tenant, key, 0, None)? else {
            return Ok(Response::Rejected(self.last_reject(tenant, key)));
        };
        if !self.owns(nskey) {
            return Err(ServeError::NotOwner);
        }
        let _span = client.span(tenant.span_name());
        let existed = self.store.remove(client, nskey)?;
        if let Some(m) = self.meta.remove(&nskey) {
            self.lru.remove(&(m.tick, nskey));
            self.stats.charged_bytes -= m.charged;
            self.tenants.lock().unwrap().removed(m.tenant, m.charged, RemoveKind::Deleted);
        }
        self.maybe_reclaim(client)?;
        Ok(Response::Deleted(existed))
    }

    /// Current charged (slab-rounded) bytes across this worker's keys.
    pub fn footprint(&self) -> u64 {
        self.stats.charged_bytes
    }

    /// Seals the epoch and runs one reclaim pass now.
    pub fn reclaim_pass(&mut self, client: &mut FabricClient) -> Result<u64> {
        let freed = self.store.reclaim_pass(client)?;
        self.stats.reclaim_passes += 1;
        self.stats.freed_bytes += freed;
        Ok(freed)
    }

    // ----- internals -----

    /// Admission: tenant validity, key range, value size, op quota,
    /// byte quota. Pure compute — no far access is issued before all
    /// checks pass. Returns the namespaced key, or `None` on rejection
    /// (the caller re-derives the reason for the response; counters are
    /// charged here).
    fn admit(
        &mut self,
        client: &mut FabricClient,
        tenant: TenantId,
        key: u64,
        value_len: u64,
        put_charged: Option<u64>,
    ) -> Result<Option<u64>> {
        let mut tt = self.tenants.lock().unwrap();
        if !tt.contains(tenant) {
            return Err(ServeError::UnknownTenant);
        }
        if key > MAX_RAW_KEY || value_len > self.cfg.max_value_len {
            self.stats.rejected += 1;
            return Ok(None);
        }
        if !tt.admit_op(tenant, client.now_ns()) {
            self.stats.rejected += 1;
            return Ok(None);
        }
        if let Some(charged) = put_charged {
            let nskey = tenant.namespaced(key);
            let old = self.meta.get(&nskey).map_or(0, |m| m.charged);
            if !tt.admit_bytes(tenant, charged, old) {
                self.stats.rejected += 1;
                return Ok(None);
            }
        }
        Ok(Some(tenant.namespaced(key)))
    }

    /// Re-derives the rejection reason for a non-put request (the
    /// admission path already counted it).
    fn last_reject(&self, _tenant: TenantId, key: u64) -> Reject {
        if key > MAX_RAW_KEY {
            Reject::KeyTooLarge
        } else {
            Reject::OpQuota
        }
    }

    /// Re-derives the rejection reason for a put.
    fn last_reject_put(&self, tenant: TenantId, key: u64, value_len: u64, charged: u64) -> Reject {
        if key > MAX_RAW_KEY {
            return Reject::KeyTooLarge;
        }
        if value_len > self.cfg.max_value_len {
            return Reject::ValueTooLarge;
        }
        let nskey = tenant.namespaced(key);
        let old = self.meta.get(&nskey).map_or(0, |m| m.charged);
        let tt = self.tenants.lock().unwrap();
        let st = tt.stats();
        let (spec, stats) = st[tenant.0 as usize];
        if stats.live_bytes - old + charged > spec.byte_quota {
            Reject::ByteQuota
        } else {
            Reject::OpQuota
        }
    }

    /// Records the access in the sketch; returns whether the read
    /// should spread over the replica group.
    fn classify_hot(&mut self, nskey: u64) -> bool {
        self.hot.observe(nskey);
        if !self.cfg.spread_hot_reads
            || !self.hot.is_hot(nskey, self.cfg.hot_ppm, self.cfg.hot_min_ops)
        {
            return false;
        }
        self.stats.hot_gets += 1;
        self.replicated
    }

    /// Moves `nskey` to the LRU tail.
    fn touch(&mut self, nskey: u64) {
        if let Some(m) = self.meta.get_mut(&nskey) {
            self.lru.remove(&(m.tick, nskey));
            self.tick += 1;
            m.tick = self.tick;
            self.lru.insert((self.tick, nskey));
        }
    }

    /// Indexes a stored record; returns the charged bytes of the record
    /// it replaced (for tenant accounting).
    fn index_put(&mut self, nskey: u64, tenant: TenantId, charged: u64) -> Option<u64> {
        self.tick += 1;
        let old = self.meta.insert(nskey, Meta { tick: self.tick, charged, tenant });
        let old_charged = old.map(|m| {
            self.lru.remove(&(m.tick, nskey));
            self.stats.charged_bytes -= m.charged;
            m.charged
        });
        self.lru.insert((self.tick, nskey));
        self.stats.charged_bytes += charged;
        self.stats.peak_charged_bytes = self.stats.peak_charged_bytes.max(self.stats.charged_bytes);
        old_charged
    }

    /// Unlinks and retires an expired record (owner only; a non-owner
    /// observation is counted but left for the owner to collect).
    fn expire(&mut self, client: &mut FabricClient, nskey: u64, tenant: TenantId) -> Result<()> {
        if self.owns(nskey) && self.meta.contains_key(&nskey) {
            let m = self.meta.remove(&nskey).expect("checked above");
            self.lru.remove(&(m.tick, nskey));
            self.stats.charged_bytes -= m.charged;
            self.store.remove(client, nskey)?;
            self.tenants.lock().unwrap().removed(m.tenant, m.charged, RemoveKind::Expired);
            self.stats.expired_unlinked += 1;
            self.maybe_reclaim(client)?;
        } else {
            self.tenants.lock().unwrap().expired_observed(tenant);
        }
        Ok(())
    }

    /// Evicts the least-recently-used record.
    fn evict_one(&mut self, client: &mut FabricClient) -> Result<bool> {
        let Some(&(tick, nskey)) = self.lru.iter().next() else {
            return Ok(false);
        };
        self.lru.remove(&(tick, nskey));
        let m = self.meta.remove(&nskey).expect("lru entries are indexed");
        self.store.remove(client, nskey)?;
        self.stats.charged_bytes -= m.charged;
        self.tenants.lock().unwrap().removed(m.tenant, m.charged, RemoveKind::Evicted);
        self.stats.evicted += 1;
        Ok(true)
    }

    fn maybe_reclaim(&mut self, client: &mut FabricClient) -> Result<()> {
        self.mutations_since_reclaim += 1;
        if self.mutations_since_reclaim >= self.cfg.reclaim_every {
            self.mutations_since_reclaim = 0;
            self.reclaim_pass(client)?;
        }
        Ok(())
    }
}

/// What one logical session did (see
/// [`CacheServer::run_sessions`]); `worker` is the owning shard's
/// cumulative counters at session end.
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// Worker shard the session ran on.
    pub wid: usize,
    /// Requests this session issued.
    pub ops: u64,
    /// Get hits.
    pub hits: u64,
    /// Get misses.
    pub misses: u64,
    /// Admission rejections.
    pub rejected: u64,
    /// Shard counters at session end (cumulative across thread-mates;
    /// per worker, take the snapshot with the most ops).
    pub worker: WorkerStats,
}

thread_local! {
    /// The shard shared by all sessions of one runtime worker thread.
    /// Runtime worker threads are scoped per `run_sessions` call, so
    /// the slot starts empty on every run.
    static TL_WORKER: RefCell<Option<Rc<RefCell<ServeWorker>>>> = const { RefCell::new(None) };
}

/// Consecutive gets batched through one async doorbell.
const GET_BATCH: usize = 8;

/// One logical session: admission and metadata go through the shared
/// worker shard (brief synchronous borrows — never held across a
/// suspension point); far accesses run on the session's own client,
/// with runs of gets overlapped through the async batch path.
async fn session_body(
    server: Arc<CacheServer>,
    index: usize,
    workers: usize,
    ac: AsyncClient,
    reqs: Vec<Request>,
) -> SessionSummary {
    let wid = index % workers;
    let worker: Rc<RefCell<ServeWorker>> = TL_WORKER.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            // lint: block-ok — one-time shard attach (control plane).
            let w = ac.with(|c| server.worker(wid, workers, c)).expect("worker attach");
            *slot = Some(Rc::new(RefCell::new(w)));
        }
        slot.as_ref().expect("just filled").clone()
    });
    // Per-session store handle: own reclaim slot (guard pins must not be
    // shared between interleaved sessions), own tree directory cache.
    // lint: block-ok — one-time session attach (control plane).
    let mut store = ac
        .with(|c| -> Result<RecordStore> {
            let shared = server.registry.attach(c, &server.alloc)?;
            RecordStore::attach(c, &server.alloc, server.tree, server.cfg.ht, shared)
        })
        .expect("session attach");
    let mut sum = SessionSummary {
        wid,
        ops: 0,
        hits: 0,
        misses: 0,
        rejected: 0,
        worker: WorkerStats::default(),
    };
    let mut i = 0usize;
    while i < reqs.len() {
        match &reqs[i] {
            Request::Get { .. } => {
                // Gather a run of gets and serve them as one overlapped
                // batch.
                let mut batch: Vec<(TenantId, u64)> = Vec::with_capacity(GET_BATCH);
                while i < reqs.len() && batch.len() < GET_BATCH {
                    if let Request::Get { tenant, key } = reqs[i] {
                        batch.push((tenant, key));
                        i += 1;
                    } else {
                        break;
                    }
                }
                sum.ops += batch.len() as u64;
                serve_get_batch(&worker, &mut store, &ac, &batch, &mut sum).await;
            }
            req => {
                sum.ops += 1;
                // lint: block-ok — mutations are worker-serialized sync
                // sections (single-writer-per-key).
                let resp = ac.with(|c| worker.borrow_mut().execute(c, req));
                match resp {
                    Ok(Response::Rejected(_)) => sum.rejected += 1,
                    Ok(_) => {}
                    Err(e) => panic!("session {index}: {e}"),
                }
                i += 1;
            }
        }
    }
    // Collect this worker's retires before the thread winds down.
    // lint: block-ok — final seal + reclaim pass (control plane).
    let _ = ac.with(|c| worker.borrow_mut().reclaim_pass(c));
    sum.worker = worker.borrow().stats();
    sum
}

/// Serves one admitted batch of gets: hot keys spread over the replica
/// group, cold keys keep primary reads; both halves overlap through the
/// async store path.
async fn serve_get_batch(
    worker: &Rc<RefCell<ServeWorker>>,
    store: &mut RecordStore,
    ac: &AsyncClient,
    batch: &[(TenantId, u64)],
    sum: &mut SessionSummary,
) {
    // Admission + hot classification: one brief sync borrow.
    let now = ac.with(|c| c.now_ns());
    let mut cold: Vec<(TenantId, u64)> = Vec::new();
    let mut hot: Vec<(TenantId, u64)> = Vec::new();
    {
        let mut w = worker.borrow_mut();
        for &(tenant, key) in batch {
            w.stats.ops += 1;
            // lint: block-ok — admission is pure compute.
            let admitted = ac.with(|c| w.admit(c, tenant, key, 0, None)).expect("admit");
            let Some(nskey) = admitted else {
                sum.rejected += 1;
                continue;
            };
            if w.classify_hot(nskey) {
                w.stats.spread_gets += 1;
                hot.push((tenant, nskey));
            } else {
                cold.push((tenant, nskey));
            }
        }
    }
    for (keys, spread) in [(cold, false), (hot, true)] {
        if keys.is_empty() {
            continue;
        }
        if spread {
            ac.with(|c| c.set_spread_reads(Some(true)));
        }
        let nskeys: Vec<u64> = keys.iter().map(|&(_, k)| k).collect();
        let outcomes = store.get_many_async(ac, &nskeys, now).await.expect("get batch");
        if spread {
            ac.with(|c| c.set_spread_reads(None));
        }
        let mut w = worker.borrow_mut();
        for ((tenant, nskey), out) in keys.into_iter().zip(outcomes) {
            match out {
                GetOutcome::Hit(_) => {
                    w.touch(nskey);
                    w.tenants.lock().unwrap().hit(tenant);
                    w.stats.hits += 1;
                    sum.hits += 1;
                }
                GetOutcome::Expired => {
                    // lint: block-ok — expiry unlink is a worker-
                    // serialized sync mutation.
                    ac.with(|c| w.expire(c, nskey, tenant)).expect("expire");
                    w.tenants.lock().unwrap().miss(tenant);
                    w.stats.misses += 1;
                    sum.misses += 1;
                }
                GetOutcome::Miss => {
                    w.tenants.lock().unwrap().miss(tenant);
                    w.stats.misses += 1;
                    sum.misses += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RECORD_HEADER;
    use farmem_fabric::{FabricConfig, ReplicaConfig};

    fn deploy(
        fabric: Arc<Fabric>,
        cfg: ServeConfig,
    ) -> (Arc<Fabric>, Arc<FarAlloc>, Arc<CacheServer>) {
        let alloc = FarAlloc::new(fabric.clone());
        let mut c = fabric.client();
        let server = Arc::new(CacheServer::create(&mut c, &alloc, cfg).unwrap());
        (fabric, alloc, server)
    }

    #[test]
    fn tenants_with_colliding_raw_keys_stay_isolated() {
        let (f, _a, server) =
            deploy(FabricConfig::count_only(256 << 20).build(), ServeConfig::default());
        let ta = server.add_tenant(TenantSpec::unlimited("a")).unwrap();
        let tb = server.add_tenant(TenantSpec::unlimited("b")).unwrap();
        let mut c = f.client();
        let mut w = server.worker(0, 1, &mut c).unwrap();
        w.put(&mut c, ta, 7, b"alpha", None).unwrap();
        w.put(&mut c, tb, 7, b"bravo", None).unwrap();
        assert_eq!(w.get(&mut c, ta, 7).unwrap(), Response::Value(b"alpha".to_vec()));
        assert_eq!(w.get(&mut c, tb, 7).unwrap(), Response::Value(b"bravo".to_vec()));
        // Deleting a's key must not disturb b's record under the same raw key.
        assert_eq!(w.delete(&mut c, ta, 7).unwrap(), Response::Deleted(true));
        assert_eq!(w.get(&mut c, ta, 7).unwrap(), Response::Miss);
        assert_eq!(w.get(&mut c, tb, 7).unwrap(), Response::Value(b"bravo".to_vec()));
        let stats = server.tenant_stats();
        assert_eq!(stats[ta.0 as usize].1.live_records, 0);
        assert_eq!(stats[tb.0 as usize].1.live_records, 1);
    }

    #[test]
    fn op_quota_rejects_deterministically() {
        // Count-only fabric: the virtual clock stays at 0, so every op
        // lands in window 0 and the quota never resets.
        let (f, _a, server) =
            deploy(FabricConfig::count_only(256 << 20).build(), ServeConfig::default());
        let t = server
            .add_tenant(TenantSpec { op_quota: 5, ..TenantSpec::unlimited("capped") })
            .unwrap();
        let mut c = f.client();
        let mut w = server.worker(0, 1, &mut c).unwrap();
        let mut rejected = 0;
        for i in 0..10u64 {
            match w.put(&mut c, t, i, b"x", None).unwrap() {
                Response::Stored => {}
                Response::Rejected(Reject::OpQuota) => rejected += 1,
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(rejected, 5);
        let (_, st) = server.tenant_stats()[t.0 as usize];
        assert_eq!((st.admitted_ops, st.rejected_ops), (5, 5));
    }

    #[test]
    fn byte_quota_rejects_before_any_far_write() {
        let (f, a, server) =
            deploy(FabricConfig::count_only(256 << 20).build(), ServeConfig::default());
        // Two 128-byte-class records fit; a third must bounce.
        let t = server
            .add_tenant(TenantSpec { byte_quota: 256, ..TenantSpec::unlimited("tiny") })
            .unwrap();
        let mut c = f.client();
        let mut w = server.worker(0, 1, &mut c).unwrap();
        assert_eq!(w.put(&mut c, t, 0, &[7u8; 100], None).unwrap(), Response::Stored);
        assert_eq!(w.put(&mut c, t, 1, &[7u8; 100], None).unwrap(), Response::Stored);
        let live_before = a.stats().live_bytes;
        assert_eq!(
            w.put(&mut c, t, 2, &[7u8; 100], None).unwrap(),
            Response::Rejected(Reject::ByteQuota)
        );
        assert_eq!(a.stats().live_bytes, live_before, "rejected put must not allocate");
        // Overwriting an existing record stays within quota (net charge 0).
        assert_eq!(w.put(&mut c, t, 0, &[9u8; 100], None).unwrap(), Response::Stored);
        let (_, st) = server.tenant_stats()[t.0 as usize];
        assert_eq!(st.live_bytes, 256);
        assert_eq!(st.rejected_bytes, 1);
    }

    #[test]
    fn expired_records_are_never_served_and_come_back_as_bytes() {
        // Default cost model: the virtual clock advances with every far
        // access, so TTLs actually elapse.
        let (f, a, server) =
            deploy(FabricConfig::single_node(256 << 20).build(), ServeConfig::default());
        let t = server.add_tenant(TenantSpec::unlimited("ttl")).unwrap();
        let mut c = f.client();
        let mut w = server.worker(0, 1, &mut c).unwrap();
        w.put(&mut c, t, 1, &[1u8; 64], Some(10_000)).unwrap();
        w.put(&mut c, t, 2, &[2u8; 64], None).unwrap(); // no TTL
        // Burn virtual time well past the 10 µs TTL.
        while c.now_ns() < 50_000 {
            c.read_u64(farmem_fabric::FarAddr(4096)).unwrap();
        }
        assert_eq!(w.get(&mut c, t, 1).unwrap(), Response::Miss, "expired key served");
        assert_eq!(w.get(&mut c, t, 2).unwrap(), Response::Value(vec![2u8; 64]));
        let (_, st) = server.tenant_stats()[t.0 as usize];
        assert_eq!(st.expired, 1);
        assert_eq!(st.live_records, 1);
        // The sole attached handle seals and frees immediately: the
        // expired record's bytes return to the allocator.
        let freed_before = a.stats().freed_bytes;
        w.reclaim_pass(&mut c).unwrap();
        assert!(
            a.stats().freed_bytes >= freed_before + RECORD_HEADER + 64,
            "expired record bytes not reclaimed"
        );
    }

    #[test]
    fn eviction_keeps_worker_footprint_under_budget() {
        let cfg = ServeConfig {
            worker_byte_budget: 8 << 10,
            reclaim_every: 16,
            ..ServeConfig::default()
        };
        let (f, a, server) = deploy(FabricConfig::count_only(256 << 20).build(), cfg);
        let t = server.add_tenant(TenantSpec::unlimited("churn")).unwrap();
        let mut c = f.client();
        let mut w = server.worker(0, 1, &mut c).unwrap();
        for i in 0..200u64 {
            w.put(&mut c, t, i, &[i as u8; 240], None).unwrap();
            assert!(w.footprint() <= 8 << 10, "watermark breached at insert {i}");
        }
        let st = w.stats();
        assert!(st.evicted >= 150, "only {} evictions", st.evicted);
        w.reclaim_pass(&mut c).unwrap();
        // Record bytes (the 256-byte slab class here: 16 B header + 240 B
        // payload) plateau at the watermark — 32 records — not at the 200
        // inserted. Tree entry metadata is excluded: it lives in other
        // classes and compacts on bucket splits, not per-remove.
        let records = a
            .class_stats()
            .into_iter()
            .find(|cs| cs.class == 256)
            .expect("record class populated");
        assert!(
            records.live <= 34,
            "{} records live: eviction is not freeing the plateau",
            records.live
        );
        // And the evicted records' bytes really returned to the allocator.
        assert!(
            a.stats().freed_bytes >= st.evicted * 256,
            "freed {} < evicted {} × 256",
            a.stats().freed_bytes,
            st.evicted
        );
        // LRU order: the most recent keys survive.
        assert_eq!(w.get(&mut c, t, 199).unwrap(), Response::Value(vec![199u8; 240]));
        assert_eq!(w.get(&mut c, t, 0).unwrap(), Response::Miss);
    }

    #[test]
    fn hot_reads_spread_over_the_replica_group() {
        let fabric = FabricConfig {
            replication: ReplicaConfig::mirrored(3),
            ..FabricConfig::single_node(256 << 20)
        }
        .build();
        let cfg = ServeConfig { hot_min_ops: 64, hot_ppm: 100_000, ..ServeConfig::default() };
        let (f, _a, server) = deploy(fabric, cfg);
        let t = server.add_tenant(TenantSpec::unlimited("hot")).unwrap();
        let mut c = f.client();
        let mut w = server.worker(0, 1, &mut c).unwrap();
        w.put(&mut c, t, 42, &[7u8; 64], None).unwrap();
        for _ in 0..512 {
            assert_eq!(w.get(&mut c, t, 42).unwrap(), Response::Value(vec![7u8; 64]));
        }
        let st = w.stats();
        assert!(st.hot_gets > 300, "hot key not detected: {} hot gets", st.hot_gets);
        assert_eq!(st.spread_gets, st.hot_gets, "replicated fabric must spread hot gets");
        // All three mirrors served read traffic.
        let msgs: Vec<u64> = f.nodes().iter().map(|n| n.occupancy().messages).collect();
        assert!(
            msgs.iter().all(|&m| m > 50),
            "replica read spread uneven: {msgs:?}"
        );
    }

    #[test]
    fn mutations_routed_to_the_wrong_worker_are_refused() {
        let (f, _a, server) =
            deploy(FabricConfig::count_only(256 << 20).build(), ServeConfig::default());
        let t = server.add_tenant(TenantSpec::unlimited("routed")).unwrap();
        let mut c = f.client();
        let workers = 4;
        let mut w0 = server.worker(0, workers, &mut c).unwrap();
        // Find a key w0 does not own.
        let foreign = (0..100u64)
            .find(|&k| server.owner_of(t.namespaced(k), workers) != 0)
            .unwrap();
        assert_eq!(w0.put(&mut c, t, foreign, b"x", None), Err(ServeError::NotOwner));
        // Gets may be served by any worker.
        assert_eq!(w0.get(&mut c, t, foreign).unwrap(), Response::Miss);
    }

    #[test]
    fn run_sessions_multiplexes_and_is_deterministic() {
        let run = || {
            let (f, _a, server) =
                deploy(FabricConfig::single_node(256 << 20).build(), ServeConfig::default());
            let t = server.add_tenant(TenantSpec::unlimited("mux")).unwrap();
            // Preload through a sync worker so sessions read real data.
            let mut c = f.client();
            let mut w = server.worker(0, 1, &mut c).unwrap();
            for k in 0..64u64 {
                w.put(&mut c, t, k, &[k as u8; 32], None).unwrap();
            }
            drop(w);
            let results = server.run_sessions(8, move |s| {
                (0..32u64)
                    .map(|i| Request::Get { tenant: t, key: (s as u64 * 7 + i) % 64 })
                    .collect()
            });
            assert_eq!(results.len(), 8);
            let mut hits = 0;
            for r in &results {
                assert_eq!(r.output.ops, 32);
                hits += r.output.hits;
            }
            assert_eq!(hits, 8 * 32, "preloaded keys must all hit");
            results.iter().map(|r| (r.index, r.output.hits, r.clock_ns)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "session runs must be deterministic");
    }
}
