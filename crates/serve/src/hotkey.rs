//! Per-worker hot-key detection: a count-min sketch plus a small top-k.
//!
//! Memcached-style servers detect hot keys to shed or spread them; here
//! the consumer is replica-read spreading (reads of a detected hot key
//! round-robin over the replica group instead of hammering the primary).
//! The sketch is purely compute-side — no far traffic — and ages by
//! periodic halving so the notion of "hot" follows the workload.

/// Count-min sketch rows. Four rows keep the overestimate bias small at
/// a few KiB per worker.
const ROWS: usize = 4;

/// A deterministic count-min sketch with a top-k list.
pub struct HotKeyDetector {
    /// Row-major counters, `ROWS × width`.
    counts: Vec<u32>,
    /// Power-of-two row width.
    width: usize,
    /// Observations since construction or last halving epoch (ages with
    /// the counters, so hotness ratios stay consistent).
    total: u64,
    /// Halve all counters every this many observations (aging window).
    decay_every: u64,
    /// Observations since the last halving.
    since_decay: u64,
    /// Current top-k: `(estimate, key)`, ascending — entry 0 is the
    /// coldest of the hot.
    topk: Vec<(u64, u64)>,
    k: usize,
}

/// SplitMix64 — deterministic per-row hash mixing.
fn mix(key: u64, row: u64) -> u64 {
    let mut z = key ^ (row.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HotKeyDetector {
    /// A detector with `width` counters per row (rounded up to a power
    /// of two), tracking the `k` hottest keys, halving its counters
    /// every `decay_every` observations.
    pub fn new(width: usize, k: usize, decay_every: u64) -> HotKeyDetector {
        let width = width.max(16).next_power_of_two();
        HotKeyDetector {
            counts: vec![0; ROWS * width],
            width,
            total: 0,
            decay_every: decay_every.max(1),
            since_decay: 0,
            topk: Vec::with_capacity(k),
            k: k.max(1),
        }
    }

    /// Records one access and returns the key's updated estimate.
    pub fn observe(&mut self, key: u64) -> u64 {
        if self.since_decay >= self.decay_every {
            self.halve();
        }
        self.total += 1;
        self.since_decay += 1;
        let mut est = u32::MAX;
        for row in 0..ROWS {
            let slot = (mix(key, row as u64) as usize) & (self.width - 1);
            let c = &mut self.counts[row * self.width + slot];
            *c = c.saturating_add(1);
            est = est.min(*c);
        }
        let est = u64::from(est);
        self.bump_topk(key, est);
        est
    }

    /// The key's current estimate without recording an access.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut est = u32::MAX;
        for row in 0..ROWS {
            let slot = (mix(key, row as u64) as usize) & (self.width - 1);
            est = est.min(self.counts[row * self.width + slot]);
        }
        u64::from(est)
    }

    /// Observations recorded in the current aging window(s) — the
    /// denominator hotness is judged against.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether `key` is hot: its estimated share of traffic is at least
    /// `ppm` parts per million, with `min_total` observations of warmup
    /// before anything can qualify (protects against the first few ops
    /// all looking "hot").
    pub fn is_hot(&self, key: u64, ppm: u32, min_total: u64) -> bool {
        if self.total < min_total {
            return false;
        }
        // est / total >= ppm / 1e6, in integers.
        self.estimate(key) * 1_000_000 >= u64::from(ppm) * self.total
    }

    /// The current top-k keys, hottest first: `(key, estimate)`.
    pub fn topk(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.topk.iter().map(|&(e, k)| (k, e)).collect();
        v.reverse();
        v
    }

    fn bump_topk(&mut self, key: u64, est: u64) {
        if let Some(pos) = self.topk.iter().position(|&(_, k)| k == key) {
            self.topk[pos].0 = est;
            self.topk.sort_unstable();
            return;
        }
        if self.topk.len() < self.k {
            self.topk.push((est, key));
            self.topk.sort_unstable();
        } else if est > self.topk[0].0 {
            self.topk[0] = (est, key);
            self.topk.sort_unstable();
        }
    }

    /// Ages the sketch: halves every counter, the total, and the top-k
    /// estimates. A key that stops being accessed decays out of hotness
    /// within a couple of windows.
    fn halve(&mut self) {
        for c in &mut self.counts {
            *c /= 2;
        }
        self.total /= 2;
        self.since_decay = 0;
        for e in &mut self.topk {
            e.0 /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_key_is_detected_and_cold_is_not() {
        let mut d = HotKeyDetector::new(1024, 4, 1 << 30);
        for i in 0..10_000u64 {
            d.observe(7); // hot: every other op
            d.observe(1000 + i); // cold tail, all distinct
        }
        // Key 7 has ~50% of traffic; 10% threshold flags it.
        assert!(d.is_hot(7, 100_000, 100));
        assert!(!d.is_hot(1234, 100_000, 100));
        assert_eq!(d.topk()[0].0, 7);
    }

    #[test]
    fn warmup_suppresses_early_hotness() {
        let mut d = HotKeyDetector::new(256, 2, 1 << 30);
        d.observe(3);
        assert!(
            !d.is_hot(3, 100_000, 100),
            "one observation of one key must not read as hot"
        );
    }

    #[test]
    fn decay_forgets_stale_hot_keys() {
        let mut d = HotKeyDetector::new(256, 2, 1000);
        for _ in 0..800 {
            d.observe(42);
        }
        assert!(d.is_hot(42, 500_000, 100));
        // The workload shifts: key 42 never accessed again.
        for i in 0..8_000u64 {
            d.observe(i % 97);
        }
        assert!(
            !d.is_hot(42, 500_000, 100),
            "estimate {} of total {} still hot",
            d.estimate(42),
            d.total()
        );
    }

    #[test]
    fn detector_is_deterministic() {
        let run = || {
            let mut d = HotKeyDetector::new(512, 4, 4096);
            for i in 0..5_000u64 {
                d.observe((i * i) % 701);
            }
            (d.topk(), d.total())
        };
        assert_eq!(run(), run());
    }
}
