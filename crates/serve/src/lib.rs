//! A multi-tenant cache serving front end over the far-memory fabric.
//!
//! The paper's claim (§3–§5) is that far-memory data structures pay off
//! when *applications* drive them; this crate is the first
//! workload-facing layer of the repo — a memcached/redis-shaped cache
//! built entirely from the existing substrate:
//!
//! * **Worker/session model** — compute-side state is sharded over
//!   workers (Dragonfly-style shared-nothing: each namespaced key has
//!   exactly one owning worker, picked by hash). A worker is one
//!   [`farmem_runtime::Runtime`] worker thread multiplexing many logical
//!   sessions; [`run_sessions`](CacheServer::run_sessions) is the
//!   listener, routing sessions onto workers.
//! * **Tenants** — every request names a [`TenantId`]; raw keys are
//!   prefixed into disjoint ranges of the shared [`HtTree`] keyspace, so
//!   two tenants storing the same raw key can never observe each
//!   other's values. Byte and operation quotas are enforced *at
//!   admission*, before any far access is issued.
//! * **Slab-class values** — records live in [`FarAlloc`] size classes
//!   (power-of-two rounding); quota accounting charges the rounded
//!   class, and [`FarAlloc::class_stats`] audits per-class occupancy.
//! * **TTL + eviction through reclamation** — every record carries an
//!   absolute virtual-time expiry; a get that finds an expired record
//!   reports a miss and (on the owning worker) unlinks and retires it
//!   through `farmem-reclaim`, so an expired value is *never served*
//!   after its TTL instant and its far memory actually comes back.
//!   An LRU watermark per worker evicts cold records the same way,
//!   keeping the far-memory footprint bounded under insert churn.
//! * **Hot-key spreading** — a per-worker count-min sketch with a top-k
//!   estimates key popularity; reads of detected hot keys are spread
//!   round-robin over the replica group via the per-client
//!   [`spread_reads`](farmem_fabric::FabricClient::set_spread_reads)
//!   override, while cold reads keep primary locality.
//!
//! [`HtTree`]: farmem_core::HtTree
//! [`FarAlloc`]: farmem_alloc::FarAlloc
//! [`FarAlloc::class_stats`]: farmem_alloc::FarAlloc::class_stats

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hotkey;
mod server;
mod store;
mod tenant;

pub use hotkey::HotKeyDetector;
pub use server::{
    CacheServer, Request, Response, ServeConfig, ServeWorker, SessionSummary, WorkerStats,
};
pub use store::{charged_bytes, GetOutcome, RecordStore, RECORD_HEADER};
pub use tenant::{Reject, TenantId, TenantSpec, TenantStats, MAX_RAW_KEY, MAX_TENANTS};

use farmem_core::CoreError;

/// Errors surfaced by the serving layer (quota and admission failures
/// are *not* errors — they come back as [`Response::Rejected`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// An underlying structure operation failed.
    Core(CoreError),
    /// The request named a tenant id that was never registered.
    UnknownTenant,
    /// A mutation was routed to a worker that does not own the key —
    /// the listener must route by [`CacheServer::owner_of`].
    NotOwner,
    /// Tenant registry is full ([`MAX_TENANTS`]).
    TooManyTenants,
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<farmem_fabric::FabricError> for ServeError {
    fn from(e: farmem_fabric::FabricError) -> Self {
        ServeError::Core(CoreError::Fabric(e))
    }
}

impl From<farmem_alloc::AllocError> for ServeError {
    fn from(e: farmem_alloc::AllocError) -> Self {
        ServeError::Core(CoreError::Alloc(e))
    }
}

impl From<farmem_reclaim::ReclaimError> for ServeError {
    fn from(e: farmem_reclaim::ReclaimError) -> Self {
        ServeError::Core(CoreError::from(e))
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "serve: {e}"),
            ServeError::UnknownTenant => write!(f, "serve: unknown tenant"),
            ServeError::NotOwner => write!(f, "serve: key routed to non-owning worker"),
            ServeError::TooManyTenants => write!(f, "serve: tenant registry full"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
