//! The metrics sampling hook (farmem-metrics).
//!
//! The live observability layer in `crates/metrics` watches the system
//! *while it runs*: it snapshots [`AccessStats`] deltas, node occupancy
//! and verb latencies into bounded time-series rings on a virtual-time
//! interval. The fabric's side of that contract is this one trait.
//!
//! A [`FabricClient`](crate::FabricClient) holds an
//! `Option<Arc<dyn MetricSampler>>`
//! ([`install_sampler`](crate::FabricClient::install_sampler)); with no
//! sampler installed every verb pays exactly **one branch** — the same
//! cheap-by-default discipline as the tracer (`crate::trace`) and the
//! verification observer (`crate::check`). A sampler *observes*: it must
//! never issue fabric accesses, advance a virtual clock, or mutate
//! counters, so enabling it keeps memory contents, outputs and
//! [`AccessStats`] byte-identical to a run without it (enforced by the
//! twin-run property tests in `tests/metrics_props.rs`).

use crate::stats::AccessStats;

/// Receives a callback after every completed *outermost* client verb
/// (composite verbs report once, like trace attribution), and after
/// bookkeeping-only activity — near accesses, reclamation booking,
/// notification drains — with `verb_ns == 0`.
pub trait MetricSampler: Send + Sync {
    /// Observes one client activity boundary.
    ///
    /// * `client` — the reporting client's id;
    /// * `now_ns` — the client's virtual clock after the activity;
    /// * `verb_ns` — virtual duration of the verb that just completed
    ///   (`0` for bookkeeping ticks);
    /// * `stats` — the client's live cumulative counters.
    fn observe(&self, client: u32, now_ns: u64, verb_ns: u64, stats: &AccessStats);
}
