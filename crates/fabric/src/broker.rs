//! Software notification brokers and subscription coarsening (§7.2).
//!
//! A hardware implementation of notifications must scale in the number of
//! subscribers and subscriptions. The paper proposes a software–hardware
//! co-design: the *hardware* subscribers are a small number of compute
//! nodes or dedicated brokers, and a software layer routes notifications
//! onward. It also proposes increasing the spatial granularity of hardware
//! subscriptions — two subscriptions on nearby ranges become one on an
//! encompassing range — at the price of false positives that either the
//! subscriber checks, or the notification's trigger information resolves.
//!
//! [`Broker`] implements both ideas and exposes counters so experiment E9
//! can quantify the trade-offs.

use std::collections::HashMap;
use std::sync::Arc;

use crate::addr::{FarAddr, PAGE, WORD};
use crate::client::FabricClient;
use crate::error::Result;
use crate::notify::{DeliveryPolicy, Event, EventSink, SubId};

/// A software subscriber registered with a broker.
#[derive(Clone)]
struct SoftSub {
    /// Range the subscriber actually asked for.
    addr: FarAddr,
    len: u64,
    sink: Arc<EventSink>,
}

/// One hardware subscription owned by the broker, covering the ranges of
/// several software subscribers on the same page.
struct Route {
    hw_sub: SubId,
    /// Encompassing range currently registered in hardware.
    addr: FarAddr,
    len: u64,
    subs: Vec<SoftSub>,
}

/// Delivery/routing counters for one broker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Hardware events the broker consumed.
    pub hw_events: u64,
    /// Events routed to software subscribers.
    pub routed: u64,
    /// Deliveries suppressed because the trigger information proved the
    /// subscriber's own range was untouched (a false positive resolved in
    /// software for free).
    pub filtered_false_positives: u64,
    /// Deliveries made *without* trigger information to subscribers whose
    /// range may not have changed — the subscriber must check (§7.2).
    pub unverified_deliveries: u64,
    /// `Lost` warnings propagated to all subscribers of this broker.
    pub lost_warnings: u64,
}

/// A pub-sub broker: one hardware subscriber fanning notifications out to
/// many software subscribers (§7.2).
///
/// # Examples
///
/// ```
/// use farmem_fabric::{Broker, FabricConfig, FarAddr};
///
/// let fabric = FabricConfig::single_node(1 << 20).build();
/// let mut writer = fabric.client();
/// let mut broker = Broker::new(fabric.client(), true); // coarsening on
/// let dashboard = broker.make_subscriber_sink(1);
/// broker.subscribe(FarAddr(4096), 8, dashboard.clone()).unwrap();
/// writer.write_u64(FarAddr(4096), 7).unwrap();
/// broker.pump();
/// assert!(dashboard.try_recv().is_some());
/// ```
pub struct Broker {
    client: FabricClient,
    /// Routes keyed by page, one hardware subscription per page when
    /// coarsening, else one per software subscription.
    routes: HashMap<u64, Vec<Route>>,
    coarsen: bool,
    stats: BrokerStats,
}

impl Broker {
    /// Creates a broker using `client` as its hardware subscriber.
    ///
    /// With `coarsen` set, software subscriptions landing on the same page
    /// share (and widen) a single hardware subscription.
    pub fn new(client: FabricClient, coarsen: bool) -> Broker {
        Broker { client, routes: HashMap::new(), coarsen, stats: BrokerStats::default() }
    }

    /// Creates a sink suitable for handing to [`Broker::subscribe`].
    pub fn make_subscriber_sink(&self, seed: u64) -> Arc<EventSink> {
        EventSink::new(DeliveryPolicy::COALESCING, seed)
    }

    /// Registers a software subscription on `[addr, addr+len)`, installing
    /// or widening a hardware subscription as needed.
    pub fn subscribe(&mut self, addr: FarAddr, len: u64, sink: Arc<EventSink>) -> Result<()> {
        let page = addr.0 / PAGE;
        let soft = SoftSub { addr, len, sink };
        let routes = self.routes.entry(page).or_default();
        if self.coarsen {
            if let Some(route) = routes.first_mut() {
                // Widen the existing hardware subscription to the
                // encompassing, word-aligned range.
                let start = route.addr.0.min(addr.0) / WORD * WORD;
                let end = (route.addr.0 + route.len).max(addr.0 + len);
                let end = end.div_ceil(WORD) * WORD;
                if start != route.addr.0 || end != route.addr.0 + route.len {
                    self.client.unsubscribe(route.hw_sub)?;
                    route.hw_sub = self.client.notify0(FarAddr(start), end - start)?;
                    route.addr = FarAddr(start);
                    route.len = end - start;
                }
                route.subs.push(soft);
                return Ok(());
            }
        }
        let hw_sub = self.client.notify0(addr, len)?;
        routes.push(Route { hw_sub, addr, len, subs: vec![soft] });
        Ok(())
    }

    /// Number of hardware subscriptions currently held.
    pub fn hw_subscriptions(&self) -> usize {
        self.routes.values().map(|v| v.len()).sum()
    }

    /// Total number of software subscribers.
    pub fn soft_subscriptions(&self) -> usize {
        self.routes.values().flat_map(|v| v.iter()).map(|r| r.subs.len()).sum()
    }

    /// Routing counters.
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }

    /// Drains hardware events and routes them to software subscribers;
    /// returns the number of hardware events processed.
    ///
    /// With trigger information available (the fabric's `carry_trigger`
    /// setting), the broker filters false positives exactly; without it,
    /// every subscriber on the route is notified and must check its own
    /// data (both paths are counted in [`BrokerStats`]).
    pub fn pump(&mut self) -> usize {
        let events = self.client.recv_events();
        let n = events.len();
        for event in events {
            match &event {
                Event::Lost { .. } => {
                    self.stats.lost_warnings += 1;
                    for routes in self.routes.values() {
                        for route in routes {
                            for sub in &route.subs {
                                sub.sink.deliver(event.clone());
                            }
                        }
                    }
                }
                Event::Changed { sub, trigger, .. } => {
                    self.stats.hw_events += 1;
                    let route = self
                        .routes
                        .values()
                        .flat_map(|v| v.iter())
                        .find(|r| r.hw_sub == *sub);
                    let Some(route) = route else { continue };
                    for soft in &route.subs {
                        match trigger {
                            Some((t_addr, t_len)) => {
                                let overlap = t_addr.0 < soft.addr.0 + soft.len
                                    && soft.addr.0 < t_addr.0 + t_len;
                                if overlap {
                                    soft.sink.deliver(event.clone());
                                    self.stats.routed += 1;
                                } else {
                                    self.stats.filtered_false_positives += 1;
                                }
                            }
                            None => {
                                soft.sink.deliver(event.clone());
                                self.stats.routed += 1;
                                self.stats.unverified_deliveries += 1;
                            }
                        }
                    }
                }
                _ => {
                    self.stats.hw_events += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;

    #[test]
    fn broker_routes_to_matching_subscriber_only() {
        let f = FabricConfig::single_node(1 << 20).build();
        let mut writer = f.client();
        let mut broker = Broker::new(f.client(), true);
        let s1 = broker.make_subscriber_sink(1);
        let s2 = broker.make_subscriber_sink(2);
        broker.subscribe(FarAddr(4096), 8, s1.clone()).unwrap();
        broker.subscribe(FarAddr(4096 + 512), 8, s2.clone()).unwrap();
        // Coarsening merged the two into one hardware subscription.
        assert_eq!(broker.hw_subscriptions(), 1);
        assert_eq!(broker.soft_subscriptions(), 2);

        writer.write_u64(FarAddr(4096 + 512), 1).unwrap();
        broker.pump();
        assert!(s1.try_recv().is_none(), "trigger info filters s1 out");
        assert!(s2.try_recv().is_some());
        let st = broker.stats();
        assert_eq!(st.routed, 1);
        assert_eq!(st.filtered_false_positives, 1);
    }

    #[test]
    fn without_trigger_info_false_positives_reach_subscribers() {
        let f = FabricConfig { carry_trigger: false, ..FabricConfig::single_node(1 << 20) }
            .build();
        let mut writer = f.client();
        let mut broker = Broker::new(f.client(), true);
        let s1 = broker.make_subscriber_sink(1);
        let s2 = broker.make_subscriber_sink(2);
        broker.subscribe(FarAddr(4096), 8, s1.clone()).unwrap();
        broker.subscribe(FarAddr(4096 + 512), 8, s2.clone()).unwrap();
        writer.write_u64(FarAddr(4096 + 512), 1).unwrap();
        broker.pump();
        assert!(s1.try_recv().is_some(), "s1 gets a false positive to check");
        assert!(s2.try_recv().is_some());
        assert_eq!(broker.stats().unverified_deliveries, 2);
    }

    #[test]
    fn uncoarsened_broker_keeps_one_hw_sub_per_range() {
        let f = FabricConfig::single_node(1 << 20).build();
        let mut broker = Broker::new(f.client(), false);
        let s = broker.make_subscriber_sink(3);
        broker.subscribe(FarAddr(4096), 8, s.clone()).unwrap();
        broker.subscribe(FarAddr(4096 + 512), 8, s).unwrap();
        assert_eq!(broker.hw_subscriptions(), 2);
    }
}
