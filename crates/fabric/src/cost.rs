//! The latency/cost model and per-client virtual clocks.
//!
//! The paper's key performance metric is the number of far-memory accesses
//! (§3.1), but its argument also rests on a latency regime: far accesses
//! cost O(1 µs) while local accesses cost O(100 ns) and can be hidden by
//! processor caches. Experiments in this repository never measure
//! wall-clock time; instead every verb charges a configurable [`CostModel`]
//! against the issuing client's [`SimClock`], so latency and throughput
//! numbers are deterministic virtual-time quantities with the same *shape*
//! as the paper's regime.

/// Tunable costs, all in nanoseconds of virtual time.
///
/// Defaults reproduce the regime quoted in §2/§3.1: ~100 ns near accesses,
/// ~2 µs far round trips (within 10× of near latency once pipelining is
/// considered), and 1 KiB transferred in ~1 µs (InfiniBand FDR 4×).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of one near-memory (client-local) access.
    pub near_ns: u64,
    /// Round-trip latency of one far-memory access, excluding payload.
    pub far_rtt_ns: u64,
    /// Additional cost per byte moved over the fabric (≈1 ns/B ⇒ 1 KiB/µs).
    pub per_byte_ns_x1024: u64,
    /// Memory-side hop cost when a node forwards an indirection to the node
    /// owning the dereferenced target (§7.1). Cheaper than a client RTT.
    pub mem_hop_ns: u64,
    /// Serial occupancy of a memory node's fabric interface per message.
    /// This bounds per-node one-sided throughput. Kept small (a modern
    /// NIC sustains hundreds of millions of messages per second): the
    /// paper's bottleneck story is the RPC server CPU versus the fabric,
    /// not NIC saturation, and the FIFO booking model degrades near
    /// saturation (see DESIGN.md).
    pub node_msg_ns: u64,
    /// Extra serial occupancy at the memory node for executing an extended
    /// verb (indirection chase, scatter/gather setup, notification match).
    pub node_ext_ns: u64,
}

impl CostModel {
    /// Cost model with the paper's default regime.
    pub const DEFAULT: CostModel = CostModel {
        near_ns: 100,
        far_rtt_ns: 2_000,
        per_byte_ns_x1024: 1_024,
        mem_hop_ns: 500,
        node_msg_ns: 5,
        node_ext_ns: 5,
    };

    /// A zero-latency model: only access *counts* matter. Useful in unit
    /// tests that assert round-trip counts without caring about time.
    pub const COUNT_ONLY: CostModel = CostModel {
        near_ns: 0,
        far_rtt_ns: 0,
        per_byte_ns_x1024: 0,
        mem_hop_ns: 0,
        node_msg_ns: 0,
        node_ext_ns: 0,
    };

    /// Payload cost for `bytes` bytes.
    #[inline]
    pub fn bytes_ns(&self, bytes: u64) -> u64 {
        bytes * self.per_byte_ns_x1024 / 1024
    }

    /// One-way fabric latency (half a round trip).
    #[inline]
    pub fn one_way_ns(&self) -> u64 {
        self.far_rtt_ns / 2
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::DEFAULT
    }
}

/// A per-client virtual clock, advanced by every verb the client issues.
///
/// Clocks are plain counters owned by their client; cross-client
/// synchronization happens only through the serial-resource timestamps on
/// memory nodes and RPC servers (see [`crate::node::MemoryNode::occupy`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> SimClock {
        SimClock { now_ns: 0 }
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// Advances the clock by `delta` nanoseconds.
    #[inline]
    pub fn advance(&mut self, delta: u64) {
        self.now_ns += delta;
    }

    /// Moves the clock forward to `t` if `t` is later than now.
    #[inline]
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now_ns {
            self.now_ns = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_regime_matches_paper() {
        let m = CostModel::DEFAULT;
        // Far accesses are an order of magnitude slower than near accesses.
        assert!(m.far_rtt_ns >= 10 * m.near_ns);
        // 1 KiB transfers in about 1 µs.
        assert_eq!(m.bytes_ns(1024), 1_024);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(10);
        c.advance_to(5);
        assert_eq!(c.now(), 10);
        c.advance_to(25);
        assert_eq!(c.now(), 25);
    }
}
