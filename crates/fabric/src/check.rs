//! Verification hooks: the fabric side of `farmem-check`.
//!
//! A [`CheckObserver`] installed with [`Fabric::install_check_observer`]
//! sees every verb *attempt* (the scheduling gate a bounded-interleaving
//! explorer blocks on) and every word-level memory access (the event
//! stream a happens-before race detector consumes), plus notification
//! receipts (which carry synchronization in the §4.3 protocols).
//!
//! The discipline mirrors `fabric::trace`: with no observer installed the
//! only cost on any verb path is one relaxed atomic load, and an observer
//! must never touch the virtual clock or the [`AccessStats`] books —
//! checked by `client::tests::check_hooks_add_zero_accesses_and_time`.
//!
//! What the stream means (and what it deliberately does not):
//!
//! * every access is **word-granular at the node** — single-word verbs
//!   and atomics can never tear, but a multi-word [`AccessKind::Read`] /
//!   [`AccessKind::Write`] is a sequence of word accesses with no
//!   snapshot guarantee (the torn-read hazard the checker looks for);
//! * accesses are reported **only when the node executed them** — an
//!   attempt killed by fault injection (fail-before-execution) emits a
//!   gate but no access, matching what actually hit far memory;
//! * the observer runs inside the verb, so blocking in [`gate`]
//!   serializes clients — exactly what a deterministic explorer wants.
//!
//! [`Fabric::install_check_observer`]: crate::Fabric::install_check_observer
//! [`AccessStats`]: crate::AccessStats
//! [`gate`]: CheckObserver::gate

use crate::addr::FarAddr;

/// How a far-memory access interacts with the word(s) it touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain read. `len == 8` is a word verb (atomic at the node);
    /// longer ranges are word sequences that can tear.
    Read,
    /// Plain write; same granularity caveat as [`AccessKind::Read`].
    Write,
    /// Atomic observation that did not mutate: a CAS that lost, or a
    /// guard-word probe of a guarded indirect verb.
    AtomicRead,
    /// Successful atomic mutation: CAS hit, FAA, swap, guarded add —
    /// the verbs that *publish* synchronization (release semantics).
    AtomicRmw,
}

/// One far-memory access, as seen by the node that executed it.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Issuing client.
    pub client: u32,
    /// Global start address.
    pub addr: FarAddr,
    /// Bytes touched.
    pub len: u64,
    /// Access class (see [`AccessKind`]).
    pub kind: AccessKind,
}

/// Observer interface for `farmem-check` (and tests). All methods have
/// empty defaults so an observer implements only what it needs.
pub trait CheckObserver: Send + Sync {
    /// Called at the top of every verb attempt, before fault injection
    /// and before any node-side execution. A deterministic scheduler
    /// blocks here until it grants `_client` its next step.
    fn gate(&self, _client: u32) {}

    /// Called after the node executed a memory access.
    fn access(&self, _access: &Access) {}

    /// Called when `_client` drains a notification for `[_addr,
    /// _addr+_len)` from its sink: the §4.3 edge a waiter synchronizes
    /// through before re-validating with an atomic.
    fn notified(&self, _client: u32, _addr: FarAddr, _len: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl CheckObserver for Nop {}

    #[test]
    fn default_methods_are_callable_noops() {
        let o = Nop;
        o.gate(0);
        o.access(&Access { client: 0, addr: FarAddr(64), len: 8, kind: AccessKind::Read });
        o.notified(0, FarAddr(64), 8);
    }
}
