//! Indirect addressing verbs (Fig. 1, §4.1).
//!
//! Indirect addressing dereferences a pointer held in far memory to
//! determine another far address to load or store, all inside the memory
//! node — avoiding a round trip whenever a data structure needs to follow
//! a pointer. The full Fig. 1 family is implemented:
//!
//! | verb | semantics |
//! |------|-----------|
//! | `load0(ad, ℓ)`        | `tmp = *ad; return *tmp` |
//! | `store0(ad, v, ℓ)`    | `tmp = *ad; *tmp = v` |
//! | `load1(ad, i, ℓ)`     | `tmp = *(ad + i); return *tmp` |
//! | `store1(ad, i, v, ℓ)` | `tmp = *(ad + i); *tmp = v` |
//! | `load2(ad, i, ℓ)`     | `tmp = (*ad) + i; return *tmp` |
//! | `store2(ad, i, v, ℓ)` | `tmp = (*ad) + i; *tmp = v` |
//! | `faai(ad, v, ℓ)`      | `tmp = *ad; *ad += v; return *tmp` |
//! | `saai(ad, v, v', ℓ)`  | `tmp = *ad; *ad += v; *tmp = v'` |
//! | `add0(ad, v)`         | `**ad += v` |
//! | `add1(ad, v, i)`      | `tmp = ad + i; **tmp += v` |
//! | `add2(ad, v, i)`      | `tmp = *ad + i; *tmp += v` |
//!
//! (`faai`'s Fig. 1 pseudo-code returns the old pointer; the prose says it
//! "returns the value pointed by its old value", which is what the queue of
//! §5.3 needs — we follow the prose.)
//!
//! When the dereferenced target lives on a *different* memory node, the
//! behaviour follows the fabric's [`IndirectionMode`]
//! (§7.1): `Forward` completes the access with a memory-side hop, `Error`
//! returns [`FabricError::IndirectRemote`] and the client finishes the
//! access itself — the `*_auto` wrappers do exactly that.

use crate::addr::{FarAddr, NodeId, WORD};
use crate::check::AccessKind;
use crate::client::FabricClient;
use crate::error::{FabricError, Result};
use crate::fabric::IndirectionMode;
use crate::trace::VerbKind;

/// How an indirect verb reads its pointer word.
#[derive(Clone, Copy, Debug)]
enum PtrRead {
    /// Plain load of the pointer.
    Plain,
    /// Atomic fetch-and-add of `delta` (for `faai` / `saai`).
    FetchAdd(u64),
    /// Fetch-and-add performed only if a guard word (on the same node)
    /// holds the expected value — the conditional/masked-atomic flavour
    /// real NICs offer (e.g. ConnectX masked atomics), used by the §5.3
    /// queue to fence its fast path against slow-path repairs.
    GuardedFetchAdd {
        /// Added to the pointer word.
        delta: u64,
        /// Far address of the guard word (must share the pointer's node).
        guard: FarAddr,
        /// Required guard value.
        expect: u64,
    },
}

/// What the verb does at the dereferenced target.
#[derive(Clone, Copy)]
enum TargetAccess<'a> {
    /// Read `len` bytes.
    Read(u64),
    /// Write the given bytes.
    Write(&'a [u8]),
    /// Atomically add to the target word.
    Add(u64),
    /// Atomically swap the target word with a replacement (destructive
    /// read), returning the old contents.
    Swap(u64),
}

impl FabricClient {
    /// Core of every indirect verb: one client round trip that reads the
    /// pointer at `ptr_addr`, offsets it by `index`, and performs `access`
    /// at the target — forwarding or erroring if the target is remote.
    /// Returns `(pointer value, read data)`. The pointer value is exposed
    /// because fabric completions for atomic verbs carry the old value
    /// anyway (RDMA fetch-and-add does); the §5.3 queue's background slack
    /// check depends on learning where its `faai`/`saai` landed.
    ///
    /// Guarded verbs with a node-local target execute as ONE atomic unit
    /// at the memory node (guard check, pointer bump, target access);
    /// with a remote target only the guard+bump is atomic and the target
    /// access follows via forwarding — structures needing full atomicity
    /// must colocate their pointer and data (§7.1 localized placement).
    fn indirect(
        &mut self,
        ptr_addr: FarAddr,
        ptr_read: PtrRead,
        index: u64,
        access: TargetAccess<'_>,
    ) -> Result<(u64, Option<Vec<u8>>)> {
        // Every Fig. 1 indirect verb funnels through here, so one traced()
        // wrapper covers the whole family; `*_auto` completions re-enter
        // via the traced `read`/`write`/`cas` verbs and record their own
        // events.
        self.traced(VerbKind::Indirect, |cl| {
            cl.retrying(|c| {
                c.begin_attempt()?;
                c.indirect_once(ptr_addr, ptr_read, index, access)
            })
        })
    }

    /// One attempt of an indirect verb (see [`indirect`](Self::indirect)
    /// for the retry wrapper).
    fn indirect_once(
        &mut self,
        ptr_addr: FarAddr,
        ptr_read: PtrRead,
        index: u64,
        access: TargetAccess<'_>,
    ) -> Result<(u64, Option<Vec<u8>>)> {
        let cost = *self.fabric().cost();
        let mode = self.fabric().config().indirection;
        let arrival = self.arrival();

        // Resolve the pointer at its home node.
        let (home_id, ptr_off) = self.word_home(ptr_addr)?;
        let home_phys = self.route(home_id);
        let fabric = self.fabric().clone();
        let home = fabric.node(home_phys);
        home.check_alive_at(arrival)?;

        let len = match &access {
            TargetAccess::Read(l) => *l,
            TargetAccess::Write(d) => d.len() as u64,
            TargetAccess::Add(_) | TargetAccess::Swap(_) => WORD,
        };

        // Pre-flight for destructive pointer reads: peek the pointer and
        // check the dereferenced target's nodes *before* the atomic bump,
        // so a crashed target fails the attempt with the pointer untouched
        // and a retry cannot bump it twice. (The peek is node-internal:
        // no message or round trip is charged.)
        if matches!(
            ptr_read,
            PtrRead::FetchAdd(_) | PtrRead::GuardedFetchAdd { .. }
        ) {
            let peek = home.read_u64(ptr_off)?;
            if peek != 0 {
                if let Ok(segs) = fabric.segments(FarAddr(peek + index), len) {
                    for seg in &segs {
                        let phys = self.route(seg.node);
                        fabric.node(phys).check_alive_at(arrival)?;
                    }
                }
            }
        }

        let mut home_finish = home.occupy(arrival, cost.node_msg_ns + cost.node_ext_ns);
        self.stats_mut().messages += 1;

        // The guarded flavour: one atomic unit at the home node.
        if let PtrRead::GuardedFetchAdd { delta, guard, expect } = ptr_read {
            let (guard_node, guard_off) = self.word_home(guard)?;
            if guard_node != home_id {
                self.finish_rt(home_finish);
                return Err(FabricError::BadIovec {
                    reason: "guard word must live on the pointer's node",
                });
            }
            // Outcome of the atomic unit.
            enum Unit {
                Null,
                Local { ptr: u64, out: Option<Vec<u8>>, fired: Option<(u64, u64)> },
                Remote { ptr: u64, target: FarAddr, node: NodeId },
            }
            let fabric2 = fabric.clone();
            let unit = home.guarded_verb(guard_off, expect, |n| {
                let ptr = n.words_raw(ptr_off)?.load(std::sync::atomic::Ordering::SeqCst);
                if ptr == 0 {
                    return Ok(Unit::Null);
                }
                let target = FarAddr(ptr + index);
                let segs = fabric2.segments(target, len)?;
                if segs.iter().any(|s| s.node != home_id) {
                    // Remote target: bump the pointer atomically; the
                    // target access happens outside the unit.
                    n.words_raw(ptr_off)?
                        .fetch_add(delta, std::sync::atomic::Ordering::SeqCst);
                    let remote = segs.iter().find(|s| s.node != home_id).unwrap();
                    return Ok(Unit::Remote { ptr, target, node: remote.node });
                }
                // Local target: bump + access inside the unit.
                n.words_raw(ptr_off)?
                    .fetch_add(delta, std::sync::atomic::Ordering::SeqCst);
                let seg = segs[0];
                debug_assert_eq!(segs.len(), 1, "single-node target is one segment");
                let (out, fired) = match &access {
                    TargetAccess::Read(l) => {
                        let mut buf = vec![0u8; *l as usize];
                        n.read_bytes(seg.offset, &mut buf)?;
                        (Some(buf), None)
                    }
                    TargetAccess::Write(data) => {
                        n.write_bytes(seg.offset, data)?;
                        (None, Some((seg.offset, seg.len)))
                    }
                    TargetAccess::Swap(replacement) => {
                        if !target.is_aligned(WORD) {
                            return Err(FabricError::Unaligned {
                                addr: target,
                                required: WORD,
                            });
                        }
                        let old = n
                            .words_raw(seg.offset)?
                            .swap(*replacement, std::sync::atomic::Ordering::SeqCst);
                        (Some(old.to_le_bytes().to_vec()), Some((seg.offset, WORD)))
                    }
                    TargetAccess::Add(v) => {
                        if !target.is_aligned(WORD) {
                            return Err(FabricError::Unaligned {
                                addr: target,
                                required: WORD,
                            });
                        }
                        n.words_raw(seg.offset)?
                            .fetch_add(*v, std::sync::atomic::Ordering::SeqCst);
                        (None, Some((seg.offset, WORD)))
                    }
                };
                Ok(Unit::Local { ptr, out, fired })
            });
            self.stats_mut().atomics += 1;
            let service = cost.node_ext_ns + cost.bytes_ns(len);
            let finish = home.occupy(home_finish, service);
            // The guard word was probed atomically whatever the outcome.
            self.observe(AccessKind::AtomicRead, guard, WORD);
            match unit {
                Err(e) => {
                    self.finish_rt(home_finish);
                    return Err(e);
                }
                Ok(Unit::Null) => {
                    self.observe(AccessKind::AtomicRead, ptr_addr, WORD);
                    self.finish_rt(home_finish);
                    return Err(FabricError::NullDeref { pointer_at: ptr_addr });
                }
                Ok(Unit::Local { ptr, out, fired }) => {
                    self.observe(AccessKind::AtomicRmw, ptr_addr, WORD);
                    let target = FarAddr(ptr + index);
                    self.observe(
                        match &access {
                            TargetAccess::Read(_) => AccessKind::Read,
                            TargetAccess::Write(_) => AccessKind::Write,
                            TargetAccess::Add(_) | TargetAccess::Swap(_) => AccessKind::AtomicRmw,
                        },
                        target,
                        len,
                    );
                    // Notifications and replica mirrors fire outside the
                    // atomic unit; both mirrors fan out in parallel and the
                    // ack folds in the slower one.
                    let mirrored = fabric.fire(self.stats_mut(), home_id, ptr_off, WORD, finish);
                    let finish = if let Some((off, l)) = fired {
                        mirrored.max(fabric.fire(self.stats_mut(), home_id, off, l, finish))
                    } else {
                        mirrored
                    };
                    match &access {
                        TargetAccess::Read(l) => self.stats_mut().bytes_read += *l,
                        TargetAccess::Swap(_) => self.stats_mut().bytes_read += WORD,
                        TargetAccess::Write(d) => {
                            self.stats_mut().bytes_written += d.len() as u64
                        }
                        TargetAccess::Add(_) => {}
                    }
                    self.finish_rt(finish);
                    return Ok((ptr, out));
                }
                Ok(Unit::Remote { ptr, target, node }) => {
                    self.observe(AccessKind::AtomicRmw, ptr_addr, WORD);
                    let finish = fabric.fire(self.stats_mut(), home_id, ptr_off, WORD, finish);
                    if mode == IndirectionMode::Error {
                        self.finish_rt(finish);
                        return Err(FabricError::IndirectRemote {
                            target,
                            target_node: node,
                        });
                    }
                    // Forwarded completion (weaker atomicity, documented).
                    return self.finish_at_target(ptr, target, len, access, home_id, arrival, finish);
                }
            }
        }

        let ptr = match ptr_read {
            PtrRead::Plain => {
                let v = home.read_u64(ptr_off)?;
                self.observe(AccessKind::Read, ptr_addr, WORD);
                v
            }
            PtrRead::FetchAdd(delta) => {
                self.stats_mut().atomics += 1;
                let prev = home.faa_u64(ptr_off, delta)?;
                home_finish = fabric.fire(self.stats_mut(), home_id, ptr_off, WORD, home_finish);
                self.observe(AccessKind::AtomicRmw, ptr_addr, WORD);
                prev
            }
            PtrRead::GuardedFetchAdd { .. } => unreachable!("handled above"),
        };
        if ptr == 0 {
            self.finish_rt(home_finish);
            return Err(FabricError::NullDeref { pointer_at: ptr_addr });
        }
        let target = FarAddr(ptr + index);
        let segs = match fabric.segments(target, len) {
            Ok(s) => s,
            Err(e) => {
                self.finish_rt(home_finish);
                return Err(e);
            }
        };

        // §7.1: a dereferenced pointer may refer to data on a remote node.
        let any_remote = segs.iter().any(|s| s.node != home_id);
        if any_remote && mode == IndirectionMode::Error {
            let remote = segs.iter().find(|s| s.node != home_id).unwrap();
            self.finish_rt(home_finish);
            return Err(FabricError::IndirectRemote {
                target,
                target_node: remote.node,
            });
        }
        self.finish_at_target(ptr, target, len, access, home_id, arrival, home_finish)
    }

    /// Completes an indirect verb at its (possibly remote) target
    /// segments. Segments on `home_id` (the pointer's node) extend the
    /// home service chain; remote segments are forwarded with one
    /// memory-side hop (§7.1).
    #[allow(clippy::too_many_arguments)] // internal plumbing of one verb's pre-computed state
    fn finish_at_target(
        &mut self,
        ptr: u64,
        target: FarAddr,
        len: u64,
        access: TargetAccess<'_>,
        home_id: NodeId,
        arrival: u64,
        home_finish: u64,
    ) -> Result<(u64, Option<Vec<u8>>)> {
        let cost = *self.fabric().cost();
        let fabric = self.fabric().clone();
        let segs = fabric.segments(target, len)?;
        let mut finish = home_finish;
        let mut out = match access {
            TargetAccess::Read(l) => Some(vec![0u8; l as usize]),
            TargetAccess::Swap(_) => Some(vec![0u8; WORD as usize]),
            _ => None,
        };
        let mut done = 0usize;
        for seg in &segs {
            let phys = self.route(seg.node);
            let node = fabric.node(phys);
            node.check_alive_at(arrival)?;
            // Remote targets occupy their node's interface from the
            // arrival time (the interface is work-conserving); the
            // memory-side hop latency is added to the completion.
            let service = cost.node_msg_ns + cost.bytes_ns(seg.len);
            let mut f = if seg.node == home_id {
                node.occupy(home_finish, service)
            } else {
                self.stats_mut().forward_hops += 1;
                self.stats_mut().messages += 1;
                node.occupy(arrival, service).max(home_finish) + cost.mem_hop_ns
            };
            match (&mut out, &access) {
                (Some(buf), TargetAccess::Swap(replacement)) => {
                    if !target.is_aligned(WORD) {
                        return Err(FabricError::Unaligned { addr: target, required: WORD });
                    }
                    self.stats_mut().atomics += 1;
                    let old = node.swap_u64(seg.offset, *replacement)?;
                    buf[done..done + 8].copy_from_slice(&old.to_le_bytes());
                    f = fabric.fire(self.stats_mut(), seg.node, seg.offset, WORD, f);
                }
                (Some(buf), _) => {
                    node.read_bytes(seg.offset, &mut buf[done..done + seg.len as usize])?;
                }
                (None, access) => match access {
                    TargetAccess::Write(data) => {
                        node.write_bytes(seg.offset, &data[done..done + seg.len as usize])?;
                        f = fabric.fire(self.stats_mut(), seg.node, seg.offset, seg.len, f);
                    }
                    TargetAccess::Add(v) => {
                        if !target.is_aligned(WORD) {
                            return Err(FabricError::Unaligned {
                                addr: target,
                                required: WORD,
                            });
                        }
                        self.stats_mut().atomics += 1;
                        node.faa_u64(seg.offset, *v)?;
                        f = fabric.fire(self.stats_mut(), seg.node, seg.offset, WORD, f);
                    }
                    TargetAccess::Read(_) | TargetAccess::Swap(_) => unreachable!(),
                },
            }
            done += seg.len as usize;
            finish = finish.max(f);
        }
        match &access {
            TargetAccess::Read(l) => self.stats_mut().bytes_read += *l,
            TargetAccess::Swap(_) => self.stats_mut().bytes_read += WORD,
            TargetAccess::Write(d) => self.stats_mut().bytes_written += d.len() as u64,
            TargetAccess::Add(_) => {}
        }
        self.observe(
            match &access {
                TargetAccess::Read(_) => AccessKind::Read,
                TargetAccess::Write(_) => AccessKind::Write,
                TargetAccess::Add(_) | TargetAccess::Swap(_) => AccessKind::AtomicRmw,
            },
            target,
            len,
        );
        self.finish_rt(finish);
        Ok((ptr, out))
    }

    /// `load0(ad, ℓ)`: dereference the pointer at `ad` and read `ℓ` bytes
    /// at the target. One far access.
    pub fn load0(&mut self, ad: FarAddr, len: u64) -> Result<Vec<u8>> {
        Ok(self.indirect(ad, PtrRead::Plain, 0, TargetAccess::Read(len))?.1.unwrap())
    }

    /// `store0(ad, v, ℓ)`: dereference the pointer at `ad` and write `v`
    /// at the target. One far access.
    pub fn store0(&mut self, ad: FarAddr, data: &[u8]) -> Result<()> {
        self.indirect(ad, PtrRead::Plain, 0, TargetAccess::Write(data))?;
        Ok(())
    }

    /// `load1(ad, i, ℓ)`: read through the pointer at `ad + i` — the
    /// pointer itself is indexed, extracting a chosen field of a struct of
    /// pointers. One far access.
    pub fn load1(&mut self, ad: FarAddr, i: u64, len: u64) -> Result<Vec<u8>> {
        Ok(self
            .indirect(ad.offset(i), PtrRead::Plain, 0, TargetAccess::Read(len))?
            .1
            .unwrap())
    }

    /// `store1(ad, i, v, ℓ)`: write through the pointer at `ad + i`.
    /// One far access.
    pub fn store1(&mut self, ad: FarAddr, i: u64, data: &[u8]) -> Result<()> {
        self.indirect(ad.offset(i), PtrRead::Plain, 0, TargetAccess::Write(data))?;
        Ok(())
    }

    /// `load2(ad, i, ℓ)`: read at `(*ad) + i` — the *target* is indexed,
    /// extracting a chosen field of the pointed-to struct. One far access.
    pub fn load2(&mut self, ad: FarAddr, i: u64, len: u64) -> Result<Vec<u8>> {
        Ok(self.indirect(ad, PtrRead::Plain, i, TargetAccess::Read(len))?.1.unwrap())
    }

    /// `store2(ad, i, v, ℓ)`: write at `(*ad) + i`. One far access.
    pub fn store2(&mut self, ad: FarAddr, i: u64, data: &[u8]) -> Result<()> {
        self.indirect(ad, PtrRead::Plain, i, TargetAccess::Write(data))?;
        Ok(())
    }

    /// `faai(ad, v, ℓ)`: atomically add `v` to the pointer at `ad` and
    /// return `ℓ` bytes at the *old* pointer target — the `*ptr++` idiom
    /// the §5.3 queue dequeues with. One far access.
    ///
    /// Also returns the old pointer value (the completion of a fabric
    /// atomic carries it anyway), which the queue's background slack check
    /// needs.
    pub fn faai(&mut self, ad: FarAddr, v: u64, len: u64) -> Result<(u64, Vec<u8>)> {
        let (ptr, data) = self.indirect(ad, PtrRead::FetchAdd(v), 0, TargetAccess::Read(len))?;
        Ok((ptr, data.unwrap()))
    }

    /// `saai(ad, v, v', ℓ)`: atomically add `v` to the pointer at `ad` and
    /// store `v'` at the *old* pointer target — the §5.3 queue's enqueue.
    /// One far access. Returns the old pointer value (see
    /// [`faai`](Self::faai)).
    pub fn saai(&mut self, ad: FarAddr, v: u64, data: &[u8]) -> Result<u64> {
        Ok(self.indirect(ad, PtrRead::FetchAdd(v), 0, TargetAccess::Write(data))?.0)
    }

    /// `faai_swap(ad, v, r)`: like [`faai`](Self::faai), but the target
    /// word is atomically *swapped* with `r` (a destructive read) — the
    /// queue's dequeue consumes its slot in the same far access, leaving
    /// no window where a claimed slot still holds its item. Swap-style
    /// indirect atomics are among §4.1's "additional useful variants";
    /// Gen-Z ships atomic swap. One far access.
    pub fn faai_swap(&mut self, ad: FarAddr, v: u64, replacement: u64) -> Result<(u64, u64)> {
        let (ptr, data) = self.indirect(
            ad,
            PtrRead::FetchAdd(v),
            0,
            TargetAccess::Swap(replacement),
        )?;
        let old = u64::from_le_bytes(data.unwrap().try_into().expect("word"));
        Ok((ptr, old))
    }

    /// Guarded [`faai_swap`](Self::faai_swap) (see
    /// [`faai_guarded`](Self::faai_guarded) for the guard semantics).
    pub fn faai_swap_guarded(
        &mut self,
        ad: FarAddr,
        v: u64,
        replacement: u64,
        guard: FarAddr,
        expect: u64,
    ) -> Result<(u64, u64)> {
        let (ptr, data) = self.indirect(
            ad,
            PtrRead::GuardedFetchAdd { delta: v, guard, expect },
            0,
            TargetAccess::Swap(replacement),
        )?;
        let old = u64::from_le_bytes(data.unwrap().try_into().expect("word"));
        Ok((ptr, old))
    }

    /// [`faai_swap_guarded`](Self::faai_swap_guarded) with client-side
    /// completion of remote indirections (a plain far swap would be needed;
    /// our fabric exposes it via CAS loop — rare path).
    pub fn faai_swap_guarded_auto(
        &mut self,
        ad: FarAddr,
        v: u64,
        replacement: u64,
        guard: FarAddr,
        expect: u64,
    ) -> Result<(u64, u64)> {
        match self.faai_swap_guarded(ad, v, replacement, guard, expect) {
            Err(FabricError::IndirectRemote { target, .. }) => {
                self.stats_mut().reissues += 1;
                // Complete with a far CAS loop emulating the swap.
                loop {
                    let cur = self.read_u64(target)?;
                    if self.cas(target, cur, replacement)? == cur {
                        return Ok((target.0, cur));
                    }
                }
            }
            other => other,
        }
    }

    /// Guarded [`faai`](Self::faai): performed only if the word at `guard`
    /// (same node as `ad`) equals `expect`, atomically — otherwise
    /// [`FabricError::GuardMismatch`] and nothing happens. One far access
    /// either way.
    pub fn faai_guarded(
        &mut self,
        ad: FarAddr,
        v: u64,
        len: u64,
        guard: FarAddr,
        expect: u64,
    ) -> Result<(u64, Vec<u8>)> {
        let (ptr, data) = self.indirect(
            ad,
            PtrRead::GuardedFetchAdd { delta: v, guard, expect },
            0,
            TargetAccess::Read(len),
        )?;
        Ok((ptr, data.unwrap()))
    }

    /// Guarded [`saai`](Self::saai) (see [`faai_guarded`](Self::faai_guarded)).
    pub fn saai_guarded(
        &mut self,
        ad: FarAddr,
        v: u64,
        data: &[u8],
        guard: FarAddr,
        expect: u64,
    ) -> Result<u64> {
        Ok(self
            .indirect(
                ad,
                PtrRead::GuardedFetchAdd { delta: v, guard, expect },
                0,
                TargetAccess::Write(data),
            )?
            .0)
    }

    /// [`faai_guarded`](Self::faai_guarded) with client-side completion of
    /// remote indirections.
    pub fn faai_guarded_auto(
        &mut self,
        ad: FarAddr,
        v: u64,
        len: u64,
        guard: FarAddr,
        expect: u64,
    ) -> Result<(u64, Vec<u8>)> {
        match self.faai_guarded(ad, v, len, guard, expect) {
            Err(FabricError::IndirectRemote { target, .. }) => {
                let data = self.complete_read(target, len)?;
                Ok((target.0, data))
            }
            other => other,
        }
    }

    /// [`saai_guarded`](Self::saai_guarded) with client-side completion of
    /// remote indirections.
    pub fn saai_guarded_auto(
        &mut self,
        ad: FarAddr,
        v: u64,
        data: &[u8],
        guard: FarAddr,
        expect: u64,
    ) -> Result<u64> {
        match self.saai_guarded(ad, v, data, guard, expect) {
            Err(FabricError::IndirectRemote { target, .. }) => {
                self.complete_write(target, data)?;
                Ok(target.0)
            }
            other => other,
        }
    }

    /// `add0(ad, v)`: `**ad += v` — add through a pointer. One far access.
    pub fn add0(&mut self, ad: FarAddr, v: u64) -> Result<()> {
        self.indirect(ad, PtrRead::Plain, 0, TargetAccess::Add(v))?;
        Ok(())
    }

    /// `add1(ad, v, i)`: add through the pointer at `ad + i`.
    /// One far access.
    pub fn add1(&mut self, ad: FarAddr, v: u64, i: u64) -> Result<()> {
        self.indirect(ad.offset(i), PtrRead::Plain, 0, TargetAccess::Add(v))?;
        Ok(())
    }

    /// `add2(ad, v, i)`: add to the word at `(*ad) + i` — e.g. increment
    /// histogram slot `i` through the current-window base pointer (§6).
    /// One far access.
    pub fn add2(&mut self, ad: FarAddr, v: u64, i: u64) -> Result<()> {
        self.indirect(ad, PtrRead::Plain, i, TargetAccess::Add(v))?;
        Ok(())
    }

    // ----- auto wrappers: complete remote indirections client-side -----

    fn complete_read(&mut self, target: FarAddr, len: u64) -> Result<Vec<u8>> {
        self.stats_mut().reissues += 1;
        self.read(target, len)
    }

    fn complete_write(&mut self, target: FarAddr, data: &[u8]) -> Result<()> {
        self.stats_mut().reissues += 1;
        self.write(target, data)
    }

    /// [`load2`](Self::load2) that transparently completes a remote
    /// indirection with a second round trip in
    /// [`IndirectionMode::Error`] fabrics.
    pub fn load2_auto(&mut self, ad: FarAddr, i: u64, len: u64) -> Result<Vec<u8>> {
        match self.load2(ad, i, len) {
            Err(FabricError::IndirectRemote { target, .. }) => self.complete_read(target, len),
            other => other,
        }
    }

    /// [`load0`](Self::load0) with client-side completion on remote targets.
    pub fn load0_auto(&mut self, ad: FarAddr, len: u64) -> Result<Vec<u8>> {
        match self.load0(ad, len) {
            Err(FabricError::IndirectRemote { target, .. }) => self.complete_read(target, len),
            other => other,
        }
    }

    /// [`store0`](Self::store0) with client-side completion on remote targets.
    pub fn store0_auto(&mut self, ad: FarAddr, data: &[u8]) -> Result<()> {
        match self.store0(ad, data) {
            Err(FabricError::IndirectRemote { target, .. }) => self.complete_write(target, data),
            other => other,
        }
    }

    /// [`faai`](Self::faai) with client-side completion: the pointer bump
    /// already happened atomically at the home node, so the wrapper only
    /// finishes the dereference.
    pub fn faai_auto(&mut self, ad: FarAddr, v: u64, len: u64) -> Result<(u64, Vec<u8>)> {
        match self.faai(ad, v, len) {
            Err(FabricError::IndirectRemote { target, .. }) => {
                let data = self.complete_read(target, len)?;
                Ok((target.0, data))
            }
            other => other,
        }
    }

    /// [`saai`](Self::saai) with client-side completion (see
    /// [`faai_auto`](Self::faai_auto)).
    pub fn saai_auto(&mut self, ad: FarAddr, v: u64, data: &[u8]) -> Result<u64> {
        match self.saai(ad, v, data) {
            Err(FabricError::IndirectRemote { target, .. }) => {
                self.complete_write(target, data)?;
                Ok(target.0)
            }
            other => other,
        }
    }

    /// [`add2`](Self::add2) with client-side completion via a far
    /// fetch-and-add at the resolved target.
    pub fn add2_auto(&mut self, ad: FarAddr, v: u64, i: u64) -> Result<()> {
        match self.add2(ad, v, i) {
            Err(FabricError::IndirectRemote { target, .. }) => {
                self.stats_mut().reissues += 1;
                self.faa(target, v).map(|_| ())
            }
            other => other,
        }
    }

    /// Resolves where an indirection through `ad` (+`i`) would land,
    /// without touching the target: used by tests and placement audits.
    pub fn peek_indirect(&mut self, ad: FarAddr, i: u64) -> Result<(FarAddr, NodeId)> {
        let ptr = self.read_u64(ad)?;
        if ptr == 0 {
            return Err(FabricError::NullDeref { pointer_at: ad });
        }
        let target = FarAddr(ptr + i);
        Ok((target, self.fabric().map().node_of(target)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Striping;
    use crate::fabric::FabricConfig;

    fn client() -> FabricClient {
        FabricConfig::count_only(1 << 20).build().client()
    }

    #[test]
    fn load0_store0_follow_pointer_in_one_access() {
        let mut c = client();
        let ptr_at = FarAddr(64);
        let data_at = FarAddr(4096);
        c.write_u64(ptr_at, data_at.0).unwrap();
        let before = c.stats();
        c.store0(ptr_at, &7u64.to_le_bytes()).unwrap();
        assert_eq!(c.load0(ptr_at, 8).unwrap(), 7u64.to_le_bytes());
        let d = c.stats().since(&before);
        assert_eq!(d.round_trips, 2, "each indirect verb is one far access");
        assert_eq!(c.read_u64(data_at).unwrap(), 7);
    }

    #[test]
    fn load1_indexes_the_pointer_array() {
        let mut c = client();
        let table = FarAddr(64);
        c.write_u64(table, 4096).unwrap();
        c.write_u64(table.offset(8), 8192).unwrap();
        c.write_u64(FarAddr(4096), 1).unwrap();
        c.write_u64(FarAddr(8192), 2).unwrap();
        assert_eq!(c.load1(table, 0, 8).unwrap(), 1u64.to_le_bytes());
        assert_eq!(c.load1(table, 8, 8).unwrap(), 2u64.to_le_bytes());
    }

    #[test]
    fn load2_indexes_the_target() {
        let mut c = client();
        let ptr_at = FarAddr(64);
        c.write_u64(ptr_at, 4096).unwrap();
        c.write_u64(FarAddr(4096 + 24), 99).unwrap();
        assert_eq!(c.load2(ptr_at, 24, 8).unwrap(), 99u64.to_le_bytes());
        c.store2(ptr_at, 32, &5u64.to_le_bytes()).unwrap();
        assert_eq!(c.read_u64(FarAddr(4096 + 32)).unwrap(), 5);
    }

    #[test]
    fn faai_returns_old_target_and_bumps_pointer() {
        let mut c = client();
        let head = FarAddr(64);
        c.write_u64(head, 4096).unwrap();
        c.write_u64(FarAddr(4096), 41).unwrap();
        c.write_u64(FarAddr(4104), 42).unwrap();
        let before = c.stats();
        let (old, data) = c.faai(head, 8, 8).unwrap();
        assert_eq!(old, 4096);
        assert_eq!(data, 41u64.to_le_bytes());
        assert_eq!(c.stats().since(&before).round_trips, 1);
        assert_eq!(c.read_u64(head).unwrap(), 4104);
        assert_eq!(c.faai(head, 8, 8).unwrap().1, 42u64.to_le_bytes());
    }

    #[test]
    fn saai_stores_at_old_target() {
        let mut c = client();
        let tail = FarAddr(64);
        c.write_u64(tail, 4096).unwrap();
        assert_eq!(c.saai(tail, 8, &10u64.to_le_bytes()).unwrap(), 4096);
        c.saai(tail, 8, &11u64.to_le_bytes()).unwrap();
        assert_eq!(c.read_u64(FarAddr(4096)).unwrap(), 10);
        assert_eq!(c.read_u64(FarAddr(4104)).unwrap(), 11);
        assert_eq!(c.read_u64(tail).unwrap(), 4112);
    }

    #[test]
    fn guarded_faai_respects_the_guard() {
        let mut c = client();
        let head = FarAddr(64);
        let guard = FarAddr(72);
        c.write_u64(head, 4096).unwrap();
        c.write_u64(guard, 2).unwrap();
        c.write_u64(FarAddr(4096), 55).unwrap();
        let (old, data) = c.faai_guarded(head, 8, 8, guard, 2).unwrap();
        assert_eq!(old, 4096);
        assert_eq!(data, 55u64.to_le_bytes());
        // Guard moved: the op is rejected and performs nothing.
        c.write_u64(guard, 3).unwrap();
        assert!(matches!(
            c.faai_guarded(head, 8, 8, guard, 2),
            Err(FabricError::GuardMismatch { observed: 3 })
        ));
        assert_eq!(c.read_u64(head).unwrap(), 4104, "pointer not bumped again");
    }

    #[test]
    fn faai_swap_consumes_the_slot_atomically() {
        let mut c = client();
        let head = FarAddr(64);
        c.write_u64(head, 4096).unwrap();
        c.write_u64(FarAddr(4096), 41).unwrap();
        let before = c.stats();
        let (old_ptr, item) = c.faai_swap(head, 8, 0).unwrap();
        let d = c.stats().since(&before);
        assert_eq!((old_ptr, item), (4096, 41));
        assert_eq!(d.round_trips, 1);
        assert_eq!(d.posted_messages, 0, "no separate zeroing write");
        assert_eq!(c.read_u64(FarAddr(4096)).unwrap(), 0, "slot cleared in the verb");
        assert_eq!(c.read_u64(head).unwrap(), 4104);
    }

    #[test]
    fn guarded_saai_respects_the_guard() {
        let mut c = client();
        let tail = FarAddr(64);
        let guard = FarAddr(72);
        c.write_u64(tail, 4096).unwrap();
        assert_eq!(c.saai_guarded(tail, 8, &9u64.to_le_bytes(), guard, 0).unwrap(), 4096);
        c.write_u64(guard, 1).unwrap();
        assert!(c.saai_guarded(tail, 8, &10u64.to_le_bytes(), guard, 0).is_err());
        assert_eq!(c.read_u64(FarAddr(4104)).unwrap(), 0, "store suppressed");
    }

    #[test]
    fn add_family_increments_through_pointers() {
        let mut c = client();
        let base = FarAddr(64);
        c.write_u64(base, 4096).unwrap();
        c.write_u64(base.offset(8), 8192).unwrap();
        c.add0(base, 5).unwrap();
        assert_eq!(c.read_u64(FarAddr(4096)).unwrap(), 5);
        c.add1(base, 3, 8).unwrap();
        assert_eq!(c.read_u64(FarAddr(8192)).unwrap(), 3);
        c.add2(base, 2, 16).unwrap();
        assert_eq!(c.read_u64(FarAddr(4096 + 16)).unwrap(), 2);
    }

    #[test]
    fn null_pointer_dereference_is_an_error() {
        let mut c = client();
        assert!(matches!(
            c.load0(FarAddr(64), 8),
            Err(FabricError::NullDeref { .. })
        ));
    }

    fn two_node_fabric(mode: IndirectionMode) -> std::sync::Arc<crate::fabric::Fabric> {
        FabricConfig {
            nodes: 2,
            node_capacity: 1 << 20,
            striping: Striping::Blocked,
            indirection: mode,
            cost: crate::cost::CostModel::COUNT_ONLY,
            ..FabricConfig::default()
        }
        .build()
    }

    #[test]
    fn remote_indirection_forwards_with_memory_side_hop() {
        let f = two_node_fabric(IndirectionMode::Forward);
        let mut c = f.client();
        // Pointer on node 0, target on node 1.
        let ptr_at = FarAddr(64);
        let target = FarAddr((1 << 20) + 4096);
        c.write_u64(ptr_at, target.0).unwrap();
        let before = c.stats();
        c.store0(ptr_at, &9u64.to_le_bytes()).unwrap();
        let d = c.stats().since(&before);
        assert_eq!(d.round_trips, 1, "forwarding keeps it one client RT");
        assert_eq!(d.forward_hops, 1);
        assert_eq!(c.read_u64(target).unwrap(), 9);
    }

    #[test]
    fn remote_indirection_errors_and_auto_reissues() {
        let f = two_node_fabric(IndirectionMode::Error);
        let mut c = f.client();
        let ptr_at = FarAddr(64);
        let target = FarAddr((1 << 20) + 4096);
        c.write_u64(ptr_at, target.0).unwrap();
        c.write_u64(target, 33).unwrap();
        assert!(matches!(
            c.load0(ptr_at, 8),
            Err(FabricError::IndirectRemote { .. })
        ));
        let before = c.stats();
        assert_eq!(c.load0_auto(ptr_at, 8).unwrap(), 33u64.to_le_bytes());
        let d = c.stats().since(&before);
        assert_eq!(d.round_trips, 2, "error mode costs two client RTs");
        assert_eq!(d.reissues, 1);
    }

    #[test]
    fn local_indirection_in_error_mode_still_one_rt() {
        let f = two_node_fabric(IndirectionMode::Error);
        let mut c = f.client();
        let ptr_at = FarAddr(64);
        c.write_u64(ptr_at, 4096).unwrap();
        c.write_u64(FarAddr(4096), 5).unwrap();
        let before = c.stats();
        assert_eq!(c.load0_auto(ptr_at, 8).unwrap(), 5u64.to_le_bytes());
        assert_eq!(c.stats().since(&before).round_trips, 1);
    }

    #[test]
    fn indirect_stores_fire_notifications_at_target() {
        let f = FabricConfig::single_node(1 << 20).build();
        let mut writer = f.client();
        let mut watcher = f.client();
        writer.write_u64(FarAddr(64), 4096).unwrap();
        watcher.notify0(FarAddr(4096), 8).unwrap();
        writer.store0(FarAddr(64), &1u64.to_le_bytes()).unwrap();
        assert_eq!(watcher.recv_events().len(), 1);
    }
}
