//! Scatter-gather verbs (Fig. 1, §4.2).
//!
//! Scatter and gather let clients operate on disjoint buffers in one
//! operation, without explicit management by application or system
//! software. Four variants exist depending on (a) read vs write and
//! (b) whether the disjoint buffers live at the client or in far memory:
//!
//! * [`rscatter`](FabricClient::rscatter) — read a far *range*, scatter it
//!   into local disjoint buffers;
//! * [`rgather`](FabricClient::rgather) — read a far *iovec* (disjoint far
//!   buffers), gather into one local range;
//! * [`wscatter`](FabricClient::wscatter) — write a far *iovec* from one
//!   local range;
//! * [`wgather`](FabricClient::wgather) — write a far *range* by gathering
//!   local disjoint buffers.
//!
//! Where the disjoint side is in far memory, the client-side adapter
//! issues the per-buffer messages *concurrently* (§4.2), so the whole verb
//! costs one dependent round trip; each far buffer is still a separate
//! fabric message, and all messages and bytes are accounted.

use crate::addr::FarAddr;
use crate::client::FabricClient;
use crate::error::{FabricError, Result};
use crate::trace::VerbKind;

/// One entry of a far-memory iovec: a disjoint far buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FarIov {
    /// Start of the buffer.
    pub addr: FarAddr,
    /// Length in bytes.
    pub len: u64,
}

impl FarIov {
    /// Convenience constructor.
    pub fn new(addr: FarAddr, len: u64) -> FarIov {
        FarIov { addr, len }
    }
}

fn check_iov(iov: &[FarIov]) -> Result<u64> {
    if iov.is_empty() {
        return Err(FabricError::BadIovec { reason: "iovec must be non-empty" });
    }
    let mut total = 0u64;
    for e in iov {
        if e.len == 0 {
            return Err(FabricError::BadIovec { reason: "iovec entries must be non-empty" });
        }
        total += e.len;
    }
    Ok(total)
}

impl FabricClient {
    /// `rscatter(ad, ℓ, iovec)`: read the far range `[ad, ad+ℓ)` and
    /// scatter it into the local buffers `into` (whose total length must
    /// equal `ℓ`). One far access.
    pub fn rscatter(&mut self, ad: FarAddr, into: &mut [&mut [u8]]) -> Result<()> {
        if into.is_empty() {
            return Err(FabricError::BadIovec { reason: "iovec must be non-empty" });
        }
        let total: u64 = into.iter().map(|b| b.len() as u64).sum();
        let data = self.traced(VerbKind::ScatterGather, |c| {
            c.retrying(|c| {
                c.begin_attempt()?;
                let arrival = c.arrival();
                let (data, finish) = c.exec_read(ad, total, arrival)?;
                c.finish_rt(finish);
                Ok(data)
            })
        })?;
        let mut done = 0usize;
        for buf in into.iter_mut() {
            buf.copy_from_slice(&data[done..done + buf.len()]);
            done += buf.len();
        }
        Ok(())
    }

    /// `rgather(iovec, ad, ℓ)`: read the disjoint far buffers of `iov` and
    /// gather them into one local buffer, returned in iovec order. The
    /// per-buffer messages are issued concurrently: one far access.
    pub fn rgather(&mut self, iov: &[FarIov]) -> Result<Vec<u8>> {
        let total = check_iov(iov)?;
        self.traced(VerbKind::ScatterGather, |c| {
            c.retrying(|c| {
                c.begin_attempt()?;
                let arrival = c.arrival();
                let mut out = Vec::with_capacity(total as usize);
                let mut finish = arrival;
                for e in iov {
                    let (part, f) = c.exec_read(e.addr, e.len, arrival)?;
                    out.extend_from_slice(&part);
                    finish = finish.max(f);
                }
                c.finish_rt(finish);
                Ok(out)
            })
        })
    }

    /// `wscatter(ad, ℓ, iovec)`: scatter one local range `src` across the
    /// disjoint far buffers of `iov` (total iovec length must equal
    /// `src.len()`). One far access.
    pub fn wscatter(&mut self, iov: &[FarIov], src: &[u8]) -> Result<()> {
        let total = check_iov(iov)?;
        if total != src.len() as u64 {
            return Err(FabricError::BadIovec {
                reason: "iovec total length must equal the source length",
            });
        }
        self.traced(VerbKind::ScatterGather, |c| {
            c.retrying(|c| {
                c.begin_attempt()?;
                let arrival = c.arrival();
                let mut finish = arrival;
                let mut done = 0usize;
                for e in iov {
                    let f = c.exec_write(e.addr, &src[done..done + e.len as usize], arrival)?;
                    done += e.len as usize;
                    finish = finish.max(f);
                }
                c.finish_rt(finish);
                Ok(())
            })
        })
    }

    /// `wgather(iovec, ad, ℓ)`: gather local disjoint buffers `from` into
    /// the far range starting at `ad`. One far access (single message when
    /// the range maps to one node).
    pub fn wgather(&mut self, ad: FarAddr, from: &[&[u8]]) -> Result<()> {
        if from.is_empty() {
            return Err(FabricError::BadIovec { reason: "iovec must be non-empty" });
        }
        let mut data = Vec::with_capacity(from.iter().map(|b| b.len()).sum());
        for b in from {
            data.extend_from_slice(b);
        }
        self.traced(VerbKind::ScatterGather, |c| {
            c.retrying(|c| {
                c.begin_attempt()?;
                let arrival = c.arrival();
                let finish = c.exec_write(ad, &data, arrival)?;
                c.finish_rt(finish);
                Ok(())
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;

    fn client() -> FabricClient {
        FabricConfig::count_only(1 << 20).build().client()
    }

    #[test]
    fn rscatter_splits_a_far_range() {
        let mut c = client();
        let data: Vec<u8> = (0..32).collect();
        c.write(FarAddr(4096), &data).unwrap();
        let mut a = [0u8; 8];
        let mut b = [0u8; 24];
        let before = c.stats();
        c.rscatter(FarAddr(4096), &mut [&mut a, &mut b]).unwrap();
        assert_eq!(c.stats().since(&before).round_trips, 1);
        assert_eq!(&a, &data[..8]);
        assert_eq!(&b, &data[8..]);
    }

    #[test]
    fn rgather_reads_disjoint_far_buffers_in_one_rt() {
        let mut c = client();
        c.write_u64(FarAddr(4096), 1).unwrap();
        c.write_u64(FarAddr(8192), 2).unwrap();
        c.write_u64(FarAddr(12288), 3).unwrap();
        let before = c.stats();
        let got = c
            .rgather(&[
                FarIov::new(FarAddr(4096), 8),
                FarIov::new(FarAddr(8192), 8),
                FarIov::new(FarAddr(12288), 8),
            ])
            .unwrap();
        let d = c.stats().since(&before);
        assert_eq!(d.round_trips, 1, "concurrent gather is one far access");
        assert_eq!(d.messages, 3, "but three fabric messages");
        assert_eq!(got.len(), 24);
        assert_eq!(u64::from_le_bytes(got[0..8].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(got[16..24].try_into().unwrap()), 3);
    }

    #[test]
    fn wscatter_writes_disjoint_far_buffers_in_one_rt() {
        let mut c = client();
        let mut src = Vec::new();
        src.extend_from_slice(&7u64.to_le_bytes());
        src.extend_from_slice(&8u64.to_le_bytes());
        let before = c.stats();
        c.wscatter(
            &[FarIov::new(FarAddr(4096), 8), FarIov::new(FarAddr(8192), 8)],
            &src,
        )
        .unwrap();
        assert_eq!(c.stats().since(&before).round_trips, 1);
        assert_eq!(c.read_u64(FarAddr(4096)).unwrap(), 7);
        assert_eq!(c.read_u64(FarAddr(8192)).unwrap(), 8);
    }

    #[test]
    fn wgather_concatenates_local_buffers() {
        let mut c = client();
        c.wgather(FarAddr(4096), &[&1u64.to_le_bytes(), &2u64.to_le_bytes()])
            .unwrap();
        assert_eq!(c.read_u64(FarAddr(4096)).unwrap(), 1);
        assert_eq!(c.read_u64(FarAddr(4104)).unwrap(), 2);
    }

    #[test]
    fn empty_and_mismatched_iovecs_rejected() {
        let mut c = client();
        assert!(c.rgather(&[]).is_err());
        assert!(c.wscatter(&[FarIov::new(FarAddr(4096), 8)], &[0u8; 4]).is_err());
        assert!(c
            .rgather(&[FarIov::new(FarAddr(4096), 0)])
            .is_err());
    }

    #[test]
    fn emulation_costs_k_round_trips_by_contrast() {
        // The same three reads issued dependently cost three far accesses;
        // this is exactly what rgather saves (E1).
        let mut c = client();
        let before = c.stats();
        for addr in [4096u64, 8192, 12288] {
            c.read(FarAddr(addr), 8).unwrap();
        }
        assert_eq!(c.stats().since(&before).round_trips, 3);
    }
}
