//! Extended far-memory verbs (Fig. 1): the paper's proposed hardware
//! primitives, grouped by class.
//!
//! All three classes share the design constraints of §4: they are simple
//! (no loops, narrow interfaces), they make a significant difference
//! (each saves at least one far round trip over emulation), and they are
//! general-purpose (every data structure in `farmem-core` uses them).

pub mod indirect;
pub mod sg;
