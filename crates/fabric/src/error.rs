//! Error types for fabric operations.

use crate::addr::{FarAddr, NodeId};

/// Errors returned by far-memory verbs.
///
/// Every verb is fallible: real fabrics surface addressing faults and node
/// failures as completion errors rather than panics, and this library follows
/// the same discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The access touches bytes outside the provisioned far address space.
    OutOfBounds {
        /// First byte of the faulting access.
        addr: FarAddr,
        /// Length of the faulting access in bytes.
        len: u64,
    },
    /// The access required a stricter alignment than the address has.
    Unaligned {
        /// The faulting address.
        addr: FarAddr,
        /// Required alignment in bytes.
        required: u64,
    },
    /// An indirect verb dereferenced a null (zero) pointer.
    NullDeref {
        /// Location holding the null pointer.
        pointer_at: FarAddr,
    },
    /// An indirect verb resolved to memory on a different node while the
    /// fabric runs in [`IndirectionMode::Error`](crate::IndirectionMode::Error).
    ///
    /// The client must complete the indirection itself with a second
    /// round trip to `target`.
    IndirectRemote {
        /// The dereferenced pointer value.
        target: FarAddr,
        /// Node that owns `target`.
        target_node: NodeId,
    },
    /// The addressed memory node has been failed by fault injection.
    NodeFailed(NodeId),
    /// The addressed memory node has crash-stopped permanently
    /// ([`crash_permanent`](crate::node::MemoryNode::crash_permanent)): it
    /// will never serve another verb. Unlike
    /// [`NodeFailed`](FabricError::NodeFailed) this is *not* transient —
    /// the retry loop must not burn its backoff budget waiting for a node
    /// that cannot recover. With replication enabled the client fails over
    /// to the group's promoted replica instead.
    NodeLost(NodeId),
    /// The request reached a memory node that has been fenced out of its
    /// replication group: a replica was promoted and the group's
    /// configuration epoch moved past the epoch this node was deposed at.
    /// The deposed node must not serve (possibly stale) data; the client
    /// refreshes its cached group view and re-issues against the promoted
    /// primary. Not transient.
    FencedEpoch {
        /// The fenced (deposed) node.
        node: NodeId,
        /// The configuration epoch at which the node was fenced.
        epoch: u64,
    },
    /// A notification registration violated the page rules of §4.3:
    /// ranges must be word-aligned and must not cross a page boundary.
    BadSubscription {
        /// Start of the offending range.
        addr: FarAddr,
        /// Length of the offending range.
        len: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An iovec argument was empty or its total length disagreed with the
    /// contiguous side of a scatter/gather transfer.
    BadIovec {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The referenced subscription does not exist (already cancelled).
    NoSuchSubscription,
    /// A guarded verb's guard word did not hold the expected value; the
    /// operation was not performed.
    GuardMismatch {
        /// The value the guard word actually held.
        observed: u64,
    },
    /// The request was dropped by a transient fabric fault before the node
    /// executed it (injected by a [`FaultPlan`](crate::fault::FaultPlan)).
    /// Retry-safe: no side effect happened.
    Transient,
    /// The request timed out before the node executed it. Like
    /// [`Transient`](FabricError::Transient) but the client burned the
    /// plan's timeout budget of virtual time first. Retry-safe.
    Timeout,
    /// A fenced batch was interrupted by a node failure *after* one or
    /// more of its side-effecting verbs had already executed. Never
    /// classified transient: blindly re-issuing the batch would apply
    /// those verbs twice (duplicating FAAs, mis-reporting an
    /// already-won CAS as failed). The caller must recover at its own
    /// level, knowing the batch's prefix may have been applied.
    BatchTorn {
        /// The node whose failure interrupted the batch.
        node: NodeId,
        /// Number of leading ops that fully executed before the failure.
        executed: usize,
    },
    /// A pipelined doorbell completed only partially: one or more
    /// descriptors ultimately failed (non-transiently, or after
    /// exhausting their per-descriptor retry budget) while at least one
    /// side-effecting descriptor had already executed. Never classified
    /// transient — blindly re-ringing the doorbell would re-apply the
    /// completed descriptors. Completed results remain drainable from the
    /// [`CompletionQueue`](crate::pipeline::CompletionQueue).
    PipelineTorn {
        /// Descriptors that fully completed before the failure surfaced.
        completed: usize,
        /// Descriptors that ultimately failed.
        failed: usize,
    },
}

impl FabricError {
    /// Whether a retry of the same verb may succeed.
    ///
    /// [`Transient`](FabricError::Transient) and
    /// [`Timeout`](FabricError::Timeout) faults drop the request *before*
    /// execution, so retrying is always safe.
    /// [`NodeFailed`](FabricError::NodeFailed) is also classified
    /// transient: timed crash windows
    /// ([`schedule_crash`](crate::node::MemoryNode::schedule_crash)) heal
    /// as the retry backoff advances virtual time, and a permanently failed
    /// node simply exhausts the retry budget before surfacing. Addressing
    /// and validation errors are deterministic and never retried, and
    /// [`BatchTorn`](FabricError::BatchTorn) is deliberately
    /// non-transient: a torn batch already applied side effects that a
    /// blind retry would duplicate.
    ///
    /// [`NodeLost`](FabricError::NodeLost) and
    /// [`FencedEpoch`](FabricError::FencedEpoch) are *not* transient
    /// either: a crash-stopped node never heals and a fenced node never
    /// serves again, so backing off at the same node is wasted budget.
    /// The retry loop handles both specially — failover to a promoted
    /// replica, or a group-view refresh — instead of blind re-issue.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FabricError::Transient | FabricError::Timeout | FabricError::NodeFailed(_)
        )
    }
}

impl core::fmt::Display for FabricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FabricError::OutOfBounds { addr, len } => {
                write!(f, "access [{addr:?} +{len}) outside far address space")
            }
            FabricError::Unaligned { addr, required } => {
                write!(f, "address {addr:?} not aligned to {required} bytes")
            }
            FabricError::NullDeref { pointer_at } => {
                write!(f, "indirect verb dereferenced null pointer at {pointer_at:?}")
            }
            FabricError::IndirectRemote { target, target_node } => {
                write!(
                    f,
                    "indirection target {target:?} lives on remote node {target_node:?}"
                )
            }
            FabricError::NodeFailed(n) => write!(f, "memory node {n:?} has failed"),
            FabricError::NodeLost(n) => {
                write!(f, "memory node {n:?} has crash-stopped permanently")
            }
            FabricError::FencedEpoch { node, epoch } => {
                write!(f, "memory node {node:?} fenced at configuration epoch {epoch}")
            }
            FabricError::BadSubscription { addr, len, reason } => {
                write!(f, "bad subscription [{addr:?} +{len}): {reason}")
            }
            FabricError::BadIovec { reason } => write!(f, "bad iovec: {reason}"),
            FabricError::NoSuchSubscription => write!(f, "no such subscription"),
            FabricError::GuardMismatch { observed } => {
                write!(f, "guard word mismatch (observed {observed})")
            }
            FabricError::Transient => write!(f, "transient fabric fault (request dropped)"),
            FabricError::Timeout => write!(f, "fabric request timed out"),
            FabricError::BatchTorn { node, executed } => write!(
                f,
                "node {node:?} failed mid-batch after {executed} ops executed (not retried)"
            ),
            FabricError::PipelineTorn { completed, failed } => write!(
                f,
                "pipeline torn: {completed} descriptors completed, {failed} failed (not retried)"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// Convenience alias used throughout the fabric crate.
pub type Result<T> = core::result::Result<T, FabricError>;
