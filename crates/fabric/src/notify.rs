//! Notifications: callbacks triggered when far memory changes (§4.3).
//!
//! A notification lets a client learn that a location changed without
//! continuously probing far memory — probing is exactly what is expensive
//! there. Three primitive kinds are provided, following Fig. 1:
//!
//! * `notify0(ad, ℓ)` — signal any change in `[ad, ad+ℓ)`;
//! * `notifye(ad, v)` — signal when the word at `ad` becomes equal to `v`;
//! * `notify0d(ad, ℓ)` — signal a change and return the changed data.
//!
//! For ease of hardware implementation, ranges must be word-aligned and
//! must not cross page boundaries, so each subscription can be recorded
//! against a single page (e.g. in a page-table entry at the memory node).
//!
//! Delivery is governed by a [`DeliveryPolicy`]: notifications may be
//! coalesced (temporal batching), dropped silently with a configured
//! probability (best-effort fabrics), or dropped under queue-overflow
//! spikes — in which case the subscriber receives an explicit
//! [`Event::Lost`] warning it must handle (§7.2).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::addr::{FarAddr, PAGE, WORD};
use crate::error::{FabricError, Result};

/// Globally unique identifier of one subscription.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SubId(pub u64);

static NEXT_SUB_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_sub_id() -> SubId {
    SubId(NEXT_SUB_ID.fetch_add(1, Ordering::Relaxed))
}

/// What condition a subscription watches for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubKind {
    /// Any change in the subscribed range (`notify0`).
    Changed,
    /// The watched word becomes equal to `value` (`notifye`).
    Equal {
        /// Value that triggers the notification.
        value: u64,
    },
    /// Any change, with the changed data carried in the event (`notify0d`).
    ChangedData,
}

/// An event delivered to a subscriber.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The subscribed range changed (`notify0`).
    Changed {
        /// Subscription that fired.
        sub: SubId,
        /// Start of the subscribed range.
        addr: FarAddr,
        /// Length of the subscribed range.
        len: u64,
        /// The triggering write `[addr, addr+len)`, if the fabric is
        /// configured to carry trigger information (§7.2 lets a software
        /// layer disambiguate coarsened subscriptions with it).
        trigger: Option<(FarAddr, u64)>,
        /// Virtual time at which the event left the memory node.
        fired_at_ns: u64,
    },
    /// The watched word became equal to the subscribed value (`notifye`).
    Equal {
        /// Subscription that fired.
        sub: SubId,
        /// Address of the watched word.
        addr: FarAddr,
        /// The matched value.
        value: u64,
        /// Virtual time at which the event left the memory node.
        fired_at_ns: u64,
    },
    /// The subscribed range changed and its current contents are attached
    /// (`notify0d`); useful when data is small.
    ChangedData {
        /// Subscription that fired.
        sub: SubId,
        /// Start of the subscribed range.
        addr: FarAddr,
        /// Contents of the subscribed range after the triggering write.
        data: Vec<u8>,
        /// Virtual time at which the event left the memory node.
        fired_at_ns: u64,
    },
    /// Warning: `count` notifications were dropped since the last drain
    /// because of a traffic spike. The data-structure algorithm must adapt
    /// (e.g. fall back to version polling) per its consistency goals (§7.2).
    Lost {
        /// Number of suppressed events.
        count: u64,
    },
}

impl Event {
    /// Subscription this event belongs to, if any (`Lost` has none).
    pub fn sub(&self) -> Option<SubId> {
        match self {
            Event::Changed { sub, .. }
            | Event::Equal { sub, .. }
            | Event::ChangedData { sub, .. } => Some(*sub),
            Event::Lost { .. } => None,
        }
    }

    /// Virtual time the event left the memory node (0 for `Lost`).
    pub fn fired_at_ns(&self) -> u64 {
        match self {
            Event::Changed { fired_at_ns, .. }
            | Event::Equal { fired_at_ns, .. }
            | Event::ChangedData { fired_at_ns, .. } => *fired_at_ns,
            Event::Lost { .. } => 0,
        }
    }
}

/// How the fabric delivers notifications to one subscriber queue.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryPolicy {
    /// Probability (in millionths) that any single event is silently
    /// dropped, modelling an unreliable best-effort fabric. `0` = reliable.
    pub drop_ppm: u32,
    /// Coalesce repeated events for the same subscription while one is
    /// still pending in the queue (temporal batching, §7.2).
    pub coalesce: bool,
    /// Maximum pending events per subscriber queue; beyond it events are
    /// dropped and surfaced as an [`Event::Lost`] warning (§7.2 spikes).
    pub max_queue: usize,
}

impl DeliveryPolicy {
    /// Reliable, uncoalesced delivery with a generous queue.
    pub const RELIABLE: DeliveryPolicy = DeliveryPolicy {
        drop_ppm: 0,
        coalesce: false,
        max_queue: 1 << 20,
    };

    /// Reliable delivery with coalescing — the recommended default.
    pub const COALESCING: DeliveryPolicy = DeliveryPolicy {
        drop_ppm: 0,
        coalesce: true,
        max_queue: 1 << 20,
    };
}

impl Default for DeliveryPolicy {
    fn default() -> Self {
        DeliveryPolicy::COALESCING
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum QKey {
    /// Coalescible events keyed by subscription.
    Sub(u64),
    /// Unique events (never coalesced).
    Seq(u64),
}

#[derive(Default)]
struct SinkInner {
    order: VecDeque<QKey>,
    map: HashMap<QKey, Event>,
    seq: u64,
    /// Events suppressed by queue overflow since the last drain; reported
    /// as one `Lost` warning.
    spike_dropped: u64,
    /// Events silently dropped by best-effort delivery (never reported to
    /// the subscriber, visible only to experiment harnesses).
    silent_dropped: u64,
    coalesced: u64,
    delivered: u64,
    rng: u64,
}

impl SinkInner {
    fn next_rng(&mut self) -> u64 {
        // Xorshift64*: deterministic per-sink pseudo-randomness for
        // best-effort drops; seeded at sink creation.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Counters describing one sink's delivery history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Events handed to the subscriber (excluding `Lost` warnings).
    pub delivered: u64,
    /// Events merged into an already-pending event.
    pub coalesced: u64,
    /// Events dropped by queue-overflow spikes (warned about).
    pub spike_dropped: u64,
    /// Events dropped silently by best-effort delivery.
    pub silent_dropped: u64,
}

/// A subscriber-side notification queue.
///
/// One sink is shared by all subscriptions a client (or broker) registers;
/// events from all of them are interleaved in delivery order.
pub struct EventSink {
    inner: Mutex<SinkInner>,
    cv: Condvar,
    policy: DeliveryPolicy,
}

impl EventSink {
    /// Creates a sink with the given delivery policy and drop seed.
    pub fn new(policy: DeliveryPolicy, seed: u64) -> Arc<EventSink> {
        Arc::new(EventSink {
            inner: Mutex::new(SinkInner {
                rng: seed | 1,
                ..SinkInner::default()
            }),
            cv: Condvar::new(),
            policy,
        })
    }

    /// Enqueues an event subject to the sink's delivery policy.
    pub(crate) fn deliver(&self, event: Event) {
        let mut g = self.inner.lock().unwrap();
        if self.policy.drop_ppm > 0 {
            let roll = g.next_rng() % 1_000_000;
            if roll < self.policy.drop_ppm as u64 {
                g.silent_dropped += 1;
                return;
            }
        }
        let key = match (self.policy.coalesce, event.sub()) {
            (true, Some(sub)) => QKey::Sub(sub.0),
            _ => {
                g.seq += 1;
                QKey::Seq(g.seq)
            }
        };
        if let QKey::Sub(_) = key {
            if let Some(slot) = g.map.get_mut(&key) {
                // Merge into the pending event: the subscriber sees a
                // single, fresh event. `Changed` triggers are merged to
                // their bounding box so no change information is lost —
                // a wider trigger is a (conservative) false positive, not
                // a miss.
                match (&mut *slot, event) {
                    (
                        Event::Changed { trigger: old_t, fired_at_ns: old_f, .. },
                        Event::Changed { trigger: new_t, fired_at_ns: new_f, .. },
                    ) => {
                        *old_t = match (*old_t, new_t) {
                            (Some((a1, l1)), Some((a2, l2))) => {
                                let start = a1.0.min(a2.0);
                                let end = (a1.0 + l1).max(a2.0 + l2);
                                Some((FarAddr(start), end - start))
                            }
                            // Unknown trigger on either side: unknown.
                            _ => None,
                        };
                        *old_f = (*old_f).max(new_f);
                    }
                    (slot, event) => *slot = event,
                }
                g.coalesced += 1;
                self.cv.notify_all();
                return;
            }
        }
        if g.order.len() >= self.policy.max_queue {
            g.spike_dropped += 1;
            self.cv.notify_all();
            return;
        }
        g.order.push_back(key);
        g.map.insert(key, event);
        g.delivered += 1;
        self.cv.notify_all();
    }

    /// Removes and returns the oldest pending event, if any.
    ///
    /// If events were dropped by a spike since the last call, an
    /// [`Event::Lost`] warning is returned first.
    pub fn try_recv(&self) -> Option<Event> {
        let mut g = self.inner.lock().unwrap();
        if g.spike_dropped > 0 {
            let count = g.spike_dropped;
            g.spike_dropped = 0;
            return Some(Event::Lost { count });
        }
        let key = g.order.pop_front()?;
        g.map.remove(&key)
    }

    /// Drains all currently pending events (with a leading `Lost` warning
    /// if applicable).
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = self.try_recv() {
            out.push(e);
        }
        out
    }

    /// Blocks the calling OS thread until an event is available, up to
    /// `timeout`. Intended for threaded tests and examples; experiment
    /// drivers use [`EventSink::try_recv`] with virtual time instead.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Event> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(e) = self.try_recv() {
                return Some(e);
            }
            let g = self.inner.lock().unwrap();
            if !g.order.is_empty() || g.spike_dropped > 0 {
                continue;
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
            else {
                drop(g);
                return self.try_recv();
            };
            let (g, timed_out) = self.cv.wait_timeout(g, remaining).unwrap();
            if timed_out.timed_out() {
                drop(g);
                return self.try_recv();
            }
        }
    }

    /// Blocks the calling OS thread until at least one event is pending,
    /// without consuming it; returns `false` on timeout. Lets waiters park
    /// and then drain through their client (which keeps the notification
    /// accounting in one place).
    pub fn wait_pending(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap();
        loop {
            if !g.order.is_empty() || g.spike_dropped > 0 {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
            else {
                return false;
            };
            let (guard, timed_out) = self.cv.wait_timeout(g, remaining).unwrap();
            g = guard;
            if timed_out.timed_out() {
                return !g.order.is_empty() || g.spike_dropped > 0;
            }
        }
    }

    /// Number of currently pending events.
    pub fn pending(&self) -> usize {
        let g = self.inner.lock().unwrap();
        g.order.len() + usize::from(g.spike_dropped > 0)
    }

    /// Delivery counters for this sink.
    pub fn stats(&self) -> SinkStats {
        let g = self.inner.lock().unwrap();
        SinkStats {
            delivered: g.delivered,
            coalesced: g.coalesced,
            spike_dropped: g.spike_dropped,
            silent_dropped: g.silent_dropped,
        }
    }
}

/// One registered subscription, stored at the owning memory node.
#[derive(Clone)]
pub(crate) struct Subscription {
    pub id: SubId,
    /// Node-local offset of the watched range.
    pub offset: u64,
    pub len: u64,
    /// Global address of the watched range (for event reporting).
    pub addr: FarAddr,
    pub kind: SubKind,
    pub sink: Arc<EventSink>,
}

/// Per-node registry of subscriptions, associated with pages (§4.3).
pub struct SubscriptionTable {
    pages: Mutex<HashMap<u64, Vec<Subscription>>>,
    count: AtomicUsize,
    /// Whether fired events carry the triggering write range (§7.2).
    carry_trigger: AtomicUsize,
}

impl SubscriptionTable {
    pub(crate) fn new(_capacity: u64) -> SubscriptionTable {
        SubscriptionTable {
            pages: Mutex::new(HashMap::new()),
            count: AtomicUsize::new(0),
            carry_trigger: AtomicUsize::new(1),
        }
    }

    /// Enables or disables trigger information in `Changed` events.
    pub fn set_carry_trigger(&self, on: bool) {
        self.carry_trigger.store(usize::from(on), Ordering::Relaxed);
    }

    /// Number of live subscriptions on this node.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Returns `true` if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates §4.3's range rules: word alignment, non-empty, single page.
    pub(crate) fn validate_range(addr: FarAddr, len: u64) -> Result<()> {
        if !addr.is_aligned(WORD) || !len.is_multiple_of(WORD) {
            return Err(FabricError::BadSubscription {
                addr,
                len,
                reason: "range must be word-aligned",
            });
        }
        if len == 0 {
            return Err(FabricError::BadSubscription {
                addr,
                len,
                reason: "range must be non-empty",
            });
        }
        if addr.0 / PAGE != (addr.0 + len - 1) / PAGE {
            return Err(FabricError::BadSubscription {
                addr,
                len,
                reason: "range must not cross a page boundary",
            });
        }
        Ok(())
    }

    /// Registers a subscription whose range starts at node-local `offset`.
    pub(crate) fn register(
        &self,
        addr: FarAddr,
        offset: u64,
        len: u64,
        kind: SubKind,
        sink: Arc<EventSink>,
    ) -> Result<SubId> {
        Self::validate_range(addr, len)?;
        if let SubKind::Equal { .. } = kind {
            if len != WORD {
                return Err(FabricError::BadSubscription {
                    addr,
                    len,
                    reason: "equality notifications watch a single word",
                });
            }
        }
        let id = fresh_sub_id();
        let sub = Subscription { id, offset, len, addr, kind, sink };
        let page = offset / PAGE;
        self.pages.lock().unwrap().entry(page).or_default().push(sub);
        self.count.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Removes a subscription; returns an error if it does not exist.
    pub(crate) fn unregister(&self, id: SubId) -> Result<()> {
        let mut pages = self.pages.lock().unwrap();
        for subs in pages.values_mut() {
            if let Some(pos) = subs.iter().position(|s| s.id == id) {
                subs.remove(pos);
                self.count.fetch_sub(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        Err(FabricError::NoSuchSubscription)
    }

    /// Fires subscriptions overlapping the node-local write
    /// `[offset, offset+len)`.
    ///
    /// `read_word` and `read_range` let the table observe post-write memory
    /// for `notifye` / `notify0d` without borrowing the node.
    pub(crate) fn fire(
        &self,
        offset: u64,
        len: u64,
        fired_at_ns: u64,
        read_word: &dyn Fn(u64) -> u64,
        read_range: &dyn Fn(u64, u64) -> Vec<u8>,
    ) {
        if self.is_empty() || len == 0 {
            return;
        }
        let carry = self.carry_trigger.load(Ordering::Relaxed) != 0;
        let first_page = offset / PAGE;
        let last_page = (offset + len - 1) / PAGE;
        let pages = self.pages.lock().unwrap();
        for page in first_page..=last_page {
            let Some(subs) = pages.get(&page) else { continue };
            for s in subs {
                let overlap = offset < s.offset + s.len && s.offset < offset + len;
                if !overlap {
                    continue;
                }
                let event = match s.kind {
                    SubKind::Changed => Event::Changed {
                        sub: s.id,
                        addr: s.addr,
                        len: s.len,
                        trigger: carry.then(|| {
                            let t0 = offset.max(s.offset);
                            let t1 = (offset + len).min(s.offset + s.len);
                            (FarAddr(s.addr.0 + (t0 - s.offset)), t1 - t0)
                        }),
                        fired_at_ns,
                    },
                    SubKind::Equal { value } => {
                        if read_word(s.offset) != value {
                            continue;
                        }
                        Event::Equal {
                            sub: s.id,
                            addr: s.addr,
                            value,
                            fired_at_ns,
                        }
                    }
                    SubKind::ChangedData => Event::ChangedData {
                        sub: s.id,
                        addr: s.addr,
                        data: read_range(s.offset, s.len),
                        fired_at_ns,
                    },
                };
                s.sink.deliver(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> Arc<EventSink> {
        EventSink::new(DeliveryPolicy::RELIABLE, 42)
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        assert!(SubscriptionTable::validate_range(FarAddr(8), 8).is_ok());
        assert!(SubscriptionTable::validate_range(FarAddr(4), 8).is_err());
        assert!(SubscriptionTable::validate_range(FarAddr(8), 4).is_err());
        assert!(SubscriptionTable::validate_range(FarAddr(8), 0).is_err());
        // Crossing a page boundary is rejected.
        assert!(SubscriptionTable::validate_range(FarAddr(PAGE - 8), 16).is_err());
        // A full page starting on a boundary is fine.
        assert!(SubscriptionTable::validate_range(FarAddr(PAGE), PAGE).is_ok());
    }

    #[test]
    fn changed_fires_on_overlap_only() {
        let t = SubscriptionTable::new(1 << 16);
        let s = sink();
        t.register(FarAddr(64), 64, 16, SubKind::Changed, s.clone()).unwrap();
        t.fire(80, 8, 1, &|_| 0, &|_, _| vec![]);
        assert!(s.try_recv().is_none(), "non-overlapping write must not fire");
        t.fire(72, 8, 2, &|_| 0, &|_, _| vec![]);
        match s.try_recv().unwrap() {
            Event::Changed { addr, len, trigger, .. } => {
                assert_eq!(addr, FarAddr(64));
                assert_eq!(len, 16);
                assert_eq!(trigger, Some((FarAddr(72), 8)));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn equal_fires_only_on_match() {
        let t = SubscriptionTable::new(1 << 16);
        let s = sink();
        t.register(FarAddr(8), 8, 8, SubKind::Equal { value: 0 }, s.clone()).unwrap();
        t.fire(8, 8, 1, &|_| 7, &|_, _| vec![]);
        assert!(s.try_recv().is_none());
        t.fire(8, 8, 2, &|_| 0, &|_, _| vec![]);
        assert!(matches!(s.try_recv(), Some(Event::Equal { value: 0, .. })));
    }

    #[test]
    fn changed_data_carries_contents() {
        let t = SubscriptionTable::new(1 << 16);
        let s = sink();
        t.register(FarAddr(16), 16, 8, SubKind::ChangedData, s.clone()).unwrap();
        t.fire(16, 8, 1, &|_| 0, &|off, len| {
            assert_eq!((off, len), (16, 8));
            vec![9; 8]
        });
        assert!(matches!(
            s.try_recv(),
            Some(Event::ChangedData { data, .. }) if data == vec![9; 8]
        ));
    }

    #[test]
    fn coalescing_merges_pending_events() {
        let t = SubscriptionTable::new(1 << 16);
        let s = EventSink::new(DeliveryPolicy::COALESCING, 1);
        t.register(FarAddr(8), 8, 8, SubKind::Changed, s.clone()).unwrap();
        for i in 0..10 {
            t.fire(8, 8, i, &|_| 0, &|_, _| vec![]);
        }
        assert_eq!(s.pending(), 1);
        let stats = s.stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.coalesced, 9);
        // The pending event is the most recent one.
        assert_eq!(s.try_recv().unwrap().fired_at_ns(), 9);
    }

    #[test]
    fn spike_drop_produces_lost_warning() {
        let t = SubscriptionTable::new(1 << 16);
        let s = EventSink::new(
            DeliveryPolicy { drop_ppm: 0, coalesce: false, max_queue: 3 },
            1,
        );
        t.register(FarAddr(8), 8, 8, SubKind::Changed, s.clone()).unwrap();
        for i in 0..8 {
            t.fire(8, 8, i, &|_| 0, &|_, _| vec![]);
        }
        assert!(matches!(s.try_recv(), Some(Event::Lost { count: 5 })));
        // After the warning, the surviving events drain normally.
        assert_eq!(s.drain().len(), 3);
    }

    #[test]
    fn best_effort_drops_silently() {
        let t = SubscriptionTable::new(1 << 16);
        let s = EventSink::new(
            DeliveryPolicy { drop_ppm: 500_000, coalesce: false, max_queue: 1 << 20 },
            7,
        );
        t.register(FarAddr(8), 8, 8, SubKind::Changed, s.clone()).unwrap();
        for i in 0..1000 {
            t.fire(8, 8, i, &|_| 0, &|_, _| vec![]);
        }
        let st = s.stats();
        assert!(st.silent_dropped > 300 && st.silent_dropped < 700);
        assert_eq!(st.delivered + st.silent_dropped, 1000);
    }

    #[test]
    fn unregister_stops_events() {
        let t = SubscriptionTable::new(1 << 16);
        let s = sink();
        let id = t.register(FarAddr(8), 8, 8, SubKind::Changed, s.clone()).unwrap();
        t.unregister(id).unwrap();
        assert_eq!(t.unregister(id), Err(FabricError::NoSuchSubscription));
        t.fire(8, 8, 1, &|_| 0, &|_, _| vec![]);
        assert!(s.try_recv().is_none());
        assert!(t.is_empty());
    }
}
