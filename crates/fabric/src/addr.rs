//! Far-memory addressing: the global address space and its mapping onto
//! memory nodes.
//!
//! Large far memories comprise many memory nodes with the far address space
//! distributed across them (§7.1 of the paper). This module defines the
//! 64-bit global [`FarAddr`] space and the [`Striping`] policies that map a
//! global address to a `(node, node-local offset)` pair, mirroring
//! interleaving in traditional local memories.

use crate::error::{FabricError, Result};

/// Size of a far-memory word in bytes. Aligned word accesses are atomic;
/// larger transfers are not (they may tear), matching RDMA semantics.
pub const WORD: u64 = 8;

/// Size of a far-memory page in bytes. Notification subscriptions are
/// associated with pages (§4.3) and must not cross page boundaries.
pub const PAGE: u64 = 4096;

/// A 64-bit address in the global far-memory address space.
///
/// Address `0` is reserved as the null pointer; the fabric never allocates
/// or accepts it, so data structures can use `0` as an "empty" sentinel in
/// pointer slots.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FarAddr(pub u64);

impl FarAddr {
    /// The null far address.
    pub const NULL: FarAddr = FarAddr(0);

    /// Returns `true` if this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address advanced by `delta` bytes.
    #[inline]
    pub fn offset(self, delta: u64) -> FarAddr {
        FarAddr(self.0 + delta)
    }

    /// Returns the address advanced by a signed byte delta.
    #[inline]
    pub fn offset_signed(self, delta: i64) -> FarAddr {
        FarAddr(self.0.wrapping_add(delta as u64))
    }

    /// Returns `true` if the address is aligned to `align` bytes.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }
}

impl core::fmt::Debug for FarAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "far:{:#x}", self.0)
    }
}

/// Identifier of a memory node in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Policy mapping the global address space onto memory nodes.
///
/// `Blocked` lays the space out node by node (node 0 owns the first
/// `node_capacity` bytes, and so on); `Striped` round-robins fixed-size
/// stripes across nodes to spread bandwidth, as in interleaved local
/// memories (§7.1). Stripes are required to be multiples of [`PAGE`] so a
/// page — and therefore a notification subscription — never spans nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Striping {
    /// Contiguous per-node blocks.
    Blocked,
    /// Round-robin stripes of `stripe` bytes across all nodes.
    Striped {
        /// Stripe size in bytes; must be a positive multiple of [`PAGE`].
        stripe: u64,
    },
}

/// A contiguous run of an access on a single memory node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Owning node.
    pub node: NodeId,
    /// Node-local byte offset of the run.
    pub offset: u64,
    /// Length of the run in bytes.
    pub len: u64,
    /// Global address of the first byte of the run.
    pub addr: FarAddr,
}

/// The concrete mapping of the global address space for one fabric.
#[derive(Clone, Debug)]
pub struct AddressMap {
    nodes: u32,
    node_capacity: u64,
    striping: Striping,
}

impl AddressMap {
    /// Creates a map over `nodes` nodes of `node_capacity` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, if `node_capacity` is not a positive multiple
    /// of [`PAGE`], or if a striped policy uses a stripe that is zero or not
    /// page-aligned. These are configuration errors, not runtime conditions.
    pub fn new(nodes: u32, node_capacity: u64, striping: Striping) -> AddressMap {
        assert!(nodes > 0, "fabric needs at least one memory node");
        assert!(
            node_capacity > 0 && node_capacity.is_multiple_of(PAGE),
            "node capacity must be a positive multiple of the page size"
        );
        if let Striping::Striped { stripe } = striping {
            assert!(
                stripe > 0 && stripe % PAGE == 0,
                "stripe must be a positive multiple of the page size"
            );
            assert!(
                node_capacity.is_multiple_of(stripe),
                "node capacity must be a whole number of stripes"
            );
        }
        AddressMap { nodes, node_capacity, striping }
    }

    /// Total bytes of far memory in the fabric.
    #[inline]
    pub fn total_capacity(&self) -> u64 {
        self.node_capacity * self.nodes as u64
    }

    /// Number of memory nodes.
    #[inline]
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Per-node capacity in bytes.
    #[inline]
    pub fn node_capacity(&self) -> u64 {
        self.node_capacity
    }

    /// The striping policy in force.
    #[inline]
    pub fn striping(&self) -> Striping {
        self.striping
    }

    /// Checks that `[addr, addr+len)` lies inside the provisioned space and
    /// does not touch the reserved null page.
    pub fn check(&self, addr: FarAddr, len: u64) -> Result<()> {
        let end = addr.0.checked_add(len);
        match end {
            Some(end) if addr.0 >= WORD && end <= self.total_capacity() => Ok(()),
            _ => Err(FabricError::OutOfBounds { addr, len }),
        }
    }

    /// Maps a global address to its owning node and node-local offset.
    #[inline]
    pub fn locate(&self, addr: FarAddr) -> (NodeId, u64) {
        match self.striping {
            Striping::Blocked => {
                let node = (addr.0 / self.node_capacity) as u32;
                (NodeId(node), addr.0 % self.node_capacity)
            }
            Striping::Striped { stripe } => {
                let global_stripe = addr.0 / stripe;
                let node = (global_stripe % self.nodes as u64) as u32;
                let local_stripe = global_stripe / self.nodes as u64;
                (NodeId(node), local_stripe * stripe + addr.0 % stripe)
            }
        }
    }

    /// Node owning a global address.
    #[inline]
    pub fn node_of(&self, addr: FarAddr) -> NodeId {
        self.locate(addr).0
    }

    /// Returns the lowest global address owned by `node` at node-local
    /// offset `offset` (the inverse of [`AddressMap::locate`]).
    pub fn global_of(&self, node: NodeId, offset: u64) -> FarAddr {
        match self.striping {
            Striping::Blocked => FarAddr(node.0 as u64 * self.node_capacity + offset),
            Striping::Striped { stripe } => {
                let local_stripe = offset / stripe;
                let global_stripe = local_stripe * self.nodes as u64 + node.0 as u64;
                FarAddr(global_stripe * stripe + offset % stripe)
            }
        }
    }

    /// Splits `[addr, addr+len)` into per-node contiguous segments, in
    /// address order.
    pub fn segments(&self, addr: FarAddr, len: u64) -> Result<Vec<Segment>> {
        self.check(addr, len)?;
        let mut out = Vec::with_capacity(1);
        let mut cur = addr.0;
        let end = addr.0 + len;
        while cur < end {
            let (node, offset) = self.locate(FarAddr(cur));
            // Length until the next mapping discontinuity.
            let run = match self.striping {
                Striping::Blocked => self.node_capacity - cur % self.node_capacity,
                Striping::Striped { stripe } => stripe - cur % stripe,
            };
            let take = run.min(end - cur);
            out.push(Segment { node, offset, len: take, addr: FarAddr(cur) });
            cur += take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_locate_round_trips() {
        let m = AddressMap::new(4, 1 << 20, Striping::Blocked);
        for &a in &[8u64, 4096, (1 << 20) + 16, 3 * (1 << 20) + 4088] {
            let (n, off) = m.locate(FarAddr(a));
            assert_eq!(m.global_of(n, off), FarAddr(a));
        }
    }

    #[test]
    fn striped_locate_round_trips() {
        let m = AddressMap::new(3, 1 << 20, Striping::Striped { stripe: PAGE });
        for a in (8u64..3 * (1 << 20)).step_by(40961) {
            let (n, off) = m.locate(FarAddr(a));
            assert_eq!(m.global_of(n, off), FarAddr(a), "addr {a}");
        }
    }

    #[test]
    fn striped_round_robins_pages() {
        let m = AddressMap::new(4, 1 << 20, Striping::Striped { stripe: PAGE });
        assert_eq!(m.node_of(FarAddr(0)), NodeId(0));
        assert_eq!(m.node_of(FarAddr(PAGE)), NodeId(1));
        assert_eq!(m.node_of(FarAddr(2 * PAGE)), NodeId(2));
        assert_eq!(m.node_of(FarAddr(4 * PAGE)), NodeId(0));
    }

    #[test]
    fn segments_split_on_stripe_boundaries() {
        let m = AddressMap::new(2, 1 << 20, Striping::Striped { stripe: PAGE });
        let segs = m.segments(FarAddr(PAGE - 16), 32).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].node, NodeId(0));
        assert_eq!(segs[0].len, 16);
        assert_eq!(segs[1].node, NodeId(1));
        assert_eq!(segs[1].len, 16);
        assert_eq!(segs[1].offset, 0);
    }

    #[test]
    fn segments_blocked_stays_single() {
        let m = AddressMap::new(2, 1 << 20, Striping::Blocked);
        let segs = m.segments(FarAddr(8), 4096).unwrap();
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn null_page_and_oob_rejected() {
        let m = AddressMap::new(1, 1 << 20, Striping::Blocked);
        assert!(m.check(FarAddr(0), 8).is_err());
        assert!(m.check(FarAddr(1 << 20), 1).is_err());
        assert!(m.check(FarAddr((1 << 20) - 8), 8).is_ok());
        assert!(m.check(FarAddr(u64::MAX), 16).is_err());
    }
}
