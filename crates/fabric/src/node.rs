//! A memory node: the passive, word-granular storage end of the fabric.
//!
//! Far memory has no explicit owner among application processors (§2):
//! nodes execute loads, stores and fabric-level atomics without any local
//! application CPU. Word-aligned 8-byte accesses are atomic; larger
//! transfers copy word by word and may observe tearing, exactly as one-sided
//! RDMA reads may. Data-structure code must therefore bring its own
//! version/CAS discipline — the simulator does not paper over races.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::addr::{NodeId, WORD};
use crate::error::{FabricError, Result};
use crate::notify::SubscriptionTable;

/// State of the fabric interface's virtual queue.
#[derive(Default)]
struct IfaceQueue {
    /// Pending (unserved) work, in nanoseconds of service time.
    pending_ns: u64,
    /// Latest arrival observed (drain reference point).
    last_arrival_ns: u64,
    /// Messages ever booked on this interface.
    messages: u64,
    /// Total queueing delay experienced by booked messages (time spent
    /// behind earlier work, excluding own service).
    waited_ns: u64,
    /// Worst single-message queueing delay.
    max_wait_ns: u64,
}

/// Occupancy summary of one node's fabric interface, derived from the
/// FIFO booking model of [`MemoryNode::occupy`] — which node is the
/// bottleneck, and how much of each round trip was queueing (§7
/// contention effects, surfaced by `farmem-trace`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeOccupancy {
    /// Messages booked on the interface.
    pub messages: u64,
    /// Total service time booked (utilization numerator).
    pub busy_ns: u64,
    /// Summed queueing delay across all messages.
    pub waited_ns: u64,
    /// Worst single-message queueing delay.
    pub max_wait_ns: u64,
}

impl NodeOccupancy {
    /// Mean queueing delay per message (0 when idle).
    pub fn mean_wait_ns(&self) -> u64 {
        self.waited_ns.checked_div(self.messages).unwrap_or(0)
    }
}

/// One memory node's storage plus its fabric-interface serial resource.
pub struct MemoryNode {
    id: NodeId,
    words: Vec<AtomicU64>,
    /// Work-conserving virtual queue of the node's fabric interface;
    /// models the per-node message-processing bottleneck.
    queue: Mutex<IfaceQueue>,
    /// Serializes guarded verbs against mutations of their guard words,
    /// making `guard check + fetch-add` atomic at the node (real NICs
    /// offer masked/conditional atomics with the same property).
    guard_lock: Mutex<()>,
    /// Total service time ever booked (diagnostics: utilization checks).
    busy_ns: AtomicU64,
    failed: AtomicBool,
    /// Virtual time at or after which the node is permanently crash-stopped
    /// ([`FabricError::NodeLost`]); `u64::MAX` means never. Unlike timed
    /// crash windows a lost node never recovers, so the client retry loop
    /// stops immediately instead of burning its backoff budget.
    lost_at_ns: AtomicU64,
    /// Configuration epoch at which this node was fenced out of its
    /// replication group (`u64::MAX` = not fenced). A fenced node refuses
    /// every verb with [`FabricError::FencedEpoch`]: a deposed, possibly
    /// partitioned primary must never silently serve stale data.
    fenced_epoch: AtomicU64,
    /// Virtual-time crash→recover windows scheduled by fault injection;
    /// kept off the hot path behind `has_crash_windows`.
    crash_windows: Mutex<Vec<(u64, u64)>>,
    has_crash_windows: AtomicBool,
    /// Notification subscriptions associated with this node's pages (§4.3).
    pub(crate) subs: SubscriptionTable,
}

impl MemoryNode {
    /// Creates a zero-filled node of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a positive multiple of the word size;
    /// the [`AddressMap`](crate::addr::AddressMap) constructor enforces a
    /// stricter page multiple before any node is built.
    pub fn new(id: NodeId, capacity: u64) -> MemoryNode {
        assert!(capacity > 0 && capacity.is_multiple_of(WORD));
        let mut words = Vec::with_capacity((capacity / WORD) as usize);
        words.resize_with((capacity / WORD) as usize, || AtomicU64::new(0));
        MemoryNode {
            id,
            words,
            queue: Mutex::new(IfaceQueue::default()),
            guard_lock: Mutex::new(()),
            busy_ns: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            lost_at_ns: AtomicU64::new(u64::MAX),
            fenced_epoch: AtomicU64::new(u64::MAX),
            crash_windows: Mutex::new(Vec::new()),
            has_crash_windows: AtomicBool::new(false),
            subs: SubscriptionTable::new(capacity),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.words.len() as u64 * WORD
    }

    /// Marks the node failed; all subsequent accesses return
    /// [`FabricError::NodeFailed`]. Far memory sits in its own fault domain
    /// (§2), so failing a node must not take client state with it.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
    }

    /// Clears an injected permanent failure (timed crash windows are
    /// unaffected: they clear themselves as virtual time passes them).
    pub fn recover(&self) {
        self.failed.store(false, Ordering::SeqCst);
    }

    /// Schedules a timed crash window `[from_ns, until_ns)` in virtual
    /// time: any verb whose arrival falls inside the window fails with
    /// [`FabricError::NodeFailed`], and the node is alive again at
    /// `until_ns` — the crash→recover cycle of a rebooting memory node,
    /// without the test having to call [`fail`](MemoryNode::fail) /
    /// [`recover`](MemoryNode::recover) at the right moment itself.
    pub fn schedule_crash(&self, from_ns: u64, until_ns: u64) {
        assert!(from_ns < until_ns, "empty crash window");
        self.crash_windows.lock().unwrap().push((from_ns, until_ns));
        self.has_crash_windows.store(true, Ordering::SeqCst);
    }

    /// Permanently crash-stops the node, effective immediately: every
    /// subsequent verb fails with [`FabricError::NodeLost`] and nothing
    /// ever recovers it. This is the crash-stop fault of the fenced
    /// failover protocol — contrast [`fail`](MemoryNode::fail) (clearable)
    /// and [`schedule_crash`](MemoryNode::schedule_crash) (self-healing).
    pub fn crash_permanent(&self) {
        self.lost_at_ns.store(0, Ordering::SeqCst);
    }

    /// Schedules a permanent crash-stop at virtual time `at_ns`: verbs
    /// arriving at or after `at_ns` fail with [`FabricError::NodeLost`],
    /// forever. Used by
    /// [`FaultPlan::crash_permanent`](crate::fault::FaultPlan::crash_permanent)
    /// to kill a node mid-workload deterministically.
    pub fn schedule_crash_permanent(&self, at_ns: u64) {
        self.lost_at_ns.store(at_ns, Ordering::SeqCst);
    }

    /// Whether the node is permanently crash-stopped as of `now_ns`.
    pub fn is_lost_at(&self, now_ns: u64) -> bool {
        now_ns >= self.lost_at_ns.load(Ordering::SeqCst)
    }

    /// Fences the node out of its replication group at configuration
    /// `epoch`: it refuses every verb with [`FabricError::FencedEpoch`]
    /// from now on. Called by promotion; fencing is never undone.
    pub(crate) fn fence(&self, epoch: u64) {
        self.fenced_epoch.store(epoch, Ordering::SeqCst);
    }

    /// Whether the node has been fenced out of its replication group.
    pub fn is_fenced(&self) -> bool {
        self.fenced_epoch.load(Ordering::SeqCst) != u64::MAX
    }

    /// Removes all scheduled crash windows.
    pub fn clear_crash_schedule(&self) {
        self.crash_windows.lock().unwrap().clear();
        self.has_crash_windows.store(false, Ordering::SeqCst);
    }

    /// Total service time ever booked on this node's interface.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Returns an error if the node is currently (permanently) failed.
    ///
    /// Loads `failed` with `SeqCst` to pair with the `SeqCst` stores in
    /// [`fail`](MemoryNode::fail) / [`recover`](MemoryNode::recover): a
    /// test that fails a node and then issues a verb from another thread
    /// must observe the failure immediately, with no reordering against
    /// the data words (which are themselves `SeqCst`). The previous
    /// `Relaxed` load was formally allowed to float past those accesses.
    #[inline]
    pub fn check_alive(&self) -> Result<()> {
        if self.failed.load(Ordering::SeqCst) {
            Err(FabricError::NodeFailed(self.id))
        } else {
            Ok(())
        }
    }

    /// Like [`check_alive`](MemoryNode::check_alive), but also
    /// distinguishes the *permanent* fault taxonomy and honours timed
    /// crash windows. Checked most-specific first:
    ///
    /// 1. fenced → [`FabricError::FencedEpoch`] (deposed primary; the
    ///    client must refresh its group view, not retry here);
    /// 2. permanently crash-stopped → [`FabricError::NodeLost`] (never
    ///    recovers; the client fails over instead of backing off);
    /// 3. injected failure / timed crash window →
    ///    [`FabricError::NodeFailed`] (transient: backoff heals it).
    #[inline]
    pub fn check_alive_at(&self, now_ns: u64) -> Result<()> {
        let fence = self.fenced_epoch.load(Ordering::SeqCst);
        if fence != u64::MAX {
            return Err(FabricError::FencedEpoch { node: self.id, epoch: fence });
        }
        if self.is_lost_at(now_ns) {
            return Err(FabricError::NodeLost(self.id));
        }
        self.check_alive()?;
        if self.has_crash_windows.load(Ordering::SeqCst) {
            let windows = self.crash_windows.lock().unwrap();
            if windows.iter().any(|&(from, until)| from <= now_ns && now_ns < until) {
                return Err(FabricError::NodeFailed(self.id));
            }
        }
        Ok(())
    }

    /// Occupies the node's serial fabric interface: a message arriving at
    /// virtual time `arrival_ns` that needs `service_ns` of processing
    /// waits behind the work currently queued, then is served; returns its
    /// completion time.
    ///
    /// The interface is modelled as a *work-conserving* virtual queue:
    /// pending work drains at line rate between arrivals, so a message
    /// never waits behind idle gaps or behind slots booked for the future
    /// by clients whose virtual clocks run ahead. This is how saturation
    /// emerges — under overload the pending work grows and every client
    /// queues — while an underloaded node adds no delay.
    pub fn occupy(&self, arrival_ns: u64, service_ns: u64) -> u64 {
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
        let mut q = self.queue.lock().unwrap();
        if arrival_ns > q.last_arrival_ns {
            // The interface drained for the interval since the previous
            // arrival.
            let idle = arrival_ns - q.last_arrival_ns;
            q.pending_ns = q.pending_ns.saturating_sub(idle);
            q.last_arrival_ns = arrival_ns;
        }
        let wait = q.pending_ns;
        q.pending_ns += service_ns;
        q.messages += 1;
        q.waited_ns += wait;
        q.max_wait_ns = q.max_wait_ns.max(wait);
        arrival_ns + wait + service_ns
    }

    /// Occupancy/queueing-delay summary of this node's interface.
    pub fn occupancy(&self) -> NodeOccupancy {
        let q = self.queue.lock().unwrap();
        NodeOccupancy {
            messages: q.messages,
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            waited_ns: q.waited_ns,
            max_wait_ns: q.max_wait_ns,
        }
    }

    #[inline]
    fn word_index(&self, offset: u64, align: u64) -> Result<usize> {
        if !offset.is_multiple_of(align) {
            return Err(FabricError::Unaligned {
                addr: crate::addr::FarAddr(offset),
                required: align,
            });
        }
        let idx = (offset / WORD) as usize;
        if idx >= self.words.len() {
            return Err(FabricError::OutOfBounds {
                addr: crate::addr::FarAddr(offset),
                len: WORD,
            });
        }
        Ok(idx)
    }

    /// Atomically reads the aligned word at node-local `offset`.
    pub fn read_u64(&self, offset: u64) -> Result<u64> {
        let i = self.word_index(offset, WORD)?;
        Ok(self.words[i].load(Ordering::SeqCst))
    }

    /// Atomically writes the aligned word at node-local `offset`.
    pub fn write_u64(&self, offset: u64, value: u64) -> Result<()> {
        let i = self.word_index(offset, WORD)?;
        let _g = self.guard_lock.lock().unwrap();
        self.words[i].store(value, Ordering::SeqCst);
        Ok(())
    }

    /// Fabric-level compare-and-swap on the aligned word at `offset`;
    /// returns the previous value (§2).
    pub fn cas_u64(&self, offset: u64, expected: u64, new: u64) -> Result<u64> {
        let i = self.word_index(offset, WORD)?;
        let _g = self.guard_lock.lock().unwrap();
        match self.words[i].compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(prev) => Ok(prev),
            Err(prev) => Ok(prev),
        }
    }

    /// Fabric-level fetch-and-add on the aligned word at `offset`; returns
    /// the previous value.
    pub fn faa_u64(&self, offset: u64, delta: u64) -> Result<u64> {
        let i = self.word_index(offset, WORD)?;
        let _g = self.guard_lock.lock().unwrap();
        Ok(self.words[i].fetch_add(delta, Ordering::SeqCst))
    }

    /// Atomic swap of the aligned word at `offset`; returns the previous
    /// value.
    pub fn swap_u64(&self, offset: u64, value: u64) -> Result<u64> {
        let i = self.word_index(offset, WORD)?;
        let _g = self.guard_lock.lock().unwrap();
        Ok(self.words[i].swap(value, Ordering::SeqCst))
    }

    /// Guarded fetch-and-add: atomically checks that the word at
    /// `guard_offset` equals `expect` and, only then, fetch-adds `delta`
    /// to the word at `offset`. Returns the previous value, or
    /// [`FabricError::GuardMismatch`] without performing the add.
    ///
    /// Serialized against all word mutations of this node, so no mutation
    /// of the guard word can slip between the check and the add.
    pub fn guarded_faa_u64(
        &self,
        offset: u64,
        delta: u64,
        guard_offset: u64,
        expect: u64,
    ) -> Result<u64> {
        self.guarded_verb(guard_offset, expect, |n| {
            let i = n.word_index(offset, WORD)?;
            Ok(n.words[i].fetch_add(delta, Ordering::SeqCst))
        })
    }

    /// Runs `body` atomically with respect to every word mutation of this
    /// node, after checking that the guard word equals `expect`.
    ///
    /// This is how the extended *guarded indirect* verbs execute: the
    /// guard check, the pointer bump and the (node-local) target access
    /// form one indivisible unit, so a concurrent restructure that flips
    /// the guard can never observe — or be observed by — a half-done verb.
    ///
    /// `body` must use the raw word accessors ([`MemoryNode::words_raw`])
    /// or non-locking byte transfers; calling the locking word ops from
    /// inside would deadlock.
    pub(crate) fn guarded_verb<R>(
        &self,
        guard_offset: u64,
        expect: u64,
        body: impl FnOnce(&Self) -> Result<R>,
    ) -> Result<R> {
        let g = self.word_index(guard_offset, WORD)?;
        let _lock = self.guard_lock.lock().unwrap();
        let observed = self.words[g].load(Ordering::SeqCst);
        if observed != expect {
            return Err(FabricError::GuardMismatch { observed });
        }
        body(self)
    }

    /// Raw (non-locking) access to the word array for use inside
    /// [`MemoryNode::guarded_verb`] bodies.
    pub(crate) fn words_raw(&self, offset: u64) -> Result<&AtomicU64> {
        let i = self.word_index(offset, WORD)?;
        Ok(&self.words[i])
    }

    /// Copies `buf.len()` bytes starting at node-local `offset` into `buf`.
    ///
    /// Word-by-word copy: each aligned word is read atomically, but the
    /// range as a whole is *not* a single atomic snapshot.
    pub fn read_bytes(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let len = buf.len() as u64;
        if len == 0 {
            return Ok(());
        }
        if offset + len > self.capacity() {
            return Err(FabricError::OutOfBounds {
                addr: crate::addr::FarAddr(offset),
                len,
            });
        }
        let mut done = 0u64;
        while done < len {
            let at = offset + done;
            let word_base = at / WORD * WORD;
            let in_word = (at - word_base) as usize;
            let take = ((WORD as usize - in_word) as u64).min(len - done) as usize;
            let w = self.words[(word_base / WORD) as usize].load(Ordering::SeqCst);
            let bytes = w.to_le_bytes();
            buf[done as usize..done as usize + take]
                .copy_from_slice(&bytes[in_word..in_word + take]);
            done += take as u64;
        }
        Ok(())
    }

    /// Copies `data` into the node starting at node-local `offset`.
    ///
    /// Fully covered words are stored atomically; partially covered edge
    /// words merge via a CAS loop so that untouched neighbouring bytes are
    /// preserved even under concurrent writers.
    pub fn write_bytes(&self, offset: u64, data: &[u8]) -> Result<()> {
        let len = data.len() as u64;
        if len == 0 {
            return Ok(());
        }
        if offset + len > self.capacity() {
            return Err(FabricError::OutOfBounds {
                addr: crate::addr::FarAddr(offset),
                len,
            });
        }
        let mut done = 0u64;
        while done < len {
            let at = offset + done;
            let word_base = at / WORD * WORD;
            let in_word = (at - word_base) as usize;
            let take = ((WORD as usize - in_word) as u64).min(len - done) as usize;
            let slot = &self.words[(word_base / WORD) as usize];
            let src = &data[done as usize..done as usize + take];
            if take == WORD as usize {
                let mut w = [0u8; 8];
                w.copy_from_slice(src);
                slot.store(u64::from_le_bytes(w), Ordering::SeqCst);
            } else {
                // Merge the covered bytes into the word without disturbing
                // the rest; retry if a concurrent writer races the word.
                let mut cur = slot.load(Ordering::SeqCst);
                loop {
                    let mut bytes = cur.to_le_bytes();
                    bytes[in_word..in_word + take].copy_from_slice(src);
                    let neww = u64::from_le_bytes(bytes);
                    match slot.compare_exchange_weak(
                        cur,
                        neww,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
            }
            done += take as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> MemoryNode {
        MemoryNode::new(NodeId(0), 4096 * 4)
    }

    #[test]
    fn word_ops_round_trip() {
        let n = node();
        n.write_u64(64, 0xdead_beef).unwrap();
        assert_eq!(n.read_u64(64).unwrap(), 0xdead_beef);
        assert_eq!(n.cas_u64(64, 0xdead_beef, 7).unwrap(), 0xdead_beef);
        assert_eq!(n.read_u64(64).unwrap(), 7);
        // A failed CAS returns the actual value and leaves memory intact.
        assert_eq!(n.cas_u64(64, 99, 1).unwrap(), 7);
        assert_eq!(n.read_u64(64).unwrap(), 7);
        assert_eq!(n.faa_u64(64, 3).unwrap(), 7);
        assert_eq!(n.read_u64(64).unwrap(), 10);
    }

    #[test]
    fn unaligned_word_ops_rejected() {
        let n = node();
        assert!(matches!(
            n.read_u64(4),
            Err(FabricError::Unaligned { .. })
        ));
    }

    #[test]
    fn byte_ranges_round_trip_unaligned() {
        let n = node();
        let data: Vec<u8> = (0..41u8).collect();
        n.write_bytes(13, &data).unwrap();
        let mut back = vec![0u8; 41];
        n.read_bytes(13, &mut back).unwrap();
        assert_eq!(back, data);
        // Neighbouring bytes are untouched.
        let mut edge = [0u8; 1];
        n.read_bytes(12, &mut edge).unwrap();
        assert_eq!(edge[0], 0);
    }

    #[test]
    fn failure_blocks_access() {
        let n = node();
        n.fail();
        assert_eq!(n.check_alive(), Err(FabricError::NodeFailed(NodeId(0))));
        n.recover();
        assert!(n.check_alive().is_ok());
    }

    #[test]
    fn occupy_serializes_arrivals() {
        let n = node();
        let f1 = n.occupy(100, 50);
        assert_eq!(f1, 150);
        // Second message arriving earlier still queues behind the first.
        let f2 = n.occupy(120, 50);
        assert_eq!(f2, 200);
        // A late arrival after the queue drains starts immediately.
        let f3 = n.occupy(1000, 50);
        assert_eq!(f3, 1050);
    }

    #[test]
    fn guarded_faa_checks_atomically() {
        let n = node();
        n.write_u64(64, 100).unwrap();
        n.write_u64(72, 7).unwrap(); // guard word
        assert_eq!(n.guarded_faa_u64(64, 1, 72, 7).unwrap(), 100);
        assert_eq!(n.read_u64(64).unwrap(), 101);
        assert_eq!(
            n.guarded_faa_u64(64, 1, 72, 8),
            Err(FabricError::GuardMismatch { observed: 7 })
        );
        assert_eq!(n.read_u64(64).unwrap(), 101, "mismatch performs nothing");
    }

    #[test]
    fn oob_byte_ranges_rejected() {
        let n = node();
        let mut buf = [0u8; 16];
        assert!(n.read_bytes(n.capacity() - 8, &mut buf).is_err());
        assert!(n.write_bytes(n.capacity() - 8, &buf).is_err());
    }
}
