//! The fabric: memory nodes behind a shared interconnect.
//!
//! A [`Fabric`] owns the memory nodes, the address map, the cost model and
//! the notification machinery. Clients (compute-side adapters) are created
//! with [`Fabric::client`] and issue one-sided verbs; no application
//! processor ever mediates access to far memory (§2).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use std::collections::HashMap;

use crate::addr::{AddressMap, FarAddr, NodeId, Segment, Striping};
use crate::check::CheckObserver;
use crate::cost::CostModel;
use crate::error::{FabricError, Result};
use crate::fault::{FaultPlan, RetryPolicy};
use crate::node::MemoryNode;
use crate::notify::{DeliveryPolicy, SubId};

/// What a memory node does when an indirect verb dereferences a pointer
/// whose target lives on a different node (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndirectionMode {
    /// The home node forwards the request to the owning node (memory-side
    /// hop, cheaper than a client round trip).
    Forward,
    /// The home node returns [`FabricError::IndirectRemote`], leaving the
    /// compute node to complete the indirection with a second round trip.
    Error,
}

/// Static configuration of a fabric instance.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Number of memory nodes.
    pub nodes: u32,
    /// Bytes of far memory per node (multiple of the page size).
    pub node_capacity: u64,
    /// Address-space mapping policy.
    pub striping: Striping,
    /// Latency model.
    pub cost: CostModel,
    /// Cross-node indirection handling.
    pub indirection: IndirectionMode,
    /// Default notification delivery policy for new clients.
    pub delivery: DeliveryPolicy,
    /// Whether `Changed` events carry the triggering write range (§7.2).
    pub carry_trigger: bool,
    /// Seed for deterministic best-effort notification drops.
    pub seed: u64,
    /// Deterministic fault-injection plan (defaults to no faults).
    pub faults: FaultPlan,
    /// Client-side retry policy for transient verb failures.
    pub retry: RetryPolicy,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 1,
            node_capacity: 64 << 20,
            striping: Striping::Blocked,
            cost: CostModel::DEFAULT,
            indirection: IndirectionMode::Forward,
            delivery: DeliveryPolicy::COALESCING,
            carry_trigger: true,
            seed: 0x5eed,
            faults: FaultPlan::NONE,
            retry: RetryPolicy::DEFAULT,
        }
    }
}

impl FabricConfig {
    /// Single-node fabric of `capacity` bytes with default costs.
    pub fn single_node(capacity: u64) -> FabricConfig {
        FabricConfig { nodes: 1, node_capacity: capacity, ..FabricConfig::default() }
    }

    /// Single-node fabric with the zero-latency counting model, for tests
    /// that assert far-access counts.
    pub fn count_only(capacity: u64) -> FabricConfig {
        FabricConfig {
            cost: CostModel::COUNT_ONLY,
            ..FabricConfig::single_node(capacity)
        }
    }

    /// Builds the fabric.
    pub fn build(self) -> Arc<Fabric> {
        Fabric::new(self)
    }
}

/// A simulated far-memory fabric.
pub struct Fabric {
    config: FabricConfig,
    map: AddressMap,
    nodes: Vec<MemoryNode>,
    next_client: AtomicU32,
    /// Subscription registry: id → owning node, for unsubscribe routing.
    subs: Mutex<HashMap<SubId, NodeId>>,
    /// Monotone bump pointer used by the trivial built-in region allocator
    /// ([`Fabric::alloc_region`]); the real allocator lives in
    /// `farmem-alloc`.
    region_cursor: AtomicU64,
    /// Verification observer (`farmem-check`); see [`crate::check`].
    hooks: RwLock<Option<Arc<dyn CheckObserver>>>,
    /// Fast-path flag: with no observer installed, every verb pays one
    /// relaxed load here and nothing else (the `fabric::trace` discipline).
    hooked: AtomicBool,
}

impl Fabric {
    /// Creates a fabric from `config`.
    pub fn new(config: FabricConfig) -> Arc<Fabric> {
        let map = AddressMap::new(config.nodes, config.node_capacity, config.striping);
        let nodes = (0..config.nodes)
            .map(|i| {
                let n = MemoryNode::new(NodeId(i), config.node_capacity);
                n.subs.set_carry_trigger(config.carry_trigger);
                n
            })
            .collect();
        Arc::new(Fabric {
            config,
            map,
            nodes,
            next_client: AtomicU32::new(0),
            subs: Mutex::new(HashMap::new()),
            // Skip the reserved null word; start allocations page-aligned.
            region_cursor: AtomicU64::new(crate::addr::PAGE),
            hooks: RwLock::new(None),
            hooked: AtomicBool::new(false),
        })
    }

    /// Installs a verification observer ([`crate::check`]): it will see
    /// every verb attempt (gate), memory access, and notification receipt
    /// on this fabric until [`Fabric::clear_check_observer`]. Observers
    /// must not perturb virtual time or stats; installing one changes no
    /// accounting.
    pub fn install_check_observer(&self, obs: Arc<dyn CheckObserver>) {
        *self.hooks.write().unwrap() = Some(obs);
        self.hooked.store(true, Ordering::Release);
    }

    /// Removes the installed verification observer, if any.
    pub fn clear_check_observer(&self) {
        self.hooked.store(false, Ordering::Release);
        *self.hooks.write().unwrap() = None;
    }

    /// The installed observer, or `None` (the common fast path: one
    /// relaxed-ish atomic load).
    #[inline]
    pub(crate) fn check_hook(&self) -> Option<Arc<dyn CheckObserver>> {
        if !self.hooked.load(Ordering::Acquire) {
            return None;
        }
        self.hooks.read().unwrap().clone()
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The address map in force.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    /// Creates a new client adapter attached to this fabric.
    pub fn client(self: &Arc<Self>) -> crate::client::FabricClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        crate::client::FabricClient::new(self.clone(), id)
    }

    /// Immutable access to a memory node (fault injection, inspection).
    pub fn node(&self, id: NodeId) -> &MemoryNode {
        &self.nodes[id.0 as usize]
    }

    /// All memory nodes.
    pub fn nodes(&self) -> &[MemoryNode] {
        &self.nodes
    }

    /// Reserves a page-aligned region of `len` bytes from the global
    /// address space with a trivial bump allocator.
    ///
    /// This is the bootstrap allocator used to carve arenas for the real
    /// allocator in `farmem-alloc`; it never frees.
    pub fn alloc_region(&self, len: u64) -> Result<FarAddr> {
        let len = len.div_ceil(crate::addr::PAGE) * crate::addr::PAGE;
        let start = self.region_cursor.fetch_add(len, Ordering::Relaxed);
        if start + len > self.map.total_capacity() {
            return Err(FabricError::OutOfBounds { addr: FarAddr(start), len });
        }
        Ok(FarAddr(start))
    }

    pub(crate) fn register_sub(&self, id: SubId, node: NodeId) {
        self.subs.lock().unwrap().insert(id, node);
    }

    pub(crate) fn unregister_sub(&self, id: SubId) -> Result<()> {
        let node = self
            .subs
            .lock()
            .unwrap()
            .remove(&id)
            .ok_or(FabricError::NoSuchSubscription)?;
        self.node(node).subs.unregister(id)
    }

    /// Splits a global range into per-node segments.
    pub(crate) fn segments(&self, addr: FarAddr, len: u64) -> Result<Vec<Segment>> {
        self.map.segments(addr, len)
    }

    /// Fires notification subscriptions for a node-local write.
    pub(crate) fn fire(&self, node: NodeId, offset: u64, len: u64, fired_at_ns: u64) {
        let n = self.node(node);
        if n.subs.is_empty() {
            return;
        }
        n.subs.fire(
            offset,
            len,
            fired_at_ns,
            &|off| n.read_u64(off).unwrap_or(0),
            &|off, l| {
                let mut buf = vec![0u8; l as usize];
                let _ = n.read_bytes(off, &mut buf);
                buf
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let f = FabricConfig::default().build();
        assert_eq!(f.map().node_count(), 1);
        assert_eq!(f.map().total_capacity(), 64 << 20);
    }

    #[test]
    fn region_allocator_bumps_and_bounds() {
        let f = FabricConfig::single_node(1 << 20).build();
        let a = f.alloc_region(100).unwrap();
        let b = f.alloc_region(100).unwrap();
        assert_eq!(b.0 - a.0, crate::addr::PAGE);
        assert!(f.alloc_region(2 << 20).is_err());
    }

    #[test]
    fn client_ids_are_unique() {
        let f = FabricConfig::default().build();
        let c1 = f.client();
        let c2 = f.client();
        assert_ne!(c1.id(), c2.id());
    }
}
