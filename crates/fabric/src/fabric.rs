//! The fabric: memory nodes behind a shared interconnect.
//!
//! A [`Fabric`] owns the memory nodes, the address map, the cost model and
//! the notification machinery. Clients (compute-side adapters) are created
//! with [`Fabric::client`] and issue one-sided verbs; no application
//! processor ever mediates access to far memory (§2).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use std::collections::HashMap;

use crate::addr::{AddressMap, FarAddr, NodeId, Segment, Striping};
use crate::check::CheckObserver;
use crate::cost::CostModel;
use crate::error::{FabricError, Result};
use crate::fault::{FaultPlan, RetryPolicy};
use crate::node::MemoryNode;
use crate::notify::{DeliveryPolicy, SubId};
use crate::replica::{GroupTable, GroupView, ReplicaConfig};
use crate::stats::AccessStats;

/// What a memory node does when an indirect verb dereferences a pointer
/// whose target lives on a different node (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndirectionMode {
    /// The home node forwards the request to the owning node (memory-side
    /// hop, cheaper than a client round trip).
    Forward,
    /// The home node returns [`FabricError::IndirectRemote`], leaving the
    /// compute node to complete the indirection with a second round trip.
    Error,
}

/// Static configuration of a fabric instance.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Number of memory nodes.
    pub nodes: u32,
    /// Bytes of far memory per node (multiple of the page size).
    pub node_capacity: u64,
    /// Address-space mapping policy.
    pub striping: Striping,
    /// Latency model.
    pub cost: CostModel,
    /// Cross-node indirection handling.
    pub indirection: IndirectionMode,
    /// Default notification delivery policy for new clients.
    pub delivery: DeliveryPolicy,
    /// Whether `Changed` events carry the triggering write range (§7.2).
    pub carry_trigger: bool,
    /// Seed for deterministic best-effort notification drops.
    pub seed: u64,
    /// Deterministic fault-injection plan (defaults to no faults).
    pub faults: FaultPlan,
    /// Client-side retry policy for transient verb failures.
    pub retry: RetryPolicy,
    /// Replication policy: replicas per logical node, read spreading and
    /// the failover lease (defaults to no replication).
    pub replication: ReplicaConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 1,
            node_capacity: 64 << 20,
            striping: Striping::Blocked,
            cost: CostModel::DEFAULT,
            indirection: IndirectionMode::Forward,
            delivery: DeliveryPolicy::COALESCING,
            carry_trigger: true,
            seed: 0x5eed,
            faults: FaultPlan::NONE,
            retry: RetryPolicy::DEFAULT,
            replication: ReplicaConfig::NONE,
        }
    }
}

impl FabricConfig {
    /// Single-node fabric of `capacity` bytes with default costs.
    pub fn single_node(capacity: u64) -> FabricConfig {
        FabricConfig { nodes: 1, node_capacity: capacity, ..FabricConfig::default() }
    }

    /// Single-node fabric with the zero-latency counting model, for tests
    /// that assert far-access counts.
    pub fn count_only(capacity: u64) -> FabricConfig {
        FabricConfig {
            cost: CostModel::COUNT_ONLY,
            ..FabricConfig::single_node(capacity)
        }
    }

    /// Builds the fabric.
    pub fn build(self) -> Arc<Fabric> {
        Fabric::new(self)
    }
}

/// A simulated far-memory fabric.
pub struct Fabric {
    config: FabricConfig,
    map: AddressMap,
    /// All physical nodes: the `config.nodes` logical primaries first,
    /// then `config.nodes * K` replicas (group `g`'s replicas sit at
    /// `config.nodes + g*K .. +K`). The address map spans only the
    /// logical nodes; replicas are reached through their group.
    nodes: Vec<MemoryNode>,
    /// Replication groups (`None` when `replication.replicas == 0`: the
    /// unreplicated fabric carries zero extra state on the verb path).
    groups: Option<GroupTable>,
    next_client: AtomicU32,
    /// Subscription registry: id → owning node, for unsubscribe routing.
    subs: Mutex<HashMap<SubId, NodeId>>,
    /// Monotone bump pointer used by the trivial built-in region allocator
    /// ([`Fabric::alloc_region`]); the real allocator lives in
    /// `farmem-alloc`.
    region_cursor: AtomicU64,
    /// Verification observer (`farmem-check`); see [`crate::check`].
    hooks: RwLock<Option<Arc<dyn CheckObserver>>>,
    /// Fast-path flag: with no observer installed, every verb pays one
    /// relaxed load here and nothing else (the `fabric::trace` discipline).
    hooked: AtomicBool,
}

impl Fabric {
    /// Creates a fabric from `config`.
    pub fn new(config: FabricConfig) -> Arc<Fabric> {
        let map = AddressMap::new(config.nodes, config.node_capacity, config.striping);
        let k = config.replication.replicas;
        let physical = config.nodes * (1 + k);
        let nodes: Vec<MemoryNode> = (0..physical)
            .map(|i| {
                let n = MemoryNode::new(NodeId(i), config.node_capacity);
                n.subs.set_carry_trigger(config.carry_trigger);
                n
            })
            .collect();
        if config.faults.crash_at_ns != u64::MAX {
            nodes[config.faults.crash_node as usize]
                .schedule_crash_permanent(config.faults.crash_at_ns);
        }
        let groups = (k > 0).then(|| GroupTable::new(config.nodes, k));
        Arc::new(Fabric {
            config,
            map,
            nodes,
            groups,
            next_client: AtomicU32::new(0),
            subs: Mutex::new(HashMap::new()),
            // Skip the reserved null word; start allocations page-aligned.
            region_cursor: AtomicU64::new(crate::addr::PAGE),
            hooks: RwLock::new(None),
            hooked: AtomicBool::new(false),
        })
    }

    /// Installs a verification observer ([`crate::check`]): it will see
    /// every verb attempt (gate), memory access, and notification receipt
    /// on this fabric until [`Fabric::clear_check_observer`]. Observers
    /// must not perturb virtual time or stats; installing one changes no
    /// accounting.
    pub fn install_check_observer(&self, obs: Arc<dyn CheckObserver>) {
        *self.hooks.write().unwrap() = Some(obs);
        self.hooked.store(true, Ordering::Release);
    }

    /// Removes the installed verification observer, if any.
    pub fn clear_check_observer(&self) {
        self.hooked.store(false, Ordering::Release);
        *self.hooks.write().unwrap() = None;
    }

    /// The installed observer, or `None` (the common fast path: one
    /// relaxed-ish atomic load).
    #[inline]
    pub(crate) fn check_hook(&self) -> Option<Arc<dyn CheckObserver>> {
        if !self.hooked.load(Ordering::Acquire) {
            return None;
        }
        self.hooks.read().unwrap().clone()
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The address map in force.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    /// Creates a new client adapter attached to this fabric.
    pub fn client(self: &Arc<Self>) -> crate::client::FabricClient {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        crate::client::FabricClient::new(self.clone(), id)
    }

    /// Immutable access to a *physical* memory node (fault injection,
    /// inspection). With replication, ids `< config.nodes` are the
    /// original primaries and the rest are replicas; use
    /// [`Fabric::primary`] for where a group's traffic currently lands.
    pub fn node(&self, id: NodeId) -> &MemoryNode {
        &self.nodes[id.0 as usize]
    }

    /// All physical memory nodes (logical primaries first, then replicas).
    pub fn nodes(&self) -> &[MemoryNode] {
        &self.nodes
    }

    // ----- replication groups (crate::replica) -----

    /// Whether this fabric replicates its logical nodes.
    #[inline]
    pub fn replicated(&self) -> bool {
        self.groups.is_some()
    }

    /// The replication policy in force.
    pub fn replication(&self) -> &ReplicaConfig {
        &self.config.replication
    }

    /// The current primary node of logical group `g` (the group's sole
    /// member when replication is off).
    pub fn primary(&self, g: NodeId) -> &MemoryNode {
        match &self.groups {
            Some(t) => self.node(t.primary(g)),
            None => self.node(g),
        }
    }

    /// Snapshot of group `g`'s configuration (epoch, primary, members).
    pub fn group_view(&self, g: NodeId) -> GroupView {
        match &self.groups {
            Some(t) => t.view(g),
            None => GroupView { epoch: 0, primary: g, members: vec![g] },
        }
    }

    /// Current configuration epoch of group `g` (0 when unreplicated).
    pub fn group_epoch(&self, g: NodeId) -> u64 {
        self.groups.as_ref().map_or(0, |t| t.epoch(g))
    }

    /// The logical group a physical node belongs to.
    pub fn group_of(&self, phys: NodeId) -> NodeId {
        if phys.0 < self.config.nodes {
            phys
        } else {
            NodeId((phys.0 - self.config.nodes) / self.config.replication.replicas)
        }
    }

    /// Promotes a live replica of group `g`, conditioned on the caller's
    /// observed epoch (see `GroupTable::promote` semantics in
    /// `crate::replica`): idempotent under races, fences the deposed
    /// primary at the new epoch, errors with
    /// [`FabricError::NodeLost`] when no live member remains.
    pub fn promote(&self, g: NodeId, observed_epoch: u64, now_ns: u64) -> Result<GroupView> {
        match &self.groups {
            Some(t) => t.promote(self, g, observed_epoch, now_ns),
            None => Err(FabricError::NodeLost(g)),
        }
    }

    /// Drops a replica from group `g`'s membership (it missed a mirror or
    /// crash-stopped; it can never be promoted).
    pub(crate) fn evict_replica(&self, g: NodeId, phys: NodeId) {
        if let Some(t) = &self.groups {
            t.evict(g, phys);
        }
    }

    /// Reserves a page-aligned region of `len` bytes from the global
    /// address space with a trivial bump allocator.
    ///
    /// This is the bootstrap allocator used to carve arenas for the real
    /// allocator in `farmem-alloc`; it never frees.
    pub fn alloc_region(&self, len: u64) -> Result<FarAddr> {
        let len = len.div_ceil(crate::addr::PAGE) * crate::addr::PAGE;
        let start = self.region_cursor.fetch_add(len, Ordering::Relaxed);
        if start + len > self.map.total_capacity() {
            return Err(FabricError::OutOfBounds { addr: FarAddr(start), len });
        }
        Ok(FarAddr(start))
    }

    pub(crate) fn register_sub(&self, id: SubId, node: NodeId) {
        self.subs.lock().unwrap().insert(id, node);
    }

    pub(crate) fn unregister_sub(&self, id: SubId) -> Result<()> {
        let node = self
            .subs
            .lock()
            .unwrap()
            .remove(&id)
            .ok_or(FabricError::NoSuchSubscription)?;
        self.node(node).subs.unregister(id)
    }

    /// Splits a global range into per-node segments.
    pub(crate) fn segments(&self, addr: FarAddr, len: u64) -> Result<Vec<Segment>> {
        self.map.segments(addr, len)
    }

    /// Commits a node-local mutation of `[offset, offset+len)` on group
    /// `node`'s primary: mirrors the mutated range to the group's live
    /// replicas and fires notification subscriptions. Returns the finish
    /// time of the slowest mirror (== `fired_at_ns` when unreplicated) —
    /// the verb's acknowledgement must fold it in, so a write is acked
    /// only once every live replica is durable
    /// (ack-after-replica-durable; see `crate::replica`).
    ///
    /// Every mutation path of the fabric — serial verbs, fenced batches,
    /// posted writes, pipelined descriptors and the indirect/guarded verb
    /// family — funnels through here, which is what keeps every replica
    /// byte-identical to its primary without per-verb replication code.
    pub(crate) fn fire(
        &self,
        stats: &mut AccessStats,
        node: NodeId,
        offset: u64,
        len: u64,
        fired_at_ns: u64,
    ) -> u64 {
        let mut finish = fired_at_ns;
        if let Some(groups) = &self.groups {
            finish = self.mirror(groups, stats, node, offset, len, fired_at_ns);
        }
        let n = self.primary(node);
        if n.subs.is_empty() {
            return finish;
        }
        n.subs.fire(
            offset,
            len,
            fired_at_ns,
            &|off| n.read_u64(off).unwrap_or(0),
            &|off, l| {
                let mut buf = vec![0u8; l as usize];
                let _ = n.read_bytes(off, &mut buf);
                buf
            },
        );
        finish
    }

    /// Mirrors a committed mutation from group `g`'s primary to its live
    /// replicas. The mirror messages leave the primary together after the
    /// mutation commits (one memory-side hop) and occupy the replica
    /// interfaces *in parallel*, so the durability cost is the slowest
    /// single replica, not K round trips. A replica that is failed or
    /// lost at mirror time misses the write and is evicted from the group
    /// — membership only shrinks, every surviving member stays
    /// byte-identical, and any of them is safe to promote.
    fn mirror(
        &self,
        groups: &GroupTable,
        stats: &mut AccessStats,
        g: NodeId,
        offset: u64,
        len: u64,
        fired_at_ns: u64,
    ) -> u64 {
        let replicas = groups.replicas_of(g);
        if replicas.is_empty() {
            return fired_at_ns;
        }
        let cost = &self.config.cost;
        let primary = self.primary(g);
        let mut buf = vec![0u8; len as usize];
        if primary.read_bytes(offset, &mut buf).is_err() {
            return fired_at_ns;
        }
        let arrival = fired_at_ns + cost.mem_hop_ns;
        let service = cost.node_msg_ns + cost.bytes_ns(len);
        let mut finish = fired_at_ns;
        for r in replicas {
            let node = self.node(r);
            if node.check_alive_at(arrival).is_err() {
                // Missed mirror: the replica is no longer byte-identical
                // and must never be promoted.
                groups.evict(g, r);
                continue;
            }
            let _ = node.write_bytes(offset, &buf);
            stats.messages += 1;
            stats.replica_messages += 1;
            finish = finish.max(node.occupy(arrival, service));
        }
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let f = FabricConfig::default().build();
        assert_eq!(f.map().node_count(), 1);
        assert_eq!(f.map().total_capacity(), 64 << 20);
    }

    #[test]
    fn region_allocator_bumps_and_bounds() {
        let f = FabricConfig::single_node(1 << 20).build();
        let a = f.alloc_region(100).unwrap();
        let b = f.alloc_region(100).unwrap();
        assert_eq!(b.0 - a.0, crate::addr::PAGE);
        assert!(f.alloc_region(2 << 20).is_err());
    }

    #[test]
    fn client_ids_are_unique() {
        let f = FabricConfig::default().build();
        let c1 = f.client();
        let c2 = f.client();
        assert_ne!(c1.id(), c2.id());
    }
}
