//! Far-access accounting.
//!
//! The number of far-memory accesses is the paper's key performance metric
//! (§3.1). Every client tracks the round trips, messages and bytes of each
//! verb it issues, so experiments can report exact per-operation access
//! counts instead of noisy timings.

/// Defines [`AccessStats`] plus every piece of code that must enumerate
/// its fields (`since`, `merge`, `to_array`, `from_array`, `FIELD_NAMES`)
/// from a single field list, so a newly added counter can never be
/// silently skipped in delta or aggregation code.
macro_rules! access_stats {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// Counters accumulated by one client.
        ///
        /// `round_trips` counts *dependent* round trips on the critical
        /// path: a fenced batch of ops issued together costs one round trip
        /// of latency and is counted once, while each constituent fabric
        /// message still increments `messages`. Reporting both keeps the
        /// "one far access" claims auditable (see DESIGN.md §2).
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct AccessStats {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl AccessStats {
            /// Number of counters (generated from the field list).
            pub const COUNT: usize = [$(stringify!($field)),+].len();

            /// Field names, in declaration order (for generic reporting).
            pub const FIELD_NAMES: [&'static str; Self::COUNT] =
                [$(stringify!($field)),+];

            /// A zeroed counter set.
            pub fn new() -> AccessStats {
                AccessStats::default()
            }

            /// Total bytes moved over the fabric in either direction.
            #[inline]
            pub fn bytes_total(&self) -> u64 {
                self.bytes_read + self.bytes_written
            }

            /// Component-wise difference `self - earlier`, for measuring
            /// one operation or one experiment phase. Counters are
            /// monotone, so `earlier` must be the *older* snapshot;
            /// swapping the arguments trips a debug assertion naming the
            /// offending field (and saturates to zero in release builds)
            /// instead of underflow-panicking mid-experiment.
            pub fn since(&self, earlier: &AccessStats) -> AccessStats {
                AccessStats {
                    $($field: {
                        debug_assert!(
                            self.$field >= earlier.$field,
                            concat!(
                                "AccessStats::since: `",
                                stringify!($field),
                                "` is smaller than in `earlier` — \
                                 snapshots passed in the wrong order?"
                            ),
                        );
                        self.$field.saturating_sub(earlier.$field)
                    },)+
                }
            }

            /// Component-wise sum, for aggregating over clients.
            pub fn merge(&mut self, other: &AccessStats) {
                $(self.$field += other.$field;)+
            }

            /// All counters, in [`FIELD_NAMES`](Self::FIELD_NAMES) order.
            pub fn to_array(&self) -> [u64; Self::COUNT] {
                [$(self.$field),+]
            }

            /// Builds a counter set from [`to_array`](Self::to_array)'s
            /// layout.
            pub fn from_array(values: [u64; Self::COUNT]) -> AccessStats {
                let mut it = values.into_iter();
                AccessStats {
                    $($field: it.next().expect("array length matches"),)+
                }
            }

            /// `(name, value)` pairs in declaration order, for generic
            /// serialization (JSON emitters, trace exports).
            pub fn fields(&self) -> [(&'static str, u64); Self::COUNT] {
                let mut out = [("", 0u64); Self::COUNT];
                let values = self.to_array();
                let mut i = 0;
                while i < Self::COUNT {
                    out[i] = (Self::FIELD_NAMES[i], values[i]);
                    i += 1;
                }
                out
            }
        }
    };
}

access_stats! {
    /// Dependent far round trips (the paper's "far accesses").
    round_trips,
    /// Individual fabric messages issued (≥ `round_trips`).
    messages,
    /// Unsignaled posted writes: issued without waiting for completion
    /// (not a dependent round trip; e.g. the queue's background slot
    /// zeroing, §5.3).
    posted_messages,
    /// Payload bytes read from far memory.
    bytes_read,
    /// Payload bytes written to far memory.
    bytes_written,
    /// Atomic fabric operations (CAS / fetch-add and indirect variants).
    atomics,
    /// Memory-side forwarding hops for cross-node indirections (§7.1).
    forward_hops,
    /// Client re-issues after `IndirectRemote` errors (§7.1 error mode).
    reissues,
    /// Notifications received (including coalesced representatives).
    notifications,
    /// Notifications that were coalesced into an already-pending event.
    notifications_coalesced,
    /// Notifications dropped by best-effort delivery or spike suppression.
    notifications_lost,
    /// Near (client-local cache) accesses — cheap, shown for contrast.
    near_accesses,
    /// Verb attempts reissued after a transient fault (retry policy).
    retries,
    /// Verbs abandoned after exhausting the retry budget.
    giveups,
    /// Faults injected into this client's verbs (transient failures,
    /// timeouts and latency spikes; see [`FaultPlan`](crate::fault::FaultPlan)).
    faults_injected,
    /// Descriptors executed through a pipeline doorbell (each also counts
    /// its round trips / messages / bytes exactly as the serial verb would).
    pipelined_ops,
    /// Pipeline doorbells rung (one per `IssueQueue::commit`).
    doorbells,
    /// Virtual nanoseconds saved by overlapping pipelined descriptors
    /// across nodes, versus issuing the same verbs serially.
    overlap_saved_ns,
    /// Bytes this client handed to a reclamation limbo (deferred frees
    /// awaiting an epoch grace period; booked by `farmem-reclaim`).
    retired_bytes,
    /// Bytes actually returned to the allocator after their grace period
    /// elapsed. `retired_bytes - reclaimed_bytes` is the limbo footprint.
    reclaimed_bytes,
    /// Grace-period detection rounds run (each is one scan of the epoch
    /// registry; its round trips are also counted in `round_trips`).
    reclaim_rounds,
    /// Mirror messages fanned out to replicas by mutating verbs (each also
    /// counts in `messages`; see `crate::replica`). `messages -
    /// replica_messages` is the unreplicated message count, so the fan-out
    /// overhead of a K-replica fabric stays auditable.
    replica_messages,
    /// Failovers this client completed (or adopted): a permanent primary
    /// loss it survived by re-issuing against a promoted replica.
    failovers,
    /// Group-view refreshes forced by `FabricError::FencedEpoch`: the
    /// client was routing to a deposed primary and paid one round trip
    /// to fetch the new configuration.
    fence_refreshes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_merge_are_inverses() {
        let mut a = AccessStats::new();
        a.round_trips = 5;
        a.messages = 9;
        a.bytes_read = 128;
        let mut b = a;
        b.round_trips = 7;
        b.messages = 12;
        b.bytes_read = 160;
        let d = b.since(&a);
        assert_eq!(d.round_trips, 2);
        assert_eq!(d.messages, 3);
        let mut sum = a;
        sum.merge(&d);
        assert_eq!(sum, b);
    }

    /// Regression test for the `since` underflow hazard: a caller that
    /// passes a *later* snapshot as `earlier` must hit a descriptive
    /// debug assertion (release builds saturate to zero instead), not a
    /// bare `attempt to subtract with overflow` panic deep in a report.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "snapshots passed in the wrong order")]
    fn since_with_swapped_snapshots_trips_the_debug_assertion() {
        let mut later = AccessStats::new();
        later.round_trips = 3;
        let earlier = AccessStats::new();
        let _ = earlier.since(&later);
    }

    /// Every field participates in `since` and `merge` — the macro makes
    /// drift impossible, and this test proves it for the current list by
    /// exercising each counter with a distinct value.
    #[test]
    fn no_field_is_skipped_in_delta_or_aggregation() {
        let mut lo = [0u64; AccessStats::COUNT];
        let mut hi = [0u64; AccessStats::COUNT];
        for i in 0..AccessStats::COUNT {
            lo[i] = (i as u64 + 1) * 3;
            hi[i] = (i as u64 + 1) * 10;
        }
        let a = AccessStats::from_array(lo);
        let b = AccessStats::from_array(hi);
        let d = b.since(&a);
        for (i, v) in d.to_array().into_iter().enumerate() {
            assert_eq!(v, hi[i] - lo[i], "field {} skipped in since", AccessStats::FIELD_NAMES[i]);
        }
        let mut sum = a;
        sum.merge(&d);
        assert_eq!(sum, b, "merge must restore every field");
        // The name list stays in sync with the struct.
        assert_eq!(AccessStats::FIELD_NAMES.len(), AccessStats::COUNT);
        let fields = AccessStats::new().fields();
        assert_eq!(fields.len(), AccessStats::COUNT);
        for (i, (name, _)) in fields.iter().enumerate() {
            assert_eq!(*name, AccessStats::FIELD_NAMES[i]);
        }
    }
}
