//! Far-access accounting.
//!
//! The number of far-memory accesses is the paper's key performance metric
//! (§3.1). Every client tracks the round trips, messages and bytes of each
//! verb it issues, so experiments can report exact per-operation access
//! counts instead of noisy timings.

/// Counters accumulated by one client.
///
/// `round_trips` counts *dependent* round trips on the critical path: a
/// fenced batch of ops issued together costs one round trip of latency and
/// is counted once, while each constituent fabric message still increments
/// `messages`. Reporting both keeps the "one far access" claims auditable
/// (see DESIGN.md §2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Dependent far round trips (the paper's "far accesses").
    pub round_trips: u64,
    /// Individual fabric messages issued (≥ `round_trips`).
    pub messages: u64,
    /// Unsignaled posted writes: issued without waiting for completion
    /// (not a dependent round trip; e.g. the queue's background slot
    /// zeroing, §5.3).
    pub posted_messages: u64,
    /// Payload bytes read from far memory.
    pub bytes_read: u64,
    /// Payload bytes written to far memory.
    pub bytes_written: u64,
    /// Atomic fabric operations (CAS / fetch-add and indirect variants).
    pub atomics: u64,
    /// Memory-side forwarding hops for cross-node indirections (§7.1).
    pub forward_hops: u64,
    /// Client re-issues after `IndirectRemote` errors (§7.1 error mode).
    pub reissues: u64,
    /// Notifications received (including coalesced representatives).
    pub notifications: u64,
    /// Notifications that were coalesced into an already-pending event.
    pub notifications_coalesced: u64,
    /// Notifications dropped by best-effort delivery or spike suppression.
    pub notifications_lost: u64,
    /// Near (client-local cache) accesses — cheap, shown for contrast.
    pub near_accesses: u64,
    /// Verb attempts reissued after a transient fault (retry policy).
    pub retries: u64,
    /// Verbs abandoned after exhausting the retry budget.
    pub giveups: u64,
    /// Faults injected into this client's verbs (transient failures,
    /// timeouts and latency spikes; see [`FaultPlan`](crate::fault::FaultPlan)).
    pub faults_injected: u64,
}

impl AccessStats {
    /// A zeroed counter set.
    pub fn new() -> AccessStats {
        AccessStats::default()
    }

    /// Total bytes moved over the fabric in either direction.
    #[inline]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Component-wise difference `self - earlier`, for measuring one
    /// operation or one experiment phase.
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            round_trips: self.round_trips - earlier.round_trips,
            messages: self.messages - earlier.messages,
            posted_messages: self.posted_messages - earlier.posted_messages,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            atomics: self.atomics - earlier.atomics,
            forward_hops: self.forward_hops - earlier.forward_hops,
            reissues: self.reissues - earlier.reissues,
            notifications: self.notifications - earlier.notifications,
            notifications_coalesced: self.notifications_coalesced
                - earlier.notifications_coalesced,
            notifications_lost: self.notifications_lost - earlier.notifications_lost,
            near_accesses: self.near_accesses - earlier.near_accesses,
            retries: self.retries - earlier.retries,
            giveups: self.giveups - earlier.giveups,
            faults_injected: self.faults_injected - earlier.faults_injected,
        }
    }

    /// Component-wise sum, for aggregating over clients.
    pub fn merge(&mut self, other: &AccessStats) {
        self.round_trips += other.round_trips;
        self.messages += other.messages;
        self.posted_messages += other.posted_messages;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.atomics += other.atomics;
        self.forward_hops += other.forward_hops;
        self.reissues += other.reissues;
        self.notifications += other.notifications;
        self.notifications_coalesced += other.notifications_coalesced;
        self.notifications_lost += other.notifications_lost;
        self.near_accesses += other.near_accesses;
        self.retries += other.retries;
        self.giveups += other.giveups;
        self.faults_injected += other.faults_injected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_merge_are_inverses() {
        let mut a = AccessStats::new();
        a.round_trips = 5;
        a.messages = 9;
        a.bytes_read = 128;
        let mut b = a;
        b.round_trips = 7;
        b.messages = 12;
        b.bytes_read = 160;
        let d = b.since(&a);
        assert_eq!(d.round_trips, 2);
        assert_eq!(d.messages, 3);
        let mut sum = a;
        sum.merge(&d);
        assert_eq!(sum, b);
    }
}
