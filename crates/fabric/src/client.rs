//! The client adapter: the compute-node end of the fabric.
//!
//! A [`FabricClient`] models one compute node's fabric interface. It issues
//! one-sided verbs (loads, stores, atomics — §2 — plus the extended verbs
//! of Fig. 1 implemented in [`crate::ext`]), charges the cost model against
//! its own virtual clock, and accounts every far access in its
//! [`AccessStats`].
//!
//! # Fenced batches
//!
//! The memory fabric can enforce ordering constraints via request
//! completion queues (§2). [`FabricClient::batch`] models this: a batch of
//! independent verbs is issued back-to-back, the fabric applies them in
//! order, and the client observes a single round trip of latency. Batches
//! count one `round_trip` but one `message` per constituent verb, keeping
//! the accounting auditable.

use std::sync::Arc;

use crate::addr::{FarAddr, NodeId, WORD};
use crate::cost::SimClock;
use crate::error::{FabricError, Result};
use crate::fabric::Fabric;
use crate::fault::{FaultPlan, FaultRng, RetryPolicy};
use crate::notify::{Event, EventSink, SubId, SubKind};
use crate::replica::GroupView;
use crate::sample::MetricSampler;
use crate::stats::AccessStats;
use crate::trace::{SpanGuard, TraceConfig, TraceReport, Tracer, VerbKind};

/// One compute node's far-memory adapter.
pub struct FabricClient {
    fabric: Arc<Fabric>,
    id: u32,
    clock: SimClock,
    stats: AccessStats,
    sink: Arc<EventSink>,
    /// Events drained from the sink but not yet claimed by a consumer —
    /// lets several data structures share one client without stealing each
    /// other's notifications (see [`FabricClient::take_events`]).
    pending: Vec<Event>,
    /// Fault plan copied from the config (the plan is evaluated per verb
    /// attempt by [`FabricClient::begin_attempt`]).
    faults: FaultPlan,
    /// Retry policy copied from the config.
    retry: RetryPolicy,
    /// Per-client deterministic fault/jitter stream.
    rng: FaultRng,
    /// Trace sink, when enabled ([`FabricClient::enable_tracing`]). A
    /// disabled tracer is a single `Option` branch per verb and adds zero
    /// fabric accesses either way.
    trace: Option<Tracer>,
    /// Metrics hook, when installed ([`FabricClient::install_sampler`]).
    /// Same cost discipline as the tracer: one `Option` branch per verb
    /// when absent, and never any fabric accesses (see [`crate::sample`]).
    sampler: Option<Arc<dyn MetricSampler>>,
    /// Reentrancy depth of [`FabricClient::traced`]: composite verbs
    /// (`load0_auto` → `load0`, retries) record only at the outermost
    /// wrapper, so counter deltas are never attributed twice.
    trace_depth: u32,
    /// Sink-side coalesced count already folded into
    /// `stats.notifications_coalesced` (the sink counts cumulatively).
    seen_coalesced: u64,
    /// Cached per-group replication views (empty when the fabric is
    /// unreplicated). Deliberately *not* kept coherent: a client keeps
    /// routing through its cached view until a
    /// [`FabricError::FencedEpoch`] or failover forces a charged refresh
    /// — that staleness window is what the fencing epoch exists for.
    views: Vec<Option<GroupView>>,
    /// Round-robin cursor for replica-read spreading.
    read_rr: u64,
    /// Per-client override of the fabric-wide
    /// [`spread_reads`](crate::replica::ReplicaConfig::spread_reads)
    /// policy (`None` = follow the fabric). Lets a serving layer spread
    /// only the reads it knows are safe to spread (e.g. hot keys) while
    /// the rest keep primary-read semantics.
    spread_override: Option<bool>,
}

/// One verb inside a fenced batch.
#[derive(Clone, Debug)]
pub enum BatchOp<'a> {
    /// Read `len` bytes at `addr`.
    Read {
        /// Source far address.
        addr: FarAddr,
        /// Bytes to read.
        len: u64,
    },
    /// Write `data` at `addr`.
    Write {
        /// Destination far address.
        addr: FarAddr,
        /// Bytes to write.
        data: &'a [u8],
    },
    /// Compare-and-swap the word at `addr`.
    Cas {
        /// Word address.
        addr: FarAddr,
        /// Expected value.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Fetch-and-add on the word at `addr`.
    Faa {
        /// Word address.
        addr: FarAddr,
        /// Added value (wrapping).
        delta: u64,
    },
}

/// Result of one verb inside a fenced batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOut {
    /// Bytes returned by a `Read`.
    Bytes(Vec<u8>),
    /// Previous word value returned by `Cas` or `Faa`.
    Value(u64),
    /// A `Write` completed.
    Done,
}

impl BatchOut {
    /// The previous word value, for `Cas`/`Faa` outputs.
    ///
    /// # Panics
    ///
    /// Panics if the output is not a value; batch authors know the shape of
    /// their own batches.
    pub fn value(&self) -> u64 {
        match self {
            BatchOut::Value(v) => *v,
            other => panic!("batch output {other:?} is not a value"),
        }
    }

    /// The returned bytes, for `Read` outputs.
    ///
    /// # Panics
    ///
    /// Panics if the output is not bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            BatchOut::Bytes(b) => b,
            other => panic!("batch output {other:?} is not bytes"),
        }
    }
}

impl FabricClient {
    pub(crate) fn new(fabric: Arc<Fabric>, id: u32) -> FabricClient {
        let config = *fabric.config();
        let seed = config.seed ^ (id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let sink = EventSink::new(config.delivery, seed);
        let fault_seed =
            config.faults.seed ^ (id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let views = if fabric.replicated() {
            vec![None; config.nodes as usize]
        } else {
            Vec::new()
        };
        FabricClient {
            fabric,
            id,
            clock: SimClock::new(),
            stats: AccessStats::new(),
            sink,
            pending: Vec::new(),
            faults: config.faults,
            retry: config.retry,
            rng: FaultRng::new(fault_seed),
            trace: None,
            sampler: None,
            trace_depth: 0,
            seen_coalesced: 0,
            views,
            read_rr: 0,
            spread_override: None,
        }
    }

    /// This client's identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The fabric this client is attached to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Current virtual time at this client.
    pub fn now_ns(&self) -> u64 {
        self.clock.now()
    }

    /// Advances this client's clock by `ns` of local compute time.
    pub fn advance_time(&mut self, ns: u64) {
        self.clock.advance(ns);
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// The client's notification queue.
    pub fn sink(&self) -> &Arc<EventSink> {
        &self.sink
    }

    /// Charges one near (client-local) access — a cache hit.
    #[inline]
    pub fn near_access(&mut self) {
        self.near_accesses(1);
    }

    /// Charges `n` near accesses at once.
    pub fn near_accesses(&mut self, n: u64) {
        self.stats.near_accesses += n;
        self.clock.advance(self.fabric.cost().near_ns * n);
        if self.trace_depth == 0 {
            if let Some(t) = &self.trace {
                let mut delta = AccessStats::new();
                delta.near_accesses = n;
                t.charge(delta, self.clock.now());
            }
            self.sample_tick(0);
        }
    }

    /// Books reclamation accounting (see `farmem-reclaim`): bytes handed
    /// to a limbo list, bytes returned to the allocator after their grace
    /// period, and grace-detection rounds run. Pure bookkeeping — charges
    /// no far accesses and no virtual time (the registry reads/CASes that
    /// implement reclamation are issued as ordinary verbs and count
    /// themselves), but flows through tracing spans so
    /// [`TraceReport::reconcile`](crate::trace::TraceReport::reconcile)
    /// stays exact.
    pub fn book_reclaim(&mut self, retired_bytes: u64, reclaimed_bytes: u64, rounds: u64) {
        self.stats.retired_bytes += retired_bytes;
        self.stats.reclaimed_bytes += reclaimed_bytes;
        self.stats.reclaim_rounds += rounds;
        if self.trace_depth == 0 {
            if let Some(t) = &self.trace {
                let mut delta = AccessStats::new();
                delta.retired_bytes = retired_bytes;
                delta.reclaimed_bytes = reclaimed_bytes;
                delta.reclaim_rounds = rounds;
                t.charge(delta, self.clock.now());
            }
            self.sample_tick(0);
        }
    }

    // ----- metrics sampling (farmem-metrics; see `crate::sample`) -----

    /// Installs a metrics sampler: it observes every completed outermost
    /// verb (and bookkeeping ticks) until cleared. Replaces any previous
    /// sampler.
    pub fn install_sampler(&mut self, sampler: Arc<dyn MetricSampler>) {
        self.sampler = Some(sampler);
    }

    /// Removes the metrics sampler, returning the client to the
    /// one-branch-per-verb disabled path.
    pub fn clear_sampler(&mut self) -> Option<Arc<dyn MetricSampler>> {
        self.sampler.take()
    }

    /// Reports one activity boundary to the installed sampler (no-op
    /// branch when none is installed).
    #[inline]
    fn sample_tick(&mut self, verb_ns: u64) {
        if let Some(s) = &self.sampler {
            s.observe(self.id, self.clock.now(), verb_ns, &self.stats);
        }
    }

    // ----- tracing (farmem-trace; see `crate::trace`) -----

    /// Enables span-attributed tracing on this client and returns the
    /// tracer handle (also reachable via [`FabricClient::tracer`]). The
    /// report baseline is the current counters.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) -> Tracer {
        let t = Tracer::new(cfg, self.id, self.stats, self.clock.now());
        self.trace = Some(t.clone());
        t
    }

    /// Disables tracing, returning the tracer (whose buffers stay
    /// readable).
    pub fn disable_tracing(&mut self) -> Option<Tracer> {
        self.trace.take()
    }

    /// The active tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.trace.as_ref()
    }

    /// Opens a named operation span; every verb issued while the returned
    /// guard is the innermost live span is attributed to it. With tracing
    /// disabled this returns an inert guard and costs one branch.
    pub fn span(&mut self, name: &'static str) -> SpanGuard {
        match &self.trace {
            Some(t) => {
                let id = t.open_span(name, self.clock.now());
                SpanGuard::new(t.clone(), id)
            }
            None => SpanGuard::disabled(),
        }
    }

    /// Builds the attribution report against this client's live counters
    /// (`None` if tracing was never enabled).
    pub fn trace_report(&self) -> Option<TraceReport> {
        self.trace.as_ref().map(|t| t.report(self.stats))
    }

    /// Runs one public verb under the tracer: captures the exact counter
    /// delta and virtual start/end times of the *outermost* wrapper only
    /// (composite verbs such as `load0_auto` re-enter for their inner
    /// legs, which must not double-record).
    #[inline]
    pub(crate) fn traced<T>(
        &mut self,
        kind: VerbKind,
        f: impl FnOnce(&mut FabricClient) -> Result<T>,
    ) -> Result<T> {
        if self.trace_depth > 0 || (self.trace.is_none() && self.sampler.is_none()) {
            return f(self);
        }
        self.trace_depth = 1;
        let start = self.clock.now();
        let before = self.stats;
        let out = f(self);
        self.trace_depth = 0;
        let end = self.clock.now();
        if let Some(tracer) = self.trace.clone() {
            tracer.record_verb(kind, start, end, self.stats.since(&before), out.is_ok());
        }
        self.sample_tick(end - start);
        out
    }

    // ----- internal timing helpers (shared with `crate::ext`) -----

    /// Virtual time at which a message issued now arrives at a node.
    pub(crate) fn arrival(&self) -> u64 {
        self.clock.now() + self.fabric.cost().one_way_ns()
    }

    /// Completes one dependent round trip whose last node-side event
    /// happened at `node_finish`.
    pub(crate) fn finish_rt(&mut self, node_finish: u64) {
        self.clock
            .advance_to(node_finish + self.fabric.cost().one_way_ns());
        self.stats.round_trips += 1;
    }

    pub(crate) fn stats_mut(&mut self) -> &mut AccessStats {
        &mut self.stats
    }

    /// Moves the clock forward to `t` (used by the pipeline doorbell,
    /// which advances to the *max* completion across its descriptors
    /// instead of calling [`finish_rt`](Self::finish_rt) per descriptor).
    pub(crate) fn clock_advance_to(&mut self, t: u64) {
        self.clock.advance_to(t);
    }

    // ----- fault injection and transparent retry (crate::fault) -----

    /// Rolls the fault plan for one verb attempt. Called at the top of
    /// every attempt, so a retried verb re-rolls. Injected failures happen
    /// *before* any node-side execution (fail-before-execution), which is
    /// what makes blind retry safe even for atomics.
    pub(crate) fn begin_attempt(&mut self) -> Result<()> {
        // Verification gate (crate::check): a deterministic explorer
        // blocks here until this client is granted its next verb. Sits
        // before the fault roll so an injected failure is itself a
        // scheduled step.
        if let Some(h) = self.fabric.check_hook() {
            h.gate(self.id);
        }
        if !self.faults.enabled() {
            return Ok(());
        }
        let fail_ppm = (self.faults.transient_ppm + self.faults.timeout_ppm) as u64;
        if fail_ppm > 0 {
            let roll = self.rng.roll_ppm();
            if roll < self.faults.transient_ppm as u64 {
                // A NACKed/dropped request still burned a wire round trip
                // before the client learned of the failure; charge it so
                // fault sweeps show the retry cost in far accesses too.
                self.stats.faults_injected += 1;
                self.stats.messages += 1;
                self.stats.round_trips += 1;
                self.clock.advance(self.fabric.cost().far_rtt_ns);
                return Err(FabricError::Transient);
            }
            if roll < fail_ppm {
                // A timeout burns a round trip and virtual time before the
                // client notices.
                self.stats.faults_injected += 1;
                self.stats.messages += 1;
                self.stats.round_trips += 1;
                self.clock.advance(self.faults.timeout_ns);
                return Err(FabricError::Timeout);
            }
        }
        if self.faults.spike_ppm > 0 && self.rng.roll_ppm() < self.faults.spike_ppm as u64 {
            // A latency spike: the verb succeeds but costs extra.
            self.stats.faults_injected += 1;
            self.clock.advance(self.faults.spike_ns);
        }
        Ok(())
    }

    /// Re-routes (failovers + fence refreshes) allowed per verb before the
    /// client gives up: bounds pathological configuration churn while
    /// allowing several successive promotions (K crashes of one group).
    const MAX_REROUTES: u32 = 8;

    /// Runs `op` under the client's retry policy: transient errors
    /// ([`FabricError::is_transient`]) are retried with exponential backoff
    /// and seeded jitter, all charged to the *virtual* clock (the advancing
    /// clock is also what heals timed node crash windows and expires stale
    /// lock leases in `farmem-core`).
    ///
    /// Permanent faults are handled without touching the backoff budget:
    ///
    /// * [`FabricError::NodeLost`] — the node crash-stopped and can never
    ///   recover, so backing off is pointless. With a live replica the
    ///   client fails over ([`try_failover`](Self::try_failover)) and
    ///   re-issues against the promoted primary; the re-issue is a routing
    ///   change, **not** a fault retry, so `retries` is not charged.
    ///   Without one the verb is abandoned immediately, charging
    ///   `giveups` exactly once.
    /// * [`FabricError::FencedEpoch`] — the client routed through a stale
    ///   cached view to a deposed primary. It refreshes the view (one
    ///   charged round trip) and re-issues; again not a fault retry.
    pub(crate) fn retrying<T>(
        &mut self,
        mut op: impl FnMut(&mut FabricClient) -> Result<T>,
    ) -> Result<T> {
        let policy = self.retry;
        let mut backoff = policy.base_backoff_ns;
        let mut attempt = 0u32;
        let mut reroutes = 0u32;
        loop {
            attempt += 1;
            match op(self) {
                Ok(v) => return Ok(v),
                Err(FabricError::NodeLost(n)) => {
                    reroutes += 1;
                    if reroutes > Self::MAX_REROUTES || !self.try_failover(n) {
                        self.stats.giveups += 1;
                        return Err(FabricError::NodeLost(n));
                    }
                    attempt -= 1; // re-issue, not a fault retry
                }
                Err(FabricError::FencedEpoch { node, epoch }) => {
                    reroutes += 1;
                    if reroutes > Self::MAX_REROUTES {
                        self.stats.giveups += 1;
                        return Err(FabricError::FencedEpoch { node, epoch });
                    }
                    let g = self.fabric.group_of(node);
                    self.stats.fence_refreshes += 1;
                    self.refresh_view(g);
                    attempt -= 1; // re-issue, not a fault retry
                }
                Err(e) if e.is_transient() && attempt < policy.max_attempts => {
                    self.stats.retries += 1;
                    let mut delay = backoff;
                    if policy.jitter && delay > 1 {
                        delay += self.rng.next() % (delay / 2 + 1);
                    }
                    self.clock.advance(delay);
                    backoff = backoff.saturating_mul(2).min(policy.max_backoff_ns);
                }
                Err(e) => {
                    if e.is_transient() {
                        self.stats.giveups += 1;
                    }
                    return Err(e);
                }
            }
        }
    }

    // ----- replication routing and fenced failover (crate::replica) -----

    /// Physical node this client currently routes group `g`'s *mutations*
    /// (and unspread reads) to: the primary recorded in its cached view.
    /// A stale view keeps routing to a deposed primary until its fence
    /// error forces a refresh — exactly the partitioned-stale-client
    /// scenario the fencing epoch protects against.
    pub(crate) fn route(&mut self, g: NodeId) -> NodeId {
        if !self.fabric.replicated() {
            return g;
        }
        self.cached_view(g).primary
    }

    /// Like [`route`](Self::route), but for reads: with
    /// [`spread_reads`](crate::replica::ReplicaConfig::spread_reads) on,
    /// round-robins over every cached member of the group.
    pub(crate) fn route_read(&mut self, g: NodeId) -> NodeId {
        if !self.fabric.replicated() {
            return g;
        }
        let spread =
            self.spread_override.unwrap_or(self.fabric.replication().spread_reads);
        if !spread {
            return self.cached_view(g).primary;
        }
        self.read_rr = self.read_rr.wrapping_add(1);
        let rr = self.read_rr as usize;
        let v = self.cached_view(g);
        v.members[rr % v.members.len()]
    }

    /// Overrides the fabric-wide
    /// [`spread_reads`](crate::replica::ReplicaConfig::spread_reads)
    /// policy for *this client only*: `Some(true)` round-robins reads
    /// over the cached replica group regardless of the fabric default,
    /// `Some(false)` pins reads to the primary, and `None` (the initial
    /// state) follows the fabric. Purely client-local routing state — no
    /// far traffic. A serving layer toggles this around reads of keys it
    /// has detected as hot, so cold reads keep primary locality while
    /// hot-key load fans out over the replica group.
    pub fn set_spread_reads(&mut self, override_: Option<bool>) {
        self.spread_override = override_;
    }

    /// The client's cached view of group `g`, fetched free of charge on
    /// first touch (part of the attach handshake, like the address map).
    fn cached_view(&mut self, g: NodeId) -> &GroupView {
        let slot = &mut self.views[g.0 as usize];
        if slot.is_none() {
            *slot = Some(self.fabric.group_view(g));
        }
        slot.as_ref().unwrap()
    }

    /// Re-fetches group `g`'s configuration from the fabric, charging one
    /// round trip (the configuration service lives across the fabric too).
    fn refresh_view(&mut self, g: NodeId) {
        self.stats.round_trips += 1;
        self.stats.messages += 1;
        self.clock.advance(self.fabric.cost().far_rtt_ns);
        let v = self.fabric.group_view(g);
        self.views[g.0 as usize] = Some(v);
    }

    /// Reacts to a permanent loss of physical node `lost`: evicts a dead
    /// replica, adopts a failover another client already completed, or —
    /// when the lost node is the group's current primary and this client
    /// is first — waits out the failover lease and promotes a replica.
    /// Returns whether the verb can be re-issued.
    fn try_failover(&mut self, lost: NodeId) -> bool {
        if !self.fabric.replicated() {
            return false;
        }
        let fabric = self.fabric.clone();
        let g = fabric.group_of(lost);
        let cached = self.cached_view(g);
        let (cached_epoch, cached_primary) = (cached.epoch, cached.primary);
        if lost != cached_primary {
            // A spread read hit a dead replica: drop it from the group and
            // fall back to the primary. No promotion involved.
            fabric.evict_replica(g, lost);
            self.refresh_view(g);
            return true;
        }
        if fabric.group_epoch(g) != cached_epoch {
            // Another client already promoted past our view: adopt the new
            // configuration without waiting out the lease again.
            self.stats.failovers += 1;
            self.refresh_view(g);
            return true;
        }
        // First suspector: wait one failover lease of virtual time, so
        // every lock lease held through the dead primary has expired
        // before its successor starts serving (DESIGN.md §10), then
        // promote. The epoch condition makes racing promotions idempotent.
        self.clock.advance(fabric.replication().failover_lease_ns);
        match fabric.promote(g, cached_epoch, self.clock.now()) {
            Ok(_) => {
                self.stats.failovers += 1;
                self.refresh_view(g);
                true
            }
            Err(_) => false,
        }
    }

    /// Reports an executed memory access to the verification observer,
    /// if one is installed (crate::check). Never touches clock or stats.
    #[inline]
    pub(crate) fn observe(&self, kind: crate::check::AccessKind, addr: FarAddr, len: u64) {
        if let Some(h) = self.fabric.check_hook() {
            h.access(&crate::check::Access { client: self.id, addr, len, kind });
        }
    }

    /// Executes a read of `[addr, addr+len)` arriving at `arrival`,
    /// returning `(bytes, node_finish)`. Counts messages/bytes, not RTs.
    pub(crate) fn exec_read(
        &mut self,
        addr: FarAddr,
        len: u64,
        arrival: u64,
    ) -> Result<(Vec<u8>, u64)> {
        let cost = *self.fabric.cost();
        let segs = self.fabric.segments(addr, len)?;
        let mut buf = vec![0u8; len as usize];
        let mut finish = arrival;
        let mut done = 0usize;
        for seg in &segs {
            let phys = self.route_read(seg.node);
            let node = self.fabric.node(phys);
            node.check_alive_at(arrival)?;
            let service = cost.node_msg_ns + cost.bytes_ns(seg.len);
            let f = node.occupy(arrival, service);
            node.read_bytes(seg.offset, &mut buf[done..done + seg.len as usize])?;
            done += seg.len as usize;
            finish = finish.max(f);
        }
        self.stats.messages += segs.len() as u64;
        self.stats.bytes_read += len;
        self.observe(crate::check::AccessKind::Read, addr, len);
        Ok((buf, finish))
    }

    /// Executes a write of `data` at `addr` arriving at `arrival`,
    /// returning the node-side finish time. Fires notifications.
    pub(crate) fn exec_write(&mut self, addr: FarAddr, data: &[u8], arrival: u64) -> Result<u64> {
        let cost = *self.fabric.cost();
        let len = data.len() as u64;
        let segs = self.fabric.segments(addr, len)?;
        let mut finish = arrival;
        let mut done = 0usize;
        for seg in &segs {
            let phys = self.route(seg.node);
            let node = self.fabric.node(phys);
            node.check_alive_at(arrival)?;
            let service = cost.node_msg_ns + cost.bytes_ns(seg.len);
            let f = node.occupy(arrival, service);
            node.write_bytes(seg.offset, &data[done..done + seg.len as usize])?;
            let f = self.fabric.fire(&mut self.stats, seg.node, seg.offset, seg.len, f);
            done += seg.len as usize;
            finish = finish.max(f);
        }
        self.stats.messages += segs.len() as u64;
        self.stats.bytes_written += len;
        self.observe(crate::check::AccessKind::Write, addr, len);
        Ok(finish)
    }

    /// Locates the single word at `addr` (words never span nodes because
    /// stripes are page multiples).
    pub(crate) fn word_home(&self, addr: FarAddr) -> Result<(crate::addr::NodeId, u64)> {
        if !addr.is_aligned(WORD) {
            return Err(FabricError::Unaligned { addr, required: WORD });
        }
        self.fabric.map().check(addr, WORD)?;
        Ok(self.fabric.map().locate(addr))
    }

    /// Executes a word read arriving at `arrival`; returns `(value, finish)`.
    pub(crate) fn exec_read_u64(&mut self, addr: FarAddr, arrival: u64) -> Result<(u64, u64)> {
        let cost = *self.fabric.cost();
        let (nid, off) = self.word_home(addr)?;
        let phys = self.route_read(nid);
        let node = self.fabric.node(phys);
        node.check_alive_at(arrival)?;
        let f = node.occupy(arrival, cost.node_msg_ns + cost.bytes_ns(WORD));
        let v = node.read_u64(off)?;
        self.stats.messages += 1;
        self.stats.bytes_read += WORD;
        self.observe(crate::check::AccessKind::Read, addr, WORD);
        Ok((v, f))
    }

    /// Executes a word write arriving at `arrival`; returns the finish time.
    pub(crate) fn exec_write_u64(&mut self, addr: FarAddr, value: u64, arrival: u64) -> Result<u64> {
        let cost = *self.fabric.cost();
        let (nid, off) = self.word_home(addr)?;
        let phys = self.route(nid);
        let node = self.fabric.node(phys);
        node.check_alive_at(arrival)?;
        let f = node.occupy(arrival, cost.node_msg_ns + cost.bytes_ns(WORD));
        node.write_u64(off, value)?;
        let f = self.fabric.fire(&mut self.stats, nid, off, WORD, f);
        self.stats.messages += 1;
        self.stats.bytes_written += WORD;
        self.observe(crate::check::AccessKind::Write, addr, WORD);
        Ok(f)
    }

    /// Executes a CAS arriving at `arrival`; returns `(previous, finish)`.
    pub(crate) fn exec_cas(
        &mut self,
        addr: FarAddr,
        expected: u64,
        new: u64,
        arrival: u64,
    ) -> Result<(u64, u64)> {
        let cost = *self.fabric.cost();
        let (nid, off) = self.word_home(addr)?;
        let phys = self.route(nid);
        let node = self.fabric.node(phys);
        node.check_alive_at(arrival)?;
        let mut f = node.occupy(arrival, cost.node_msg_ns + cost.node_ext_ns);
        let prev = node.cas_u64(off, expected, new)?;
        if prev == expected {
            f = self.fabric.fire(&mut self.stats, nid, off, WORD, f);
        }
        self.stats.messages += 1;
        self.stats.atomics += 1;
        self.observe(
            if prev == expected {
                crate::check::AccessKind::AtomicRmw
            } else {
                crate::check::AccessKind::AtomicRead
            },
            addr,
            WORD,
        );
        Ok((prev, f))
    }

    /// Executes a fetch-and-add arriving at `arrival`; returns
    /// `(previous, finish)`.
    pub(crate) fn exec_faa(
        &mut self,
        addr: FarAddr,
        delta: u64,
        arrival: u64,
    ) -> Result<(u64, u64)> {
        let cost = *self.fabric.cost();
        let (nid, off) = self.word_home(addr)?;
        let phys = self.route(nid);
        let node = self.fabric.node(phys);
        node.check_alive_at(arrival)?;
        let f = node.occupy(arrival, cost.node_msg_ns + cost.node_ext_ns);
        let prev = node.faa_u64(off, delta)?;
        let f = self.fabric.fire(&mut self.stats, nid, off, WORD, f);
        self.stats.messages += 1;
        self.stats.atomics += 1;
        self.observe(crate::check::AccessKind::AtomicRmw, addr, WORD);
        Ok((prev, f))
    }

    // ----- public one-sided verbs (§2 baseline set) -----

    /// One-sided read of `len` bytes at `addr`. One far access.
    pub fn read(&mut self, addr: FarAddr, len: u64) -> Result<Vec<u8>> {
        self.traced(VerbKind::Read, |c| c.read_inner(addr, len))
    }

    fn read_inner(&mut self, addr: FarAddr, len: u64) -> Result<Vec<u8>> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            let (buf, finish) = c.exec_read(addr, len, arrival)?;
            c.finish_rt(finish);
            Ok(buf)
        })
    }

    /// One-sided write of `data` at `addr`. One far access.
    pub fn write(&mut self, addr: FarAddr, data: &[u8]) -> Result<()> {
        self.traced(VerbKind::Write, |c| c.write_inner(addr, data))
    }

    fn write_inner(&mut self, addr: FarAddr, data: &[u8]) -> Result<()> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            let finish = c.exec_write(addr, data, arrival)?;
            c.finish_rt(finish);
            Ok(())
        })
    }

    /// One-sided read of the aligned word at `addr`. One far access.
    pub fn read_u64(&mut self, addr: FarAddr) -> Result<u64> {
        self.traced(VerbKind::Read, |c| c.read_u64_inner(addr))
    }

    fn read_u64_inner(&mut self, addr: FarAddr) -> Result<u64> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            let (v, finish) = c.exec_read_u64(addr, arrival)?;
            c.finish_rt(finish);
            Ok(v)
        })
    }

    /// One-sided write of the aligned word at `addr`. One far access.
    pub fn write_u64(&mut self, addr: FarAddr, value: u64) -> Result<()> {
        self.traced(VerbKind::Write, |c| c.write_u64_inner(addr, value))
    }

    fn write_u64_inner(&mut self, addr: FarAddr, value: u64) -> Result<()> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            let finish = c.exec_write_u64(addr, value, arrival)?;
            c.finish_rt(finish);
            Ok(())
        })
    }

    /// Fabric-level compare-and-swap (§2); returns the previous value.
    /// One far access.
    pub fn cas(&mut self, addr: FarAddr, expected: u64, new: u64) -> Result<u64> {
        self.traced(VerbKind::Atomic, |c| c.cas_inner(addr, expected, new))
    }

    fn cas_inner(&mut self, addr: FarAddr, expected: u64, new: u64) -> Result<u64> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            let (prev, finish) = c.exec_cas(addr, expected, new, arrival)?;
            c.finish_rt(finish);
            Ok(prev)
        })
    }

    /// Fabric-level fetch-and-add (§2); returns the previous value.
    /// One far access.
    pub fn faa(&mut self, addr: FarAddr, delta: u64) -> Result<u64> {
        self.traced(VerbKind::Atomic, |c| c.faa_inner(addr, delta))
    }

    fn faa_inner(&mut self, addr: FarAddr, delta: u64) -> Result<u64> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            let (prev, finish) = c.exec_faa(addr, delta, arrival)?;
            c.finish_rt(finish);
            Ok(prev)
        })
    }

    /// Issues a fenced batch: the verbs are applied in order (the fabric's
    /// completion queue enforces the barrier, §2) and the whole batch costs
    /// one dependent round trip.
    pub fn batch(&mut self, ops: &[BatchOp<'_>]) -> Result<Vec<BatchOut>> {
        self.traced(VerbKind::Batch, |c| c.batch_inner(ops))
    }

    fn batch_inner(&mut self, ops: &[BatchOp<'_>]) -> Result<Vec<BatchOut>> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            // Pre-flight every target node before executing any op: a batch
            // should fail atomically for blind retry to be safe. The timed
            // crash windows are evaluated against the same `arrival` here
            // and during execution, so they can never tear a batch; only a
            // concurrent `MemoryNode::fail` landing between this pre-flight
            // and a later op can — that case is caught below and surfaced
            // as the non-retryable `BatchTorn`.
            for op in ops {
                let (addr, len) = match op {
                    BatchOp::Read { addr, len } => (*addr, *len),
                    BatchOp::Write { addr, data } => (*addr, data.len() as u64),
                    BatchOp::Cas { addr, .. } | BatchOp::Faa { addr, .. } => (*addr, WORD),
                };
                for seg in c.fabric.segments(addr, len)? {
                    let phys = c.route(seg.node);
                    c.fabric.node(phys).check_alive_at(arrival)?;
                }
            }
            let mut out = Vec::with_capacity(ops.len());
            let mut finish = arrival;
            // Whether any side-effecting verb has executed in *this*
            // attempt. Once it has, a mid-batch node failure must not be
            // blindly retried: the retry would duplicate the FAA / flip an
            // already-won CAS to "failed". Reads and not-yet-applied writes
            // leave the batch safely retryable.
            let mut mutated = false;
            for op in ops {
                let step = (|| -> Result<u64> {
                    Ok(match op {
                        BatchOp::Read { addr, len } => {
                            let (buf, f) = c.exec_read(*addr, *len, arrival)?;
                            out.push(BatchOut::Bytes(buf));
                            f
                        }
                        BatchOp::Write { addr, data } => {
                            let f = c.exec_write(*addr, data, arrival)?;
                            out.push(BatchOut::Done);
                            f
                        }
                        BatchOp::Cas { addr, expected, new } => {
                            let (prev, f) = c.exec_cas(*addr, *expected, *new, arrival)?;
                            out.push(BatchOut::Value(prev));
                            f
                        }
                        BatchOp::Faa { addr, delta } => {
                            let (prev, f) = c.exec_faa(*addr, *delta, arrival)?;
                            out.push(BatchOut::Value(prev));
                            f
                        }
                    })
                })();
                let f = match step {
                    Ok(f) => f,
                    Err(FabricError::NodeFailed(node)) if mutated => {
                        return Err(FabricError::BatchTorn { node, executed: out.len() });
                    }
                    Err(e) => return Err(e),
                };
                mutated |= !matches!(op, BatchOp::Read { .. });
                finish = finish.max(f);
            }
            c.finish_rt(finish);
            Ok(out)
        })
    }

    /// Posts an *unsignaled* word write: the message is issued and the
    /// client continues without waiting for a completion, so no dependent
    /// round trip is charged — only issue overhead. Real fabrics offer
    /// exactly this (unsignaled RDMA writes); the §5.3 queue uses it to
    /// zero consumed slots off the critical path.
    ///
    /// The write is applied (and notifications fire) before this call
    /// returns, which over-approximates real visibility: a posted write is
    /// visible no later than the client's next fenced operation.
    pub fn post_write_u64(&mut self, addr: FarAddr, value: u64) -> Result<()> {
        self.traced(VerbKind::Posted, |c| c.post_write_u64_inner(addr, value))
    }

    fn post_write_u64_inner(&mut self, addr: FarAddr, value: u64) -> Result<()> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let cost = *c.fabric.cost();
            let arrival = c.arrival();
            let (nid, off) = c.word_home(addr)?;
            let phys = c.route(nid);
            let node = c.fabric.node(phys);
            node.check_alive_at(arrival)?;
            let f = node.occupy(arrival, cost.node_msg_ns + cost.bytes_ns(WORD));
            node.write_u64(off, value)?;
            // Unsignaled: the mirror fan-out happens, but nothing waits on
            // its finish time (visible by the next fenced op, as posted).
            let _ = c.fabric.fire(&mut c.stats, nid, off, WORD, f);
            c.observe(crate::check::AccessKind::Write, addr, WORD);
            c.stats.messages += 1;
            c.stats.posted_messages += 1;
            c.stats.bytes_written += WORD;
            // Issue overhead only: the client does not wait for completion.
            c.clock.advance(cost.near_ns);
            Ok(())
        })
    }

    /// Posts an *unsignaled* fetch-and-add (result discarded): used for
    /// background statistics counters (e.g. the HT-tree's collision and
    /// item counts, §5.2) that must not cost a dependent round trip.
    pub fn post_faa_u64(&mut self, addr: FarAddr, delta: u64) -> Result<()> {
        self.traced(VerbKind::Posted, |c| c.post_faa_u64_inner(addr, delta))
    }

    fn post_faa_u64_inner(&mut self, addr: FarAddr, delta: u64) -> Result<()> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let cost = *c.fabric.cost();
            let arrival = c.arrival();
            let (nid, off) = c.word_home(addr)?;
            let phys = c.route(nid);
            let node = c.fabric.node(phys);
            node.check_alive_at(arrival)?;
            let f = node.occupy(arrival, cost.node_msg_ns + cost.node_ext_ns);
            node.faa_u64(off, delta)?;
            let _ = c.fabric.fire(&mut c.stats, nid, off, WORD, f);
            c.observe(crate::check::AccessKind::AtomicRmw, addr, WORD);
            c.stats.messages += 1;
            c.stats.posted_messages += 1;
            c.stats.atomics += 1;
            c.clock.advance(cost.near_ns);
            Ok(())
        })
    }

    // ----- notification verbs (Fig. 1, §4.3) -----

    fn subscribe(&mut self, addr: FarAddr, len: u64, kind: SubKind) -> Result<SubId> {
        self.traced(VerbKind::Notify, |c| c.subscribe_inner(addr, len, kind))
    }

    fn subscribe_inner(&mut self, addr: FarAddr, len: u64, kind: SubKind) -> Result<SubId> {
        crate::notify::SubscriptionTable::validate_range(addr, len)?;
        self.retrying(|c| {
            c.begin_attempt()?;
            let segs = c.fabric.segments(addr, len)?;
            debug_assert_eq!(segs.len(), 1, "a page never spans nodes");
            let seg = segs[0];
            // Subscriptions live on the current primary only; they do not
            // survive failover (best-effort, DESIGN.md §10).
            let phys = c.route(seg.node);
            let node = c.fabric.node(phys);
            let arrival = c.arrival();
            node.check_alive_at(arrival)?;
            let cost = *c.fabric.cost();
            let finish = node.occupy(arrival, cost.node_msg_ns + cost.node_ext_ns);
            let id = node
                .subs
                .register(addr, seg.offset, len, kind, c.sink.clone())?;
            c.fabric.register_sub(id, phys);
            c.stats.messages += 1;
            c.finish_rt(finish);
            Ok(id)
        })
    }

    /// `notify0(ad, ℓ)`: signal any change in `[ad, ad+ℓ)` (Fig. 1).
    ///
    /// The range must be word-aligned and must not cross a page boundary.
    pub fn notify0(&mut self, addr: FarAddr, len: u64) -> Result<SubId> {
        self.subscribe(addr, len, SubKind::Changed)
    }

    /// `notifye(ad, v)`: signal when the word at `ad` becomes `v` (Fig. 1).
    pub fn notifye(&mut self, addr: FarAddr, value: u64) -> Result<SubId> {
        self.subscribe(addr, WORD, SubKind::Equal { value })
    }

    /// `notify0d(ad, ℓ)`: signal a change in `[ad, ad+ℓ)` and return the
    /// changed data (Fig. 1).
    pub fn notify0d(&mut self, addr: FarAddr, len: u64) -> Result<SubId> {
        self.subscribe(addr, len, SubKind::ChangedData)
    }

    /// Cancels a subscription created by this or any other client.
    pub fn unsubscribe(&mut self, id: SubId) -> Result<()> {
        self.traced(VerbKind::Notify, |c| c.unsubscribe_inner(id))
    }

    fn unsubscribe_inner(&mut self, id: SubId) -> Result<()> {
        self.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            c.fabric.unregister_sub(id)?;
            c.stats.messages += 1;
            c.finish_rt(arrival);
            Ok(())
        })
    }

    /// Moves newly delivered events from the sink into the local pending
    /// buffer, advancing the clock and the notification counters.
    fn pump_events(&mut self) {
        let events = self.sink.drain();
        let one_way = self.fabric.cost().one_way_ns();
        let hook = self.fabric.check_hook();
        let mut delta = AccessStats::new();
        for e in &events {
            match e {
                Event::Lost { count } => delta.notifications_lost += count,
                _ => {
                    delta.notifications += 1;
                    self.clock.advance_to(e.fired_at_ns() + one_way);
                    if let Some(h) = &hook {
                        let (addr, len) = match e {
                            Event::Changed { addr, len, .. } => (*addr, *len),
                            Event::Equal { addr, .. } => (*addr, WORD),
                            Event::ChangedData { addr, data, .. } => (*addr, data.len() as u64),
                            Event::Lost { .. } => unreachable!("handled above"),
                        };
                        h.notified(self.id, addr, len);
                    }
                }
            }
        }
        // The sink counts coalesced merges cumulatively; fold the unseen
        // portion into the client's books so `notifications +
        // notifications_coalesced` matches the number of times the fabric
        // fired at this subscriber (cross-checked in tests against
        // `SinkStats`).
        let coalesced = self.sink.stats().coalesced;
        delta.notifications_coalesced = coalesced - self.seen_coalesced;
        self.seen_coalesced = coalesced;
        self.stats.merge(&delta);
        if delta != AccessStats::new() && self.trace_depth == 0 {
            if let Some(t) = &self.trace {
                t.charge(delta, self.clock.now());
            }
            self.sample_tick(0);
        }
        self.pending.extend(events);
    }

    /// Drains *all* pending notifications (previously buffered plus newly
    /// delivered). Prefer [`FabricClient::take_events`] when several data
    /// structures share this client.
    pub fn recv_events(&mut self) -> Vec<Event> {
        self.pump_events();
        std::mem::take(&mut self.pending)
    }

    /// Removes and returns the pending events matching `filter`, leaving
    /// the rest buffered for other consumers. [`Event::Lost`] warnings are
    /// global: pass a filter that accepts them if the caller must react to
    /// loss (the first taker claims each warning).
    pub fn take_events(&mut self, filter: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.pump_events();
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.pending.len());
        for e in self.pending.drain(..) {
            if filter(&e) {
                taken.push(e);
            } else {
                kept.push(e);
            }
        }
        self.pending = kept;
        taken
    }

    /// Number of locally buffered (unclaimed) events.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;

    fn client() -> FabricClient {
        FabricConfig::single_node(1 << 20).build().client()
    }

    #[test]
    fn word_round_trip_counts_one_access() {
        let mut c = client();
        c.write_u64(FarAddr(64), 11).unwrap();
        assert_eq!(c.read_u64(FarAddr(64)).unwrap(), 11);
        let s = c.stats();
        assert_eq!(s.round_trips, 2);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.bytes_read, 8);
    }

    #[test]
    fn bulk_round_trip_and_latency_regime() {
        let mut c = client();
        let data = vec![0xabu8; 1024];
        let t0 = c.now_ns();
        c.write(FarAddr(4096), &data).unwrap();
        let elapsed = c.now_ns() - t0;
        // 1 KiB costs about 1 µs of payload plus the RTT (§2).
        assert!(elapsed >= 2_000 + 1_000, "elapsed {elapsed}");
        assert_eq!(c.read(FarAddr(4096), 1024).unwrap(), data);
    }

    #[test]
    fn cas_and_faa_return_previous() {
        let mut c = client();
        c.write_u64(FarAddr(8), 5).unwrap();
        assert_eq!(c.cas(FarAddr(8), 5, 9).unwrap(), 5);
        assert_eq!(c.cas(FarAddr(8), 5, 1).unwrap(), 9);
        assert_eq!(c.faa(FarAddr(8), 2).unwrap(), 9);
        assert_eq!(c.read_u64(FarAddr(8)).unwrap(), 11);
        assert_eq!(c.stats().atomics, 3);
    }

    #[test]
    fn batch_costs_one_round_trip() {
        let mut c = client();
        let data = [7u8; 8];
        let out = c
            .batch(&[
                BatchOp::Write { addr: FarAddr(128), data: &data },
                BatchOp::Cas { addr: FarAddr(136), expected: 0, new: 3 },
                BatchOp::Read { addr: FarAddr(128), len: 8 },
            ])
            .unwrap();
        assert_eq!(out[1].value(), 0);
        assert_eq!(out[2].bytes(), &data);
        let s = c.stats();
        assert_eq!(s.round_trips, 1);
        assert_eq!(s.messages, 3);
    }

    #[test]
    fn notify0_delivers_on_write() {
        let f = FabricConfig::single_node(1 << 20).build();
        let mut writer = f.client();
        let mut watcher = f.client();
        watcher.notify0(FarAddr(4096), 64).unwrap();
        writer.write_u64(FarAddr(4096 + 8), 1).unwrap();
        let events = watcher.recv_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], Event::Changed { .. }));
        assert_eq!(watcher.stats().notifications, 1);
    }

    #[test]
    fn notifye_wakes_on_value() {
        let f = FabricConfig::single_node(1 << 20).build();
        let mut writer = f.client();
        let mut watcher = f.client();
        watcher.notifye(FarAddr(4096), 0).unwrap();
        writer.write_u64(FarAddr(4096), 3).unwrap();
        assert!(watcher.recv_events().is_empty());
        writer.write_u64(FarAddr(4096), 0).unwrap();
        assert_eq!(watcher.recv_events().len(), 1);
    }

    #[test]
    fn unsubscribe_is_effective_and_idempotent_errors() {
        let f = FabricConfig::single_node(1 << 20).build();
        let mut writer = f.client();
        let mut watcher = f.client();
        let id = watcher.notify0(FarAddr(4096), 8).unwrap();
        watcher.unsubscribe(id).unwrap();
        assert!(watcher.unsubscribe(id).is_err());
        writer.write_u64(FarAddr(4096), 1).unwrap();
        assert!(watcher.recv_events().is_empty());
    }

    #[test]
    fn failed_node_surfaces_errors() {
        let f = FabricConfig::single_node(1 << 20).build();
        let mut c = f.client();
        f.node(crate::addr::NodeId(0)).fail();
        assert!(matches!(
            c.read_u64(FarAddr(8)),
            Err(FabricError::NodeFailed(_))
        ));
        f.node(crate::addr::NodeId(0)).recover();
        assert!(c.read_u64(FarAddr(8)).is_ok());
    }

    #[test]
    fn transient_faults_are_retried_transparently() {
        let f = FabricConfig {
            faults: crate::fault::FaultPlan::transient(200_000), // 20 % per attempt
            ..FabricConfig::count_only(1 << 20)
        }
        .build();
        let mut c = f.client();
        for i in 0..200u64 {
            c.write_u64(FarAddr(8 * (i + 1)), i).unwrap();
            assert_eq!(c.read_u64(FarAddr(8 * (i + 1))).unwrap(), i);
        }
        let s = c.stats();
        assert!(s.faults_injected > 0, "plan must have injected faults");
        assert!(s.retries > 0, "faults must have been retried");
        assert_eq!(s.giveups, 0, "20 % faults with 8 attempts should never give up");
    }

    #[test]
    fn fault_free_config_rolls_nothing() {
        let mut c = client();
        c.write_u64(FarAddr(8), 1).unwrap();
        let s = c.stats();
        assert_eq!((s.retries, s.giveups, s.faults_injected), (0, 0, 0));
    }

    #[test]
    fn torn_batches_are_never_blindly_retried() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // A node failing *during* a batch (after its FAA executed) must
        // surface as the non-transient BatchTorn rather than being
        // retried — a blind retry would apply the FAA twice. The flipper
        // thread races fail()/recover() against a client issuing
        // [Faa, Write] batches; exactly-once holds in every interleaving:
        // Ok and BatchTorn{executed>=1} mean the FAA applied once,
        // NodeFailed means it never applied.
        let f = FabricConfig::count_only(1 << 20).build();
        let fp = f.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let flipper = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                fp.node(crate::addr::NodeId(0)).fail();
                std::thread::yield_now();
                fp.node(crate::addr::NodeId(0)).recover();
                std::thread::yield_now();
            }
        });
        let mut c = f.client();
        let ctr = FarAddr(64);
        let mut applied = 0u64;
        for i in 0..2000u64 {
            let payload = i.to_le_bytes();
            // A long read tail after the FAA stretches batch execution so
            // a racing fail() has a realistic chance of landing between
            // the FAA and a later op's liveness check (the torn window).
            let mut ops = vec![BatchOp::Faa { addr: ctr, delta: 1 }];
            for _ in 0..64 {
                ops.push(BatchOp::Read { addr: FarAddr(4096), len: 4096 });
            }
            ops.push(BatchOp::Write { addr: FarAddr(128), data: &payload });
            match c.batch(&ops) {
                Ok(_) => applied += 1,
                Err(FabricError::BatchTorn { executed, .. }) => {
                    assert!(executed >= 1, "a torn batch executed its prefix");
                    applied += 1; // op 0 (the FAA) landed before the tear
                }
                Err(FabricError::NodeFailed(_)) => {} // nothing executed
                Err(e) => panic!("unexpected batch error: {e}"),
            }
        }
        stop.store(true, Ordering::Relaxed);
        flipper.join().unwrap();
        f.node(crate::addr::NodeId(0)).recover();
        assert_eq!(
            c.read_u64(ctr).unwrap(),
            applied,
            "every batch applied its FAA exactly once or not at all"
        );
    }

    #[test]
    fn tracing_adds_zero_fabric_accesses_and_identical_time() {
        // The same workload with and without tracing must produce
        // byte-identical counters and virtual clocks: observability is
        // pure observation.
        let run = |traced: bool| -> (AccessStats, u64) {
            let f = FabricConfig {
                faults: crate::fault::FaultPlan::transient(50_000),
                ..FabricConfig::single_node(1 << 20)
            }
            .build();
            let mut c = f.client();
            if traced {
                c.enable_tracing(crate::trace::TraceConfig::default());
            }
            let _outer = if traced { Some(c.span("workload")) } else { None };
            for i in 0..50u64 {
                c.write_u64(FarAddr(8 * (i + 1)), i).unwrap();
                c.read_u64(FarAddr(8 * (i + 1))).unwrap();
            }
            c.write_u64(FarAddr(64), 4096).unwrap();
            c.load0(FarAddr(64), 8).unwrap();
            c.batch(&[
                BatchOp::Faa { addr: FarAddr(8), delta: 1 },
                BatchOp::Read { addr: FarAddr(8), len: 8 },
            ])
            .unwrap();
            c.near_accesses(3);
            (c.stats(), c.now_ns())
        };
        let (plain, plain_ns) = run(false);
        let (traced, traced_ns) = run(true);
        assert_eq!(plain, traced, "tracing must not perturb any counter");
        assert_eq!(plain_ns, traced_ns, "tracing must not perturb the clock");
    }

    #[test]
    fn check_hooks_add_zero_accesses_and_time() {
        // Same discipline as tracing: a verification observer must be
        // pure observation — identical counters and virtual clock with
        // and without one installed, while actually seeing the traffic.
        use crate::check::{Access, CheckObserver};
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct Counting {
            gates: AtomicU64,
            accesses: AtomicU64,
            notified: AtomicU64,
        }
        impl CheckObserver for Counting {
            fn gate(&self, _client: u32) {
                self.gates.fetch_add(1, Ordering::Relaxed);
            }
            fn access(&self, _a: &Access) {
                self.accesses.fetch_add(1, Ordering::Relaxed);
            }
            fn notified(&self, _client: u32, _addr: FarAddr, _len: u64) {
                self.notified.fetch_add(1, Ordering::Relaxed);
            }
        }

        let run = |hooked: bool| -> (AccessStats, u64) {
            let f = FabricConfig {
                faults: crate::fault::FaultPlan::transient(50_000),
                ..FabricConfig::single_node(1 << 20)
            }
            .build();
            let obs = std::sync::Arc::new(Counting::default());
            if hooked {
                f.install_check_observer(obs.clone());
            }
            let mut c = f.client();
            let sub = c.notify0(FarAddr(128), 8).unwrap();
            for i in 0..50u64 {
                c.write_u64(FarAddr(8 * (i + 1)), i).unwrap();
                c.read_u64(FarAddr(8 * (i + 1))).unwrap();
            }
            c.cas(FarAddr(8), 0, 1).unwrap();
            c.faa(FarAddr(16), 2).unwrap();
            c.write_u64(FarAddr(64), 4096).unwrap();
            c.load0(FarAddr(64), 8).unwrap();
            c.batch(&[
                BatchOp::Faa { addr: FarAddr(8), delta: 1 },
                BatchOp::Read { addr: FarAddr(8), len: 8 },
            ])
            .unwrap();
            let _ = c.recv_events();
            c.unsubscribe(sub).unwrap();
            if hooked {
                assert!(obs.gates.load(Ordering::Relaxed) > 0, "gate saw attempts");
                assert!(obs.accesses.load(Ordering::Relaxed) > 0, "observer saw accesses");
                assert!(obs.notified.load(Ordering::Relaxed) > 0, "observer saw receipts");
                f.clear_check_observer();
            }
            (c.stats(), c.now_ns())
        };
        let (plain, plain_ns) = run(false);
        let (hooked, hooked_ns) = run(true);
        assert_eq!(plain, hooked, "check hooks must not perturb any counter");
        assert_eq!(plain_ns, hooked_ns, "check hooks must not perturb the clock");
    }

    #[test]
    fn trace_report_reconciles_exactly_and_attributes_spans() {
        let f = FabricConfig {
            faults: crate::fault::FaultPlan::transient(100_000),
            ..FabricConfig::single_node(1 << 20)
        }
        .build();
        let mut c = f.client();
        c.write_u64(FarAddr(64), 4096).unwrap(); // before enable: not counted
        c.enable_tracing(crate::trace::TraceConfig::default());
        {
            let _s = c.span("phase.write");
            for i in 0..20u64 {
                c.write_u64(FarAddr(4096 + 8 * i), i).unwrap();
            }
        }
        {
            let _s = c.span("phase.read");
            for i in 0..20u64 {
                c.read_u64(FarAddr(4096 + 8 * i)).unwrap();
            }
            let _inner = c.span("phase.read.indirect");
            c.load0(FarAddr(64), 8).unwrap();
        }
        c.faa(FarAddr(8), 1).unwrap(); // outside any span
        let r = c.trace_report().unwrap();
        assert_eq!(r.open_spans, 0);
        r.reconcile().unwrap_or_else(|field| {
            panic!("span sums diverge from flat stats on `{field}`: {r:?}")
        });
        assert!(r.attribution_ratio() > 0.9, "ratio {}", r.attribution_ratio());
        assert_eq!(r.unattributed.atomics, 1, "the bare faa is unattributed");
        let names: Vec<_> = r.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"phase.write") && names.contains(&"phase.read.indirect"));
        // Retries from injected faults are attributed too.
        assert_eq!(
            r.attributed().retries + r.unattributed.retries + r.open_stats.retries,
            r.total.retries
        );
        // Virtual-time latencies are present for the verbs we issued.
        assert!(r.verbs.iter().any(|v| v.kind == crate::trace::VerbKind::Read
            && v.count == 20
            && v.mean_ns >= 2_000));
        // Exports parse-ably mention the spans.
        let t = c.tracer().unwrap();
        assert!(t.jsonl().contains("phase.read.indirect"));
        assert!(t.chrome_trace().contains("\"name\":\"phase.write\""));
    }

    #[test]
    fn pump_events_books_coalesced_notifications() {
        let f = FabricConfig {
            delivery: crate::notify::DeliveryPolicy::COALESCING,
            ..FabricConfig::single_node(1 << 20)
        }
        .build();
        let mut writer = f.client();
        let mut watcher = f.client();
        watcher.notify0(FarAddr(4096), 8).unwrap();
        for i in 0..10u64 {
            writer.write_u64(FarAddr(4096), i).unwrap();
        }
        // All ten fires merged into one pending event + nine coalesces.
        let events = watcher.recv_events();
        assert_eq!(events.len(), 1);
        let s = watcher.stats();
        assert_eq!(s.notifications, 1);
        assert_eq!(s.notifications_coalesced, 9);
        let sink = watcher.sink().stats();
        assert_eq!(s.notifications, sink.delivered);
        assert_eq!(s.notifications_coalesced, sink.coalesced);
    }

    #[test]
    fn pump_events_books_spike_suppressed_notifications() {
        // Uncoalesced delivery with a 4-deep queue: a 12-write burst to
        // distinct subscribed words overflows it, so the sink suppresses
        // the excess and surfaces one Lost warning carrying the count.
        let f = FabricConfig {
            delivery: crate::notify::DeliveryPolicy {
                drop_ppm: 0,
                coalesce: false,
                max_queue: 4,
            },
            ..FabricConfig::single_node(1 << 20)
        }
        .build();
        let mut writer = f.client();
        let mut watcher = f.client();
        for i in 0..12u64 {
            watcher.notify0(FarAddr(4096 + i * 8), 8).unwrap();
        }
        for i in 0..12u64 {
            writer.write_u64(FarAddr(4096 + i * 8), i + 1).unwrap();
        }
        let events = watcher.recv_events();
        let lost: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Lost { count } => Some(*count),
                _ => None,
            })
            .sum();
        assert_eq!(lost, 8, "12 fires into a 4-deep queue drop 8");
        let s = watcher.stats();
        assert_eq!(s.notifications, 4);
        assert_eq!(s.notifications_lost, 8);
        assert_eq!(s.notifications_coalesced, 0);
        // Client books reconcile with the sink's own counters: every fire
        // is either delivered or spike-suppressed, none coalesced.
        let sink = watcher.sink().stats();
        assert_eq!(s.notifications, sink.delivered);
        assert_eq!(sink.coalesced, 0);
        assert_eq!(sink.silent_dropped, 0);
        assert_eq!(s.notifications + s.notifications_lost, 12);
    }

    #[test]
    fn contention_queues_in_virtual_time() {
        // Two clients hammering one node serialize behind its interface.
        let f = FabricConfig::single_node(1 << 20).build();
        let mut a = f.client();
        let mut b = f.client();
        for _ in 0..100 {
            a.read_u64(FarAddr(8)).unwrap();
            b.read_u64(FarAddr(8)).unwrap();
        }
        // Each client saw at least its own service times queueing.
        assert!(a.now_ns() > 100 * 2_000);
    }
}
