//! Pipelined one-sided operations: issue/completion queues with an
//! overlap-aware virtual clock.
//!
//! Real one-sided fabrics hide their ~2 µs round-trip time by keeping many
//! operations in flight: a client posts work-queue descriptors, rings one
//! doorbell, and later drains a completion queue (RDMA QPs, Gen-Z). The
//! synchronous verbs of [`FabricClient`] serialize independent accesses in
//! virtual time even when they target *different* memory nodes, so striping
//! never shows the bandwidth parallelism it exists to provide.
//!
//! [`FabricClient::pipeline`] returns an [`IssueQueue`]. Descriptors are
//! posted with the same semantics as the serial verbs (reads, writes, CAS,
//! FAA, gathers/scatters and `load0`-style indirection), then
//! [`IssueQueue::commit`] rings the doorbell and returns a
//! [`CompletionQueue`] holding one result per descriptor, in issue order.
//!
//! # Overlap-aware accounting
//!
//! Counting is *serial-identical*: every descriptor books the same round
//! trips, messages, bytes and atomics the equivalent serial verb would, so
//! the paper's access-count metric is unchanged by pipelining. Only the
//! *clock* differs:
//!
//! * all descriptors share the doorbell's issue time, so their requests
//!   arrive at the nodes together;
//! * chains to the **same** node stay FIFO-serialized through the node's
//!   work-conserving interface queue ([`MemoryNode::occupy`]) — per-node
//!   bandwidth is never double-counted;
//! * the client clock advances to the **max** completion across
//!   descriptors, not the sum.
//!
//! The difference between the serial-equivalent latency sum and the actual
//! elapsed time is booked as [`AccessStats::overlap_saved_ns`], next to
//! `pipelined_ops` and `doorbells`.
//!
//! # Faults
//!
//! Faults compose with the existing machinery per descriptor: a transient
//! fault retries **that descriptor alone** under the client's
//! [`RetryPolicy`](crate::fault::RetryPolicy), with the usual
//! backoff/jitter charged to the virtual clock. A descriptor that
//! ultimately fails aborts the not-yet-executed tail (the queue enters an
//! error state, as an RDMA QP would) and the commit surfaces
//! [`FabricError::PipelineTorn`] when at least one side-effecting
//! descriptor had already executed — blindly re-ringing the doorbell would
//! duplicate those effects. Completed results remain drainable from the
//! [`CompletionQueue`].
//!
//! [`MemoryNode::occupy`]: crate::node::MemoryNode::occupy
//! [`AccessStats::overlap_saved_ns`]: crate::stats::AccessStats

use crate::addr::FarAddr;
use crate::client::FabricClient;
use crate::error::{FabricError, Result};
use crate::ext::sg::FarIov;
use crate::fabric::IndirectionMode;
use crate::trace::VerbKind;

/// One posted descriptor (owned, so a queue can outlive its sources).
#[derive(Clone, Debug)]
pub enum PipeOp {
    /// Read `len` bytes at `addr` (serial equivalent: [`FabricClient::read`]).
    Read {
        /// Source far address.
        addr: FarAddr,
        /// Bytes to read.
        len: u64,
    },
    /// Write `data` at `addr` (serial equivalent: [`FabricClient::write`]).
    Write {
        /// Destination far address.
        addr: FarAddr,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Read the aligned word at `addr`.
    ReadU64 {
        /// Word address.
        addr: FarAddr,
    },
    /// Write the aligned word at `addr`.
    WriteU64 {
        /// Word address.
        addr: FarAddr,
        /// Value to store.
        value: u64,
    },
    /// Compare-and-swap the word at `addr`; completes with the previous
    /// value.
    Cas {
        /// Word address.
        addr: FarAddr,
        /// Expected value.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Fetch-and-add on the word at `addr`; completes with the previous
    /// value.
    Faa {
        /// Word address.
        addr: FarAddr,
        /// Added value (wrapping).
        delta: u64,
    },
    /// Gather disjoint far buffers into one completion buffer, in iovec
    /// order (serial equivalent: [`FabricClient::rgather`]).
    Gather {
        /// The far iovec.
        iov: Vec<FarIov>,
    },
    /// Scatter one buffer across disjoint far buffers (serial equivalent:
    /// [`FabricClient::wscatter`]; iovec total must equal `data.len()`).
    Scatter {
        /// The far iovec.
        iov: Vec<FarIov>,
        /// Source bytes.
        data: Vec<u8>,
    },
    /// Dereference the pointer at `ptr`, offset the target by `index`
    /// bytes, and read `len` bytes there (serial equivalents:
    /// [`FabricClient::load0`] with `index == 0`,
    /// [`FabricClient::load2`](FabricClient::load2) otherwise). A
    /// cross-node target is forwarded under [`IndirectionMode::Forward`];
    /// under [`IndirectionMode::Error`] the descriptor fails with
    /// [`FabricError::IndirectRemote`].
    Load2 {
        /// Far address of the pointer word.
        ptr: FarAddr,
        /// Byte offset added to the dereferenced pointer.
        index: u64,
        /// Bytes to read at the target.
        len: u64,
    },
    /// Dereference the pointer at `ptr`, offset the target by `index`
    /// bytes, and write `data` there (serial equivalents:
    /// [`FabricClient::store0`] / [`FabricClient::store2`]). Remote-target
    /// handling as for [`PipeOp::Load2`].
    Store2 {
        /// Far address of the pointer word.
        ptr: FarAddr,
        /// Byte offset added to the dereferenced pointer.
        index: u64,
        /// Bytes to write at the target.
        data: Vec<u8>,
    },
    /// Guarded fetch-add-and-indirect-swap (serial equivalent:
    /// [`FabricClient::faai_swap_guarded`]): atomically bump the pointer
    /// at `ptr` by `delta` and swap the old target word with
    /// `replacement`, provided `guard` (same node as `ptr`) holds
    /// `expect` — the §5.3 queue's dequeue verb. Completes with
    /// [`PipeOut::PtrWord`].
    FaaiSwapGuarded {
        /// Far address of the pointer word.
        ptr: FarAddr,
        /// Added to the pointer (wrapping).
        delta: u64,
        /// Word swapped into the old target.
        replacement: u64,
        /// Guard word address (must share `ptr`'s node).
        guard: FarAddr,
        /// Required guard value.
        expect: u64,
    },
}

impl PipeOp {
    /// Whether executing this descriptor mutates far memory (the batch
    /// `mutated` notion: once a side effect has completed, a blind
    /// re-commit would duplicate it — a FAA applied twice, a won CAS
    /// re-reported as lost — so such failures surface as
    /// [`FabricError::PipelineTorn`] instead of being retried).
    fn has_side_effect(&self) -> bool {
        !matches!(
            self,
            PipeOp::Read { .. }
                | PipeOp::ReadU64 { .. }
                | PipeOp::Gather { .. }
                | PipeOp::Load2 { .. }
        )
    }
}

/// Result payload of one completed descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipeOut {
    /// Bytes returned by `Read` / `Gather` / `Load0`.
    Bytes(Vec<u8>),
    /// Word returned by `ReadU64`, or previous value from `Cas` / `Faa`.
    Value(u64),
    /// A write-style descriptor completed.
    Done,
    /// Completion of a [`PipeOp::FaaiSwapGuarded`] descriptor.
    PtrWord {
        /// The pointer's value before the bump.
        ptr: u64,
        /// The target word's value before the swap.
        word: u64,
    },
}

impl PipeOut {
    /// The word value, for `ReadU64`/`Cas`/`Faa` completions.
    ///
    /// # Panics
    ///
    /// Panics if the completion is not a value; pipeline authors know the
    /// shape of their own descriptors.
    pub fn value(&self) -> u64 {
        match self {
            PipeOut::Value(v) => *v,
            other => panic!("pipeline completion {other:?} is not a value"),
        }
    }

    /// The returned bytes, for read-style completions.
    ///
    /// # Panics
    ///
    /// Panics if the completion carries no bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            PipeOut::Bytes(b) => b,
            other => panic!("pipeline completion {other:?} is not bytes"),
        }
    }

    /// Consumes the completion, returning its bytes.
    ///
    /// # Panics
    ///
    /// Panics if the completion carries no bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            PipeOut::Bytes(b) => b,
            other => panic!("pipeline completion {other:?} is not bytes"),
        }
    }

    /// The `(old pointer, old target word)` pair of a
    /// [`PipeOp::FaaiSwapGuarded`] completion.
    ///
    /// # Panics
    ///
    /// Panics on any other completion shape.
    pub fn ptr_word(&self) -> (u64, u64) {
        match self {
            PipeOut::PtrWord { ptr, word } => (*ptr, *word),
            other => panic!("pipeline completion {other:?} is not a pointer/word pair"),
        }
    }
}

/// An issue queue: descriptors posted against one client, executed together
/// by [`commit`](IssueQueue::commit) when the doorbell rings.
pub struct IssueQueue<'c> {
    client: &'c mut FabricClient,
    ops: Vec<PipeOp>,
}

/// The drained completion queue of one doorbell: per-descriptor results in
/// issue order, plus the overall commit status.
#[derive(Debug)]
pub struct CompletionQueue {
    /// One slot per descriptor; `None` means the descriptor was never
    /// attempted (the queue aborted on an earlier failure).
    results: Vec<Option<Result<PipeOut>>>,
    status: Result<()>,
}

impl CompletionQueue {
    /// Overall commit status: `Ok` when every descriptor completed;
    /// [`FabricError::PipelineTorn`] when a failure followed completed
    /// side effects; otherwise the failing descriptor's error.
    pub fn status(&self) -> Result<()> {
        self.status.clone()
    }

    /// Number of posted descriptors.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the doorbell had no descriptors.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Number of descriptors that completed successfully.
    pub fn completed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r, Some(Ok(_))))
            .count()
    }

    /// Number of descriptors that failed or were aborted.
    pub fn failed(&self) -> usize {
        self.len() - self.completed()
    }

    /// Borrows descriptor `index`'s result (`None` if it was aborted
    /// before execution).
    pub fn get(&self, index: usize) -> Option<&Result<PipeOut>> {
        self.results.get(index).and_then(|r| r.as_ref())
    }

    /// Removes and returns descriptor `index`'s result.
    pub fn take(&mut self, index: usize) -> Option<Result<PipeOut>> {
        self.results.get_mut(index).and_then(|r| r.take())
    }

    /// All outputs in issue order, or the commit's error. The all-success
    /// fast path for adopters that treat the doorbell as one verb.
    pub fn into_outputs(self) -> Result<Vec<PipeOut>> {
        self.status?;
        Ok(self
            .results
            .into_iter()
            .map(|r| r.expect("status Ok implies every descriptor completed").expect("checked"))
            .collect())
    }
}

impl FabricClient {
    /// Opens an [`IssueQueue`] on this client. Post descriptors, then ring
    /// the doorbell with [`IssueQueue::commit`].
    pub fn pipeline(&mut self) -> IssueQueue<'_> {
        IssueQueue { client: self, ops: Vec::new() }
    }
}

impl<'c> IssueQueue<'c> {
    /// Posts a descriptor; returns its index (completion slot).
    pub fn post(&mut self, op: PipeOp) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Posts a read of `len` bytes at `addr`.
    pub fn read(&mut self, addr: FarAddr, len: u64) -> usize {
        self.post(PipeOp::Read { addr, len })
    }

    /// Posts a write of `data` at `addr`.
    pub fn write(&mut self, addr: FarAddr, data: &[u8]) -> usize {
        self.post(PipeOp::Write { addr, data: data.to_vec() })
    }

    /// Posts a word read at `addr`.
    pub fn read_u64(&mut self, addr: FarAddr) -> usize {
        self.post(PipeOp::ReadU64 { addr })
    }

    /// Posts a word write at `addr`.
    pub fn write_u64(&mut self, addr: FarAddr, value: u64) -> usize {
        self.post(PipeOp::WriteU64 { addr, value })
    }

    /// Posts a compare-and-swap at `addr`.
    pub fn cas(&mut self, addr: FarAddr, expected: u64, new: u64) -> usize {
        self.post(PipeOp::Cas { addr, expected, new })
    }

    /// Posts a fetch-and-add at `addr`.
    pub fn faa(&mut self, addr: FarAddr, delta: u64) -> usize {
        self.post(PipeOp::Faa { addr, delta })
    }

    /// Posts a gather of disjoint far buffers.
    pub fn gather(&mut self, iov: &[FarIov]) -> usize {
        self.post(PipeOp::Gather { iov: iov.to_vec() })
    }

    /// Posts a scatter of `data` across disjoint far buffers.
    pub fn scatter(&mut self, iov: &[FarIov], data: &[u8]) -> usize {
        self.post(PipeOp::Scatter { iov: iov.to_vec(), data: data.to_vec() })
    }

    /// Posts a pointer-dereferencing read (`load0`).
    pub fn load0(&mut self, ptr: FarAddr, len: u64) -> usize {
        self.post(PipeOp::Load2 { ptr, index: 0, len })
    }

    /// Posts an offset pointer-dereferencing read (`load2`).
    pub fn load2(&mut self, ptr: FarAddr, index: u64, len: u64) -> usize {
        self.post(PipeOp::Load2 { ptr, index, len })
    }

    /// Posts an offset pointer-dereferencing write (`store2`).
    pub fn store2(&mut self, ptr: FarAddr, index: u64, data: &[u8]) -> usize {
        self.post(PipeOp::Store2 { ptr, index, data: data.to_vec() })
    }

    /// Posts a guarded fetch-add-and-indirect-swap (`faai_swap_guarded`).
    pub fn faai_swap_guarded(
        &mut self,
        ptr: FarAddr,
        delta: u64,
        replacement: u64,
        guard: FarAddr,
        expect: u64,
    ) -> usize {
        self.post(PipeOp::FaaiSwapGuarded { ptr, delta, replacement, guard, expect })
    }

    /// Number of posted descriptors.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no descriptors have been posted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Rings the doorbell: executes every posted descriptor with shared
    /// issue time and overlap-aware clock accounting (see the module docs),
    /// and returns the drained [`CompletionQueue`].
    pub fn commit(self) -> CompletionQueue {
        let IssueQueue { client, ops } = self;
        if ops.is_empty() {
            return CompletionQueue { results: Vec::new(), status: Ok(()) };
        }
        client
            .traced(VerbKind::Pipeline, |c| -> Result<CompletionQueue> {
                Ok(commit_inner(c, &ops))
            })
            .expect("pipeline commit itself is infallible")
    }
}

/// Executes one doorbell's descriptors against `c`. Runs inside a single
/// traced [`VerbKind::Pipeline`] verb.
fn commit_inner(c: &mut FabricClient, ops: &[PipeOp]) -> CompletionQueue {
    let one_way = c.fabric().cost().one_way_ns();
    let start_ns = c.now_ns();
    let mut results: Vec<Option<Result<PipeOut>>> = Vec::with_capacity(ops.len());
    let mut max_completion = start_ns;
    let mut serial_sum_ns = 0u64;
    let mut completed = 0usize;
    let mut completed_effects = 0usize;
    let mut first_err: Option<FabricError> = None;

    for op in ops {
        if first_err.is_some() {
            // The queue is in error state: the tail is never executed.
            results.push(None);
            continue;
        }
        // Per-descriptor transparent retry: `retrying` + `begin_attempt`
        // give this descriptor exactly the serial verb's fault handling
        // (fault charges, backoff, `retries`/`giveups` counters), without
        // touching its neighbours. Fault-free descriptors all see the same
        // `arrival()` because nothing below advances the clock.
        let res = c.retrying(|c| {
            c.begin_attempt()?;
            let arrival = c.arrival();
            let (out, finish) = exec_op(c, op, arrival)?;
            Ok((out, finish, arrival))
        });
        match res {
            Ok((out, finish, arrival)) => {
                // Serial-identical counting: one dependent round trip per
                // descriptor (the clock is advanced once, below, to the max
                // completion — that is the only difference from the serial
                // path).
                let stats = c.stats_mut();
                stats.round_trips += 1;
                stats.pipelined_ops += 1;
                let completion = finish + one_way;
                max_completion = max_completion.max(completion);
                serial_sum_ns += completion - (arrival - one_way);
                completed += 1;
                if op.has_side_effect() {
                    completed_effects += 1;
                }
                results.push(Some(Ok(out)));
            }
            Err(e) => {
                first_err = Some(e.clone());
                results.push(Some(Err(e)));
            }
        }
    }

    c.clock_advance_to(max_completion);
    let elapsed = c.now_ns() - start_ns;
    let stats = c.stats_mut();
    stats.doorbells += 1;
    stats.overlap_saved_ns += serial_sum_ns.saturating_sub(elapsed);

    let status = match first_err {
        None => Ok(()),
        Some(e) => {
            if completed_effects > 0 {
                Err(FabricError::PipelineTorn {
                    completed,
                    failed: ops.len() - completed,
                })
            } else {
                Err(e)
            }
        }
    };
    CompletionQueue { results, status }
}

/// Executes one descriptor arriving at `arrival`, charging messages /
/// bytes / atomics exactly as the serial verb would; returns the
/// completion payload and the node-side finish time.
fn exec_op(c: &mut FabricClient, op: &PipeOp, arrival: u64) -> Result<(PipeOut, u64)> {
    match op {
        PipeOp::Read { addr, len } => {
            let (buf, f) = c.exec_read(*addr, *len, arrival)?;
            Ok((PipeOut::Bytes(buf), f))
        }
        PipeOp::Write { addr, data } => {
            let f = c.exec_write(*addr, data, arrival)?;
            Ok((PipeOut::Done, f))
        }
        PipeOp::ReadU64 { addr } => {
            let (v, f) = c.exec_read_u64(*addr, arrival)?;
            Ok((PipeOut::Value(v), f))
        }
        PipeOp::WriteU64 { addr, value } => {
            let f = c.exec_write_u64(*addr, *value, arrival)?;
            Ok((PipeOut::Done, f))
        }
        PipeOp::Cas { addr, expected, new } => {
            let (prev, f) = c.exec_cas(*addr, *expected, *new, arrival)?;
            Ok((PipeOut::Value(prev), f))
        }
        PipeOp::Faa { addr, delta } => {
            let (prev, f) = c.exec_faa(*addr, *delta, arrival)?;
            Ok((PipeOut::Value(prev), f))
        }
        PipeOp::Gather { iov } => {
            let total = check_iov(iov)?;
            let mut out = Vec::with_capacity(total as usize);
            let mut finish = arrival;
            for e in iov {
                let (part, f) = c.exec_read(e.addr, e.len, arrival)?;
                out.extend_from_slice(&part);
                finish = finish.max(f);
            }
            Ok((PipeOut::Bytes(out), finish))
        }
        PipeOp::Scatter { iov, data } => {
            let total = check_iov(iov)?;
            if total != data.len() as u64 {
                return Err(FabricError::BadIovec {
                    reason: "iovec total length must equal the source length",
                });
            }
            let mut finish = arrival;
            let mut done = 0usize;
            for e in iov {
                let f = c.exec_write(e.addr, &data[done..done + e.len as usize], arrival)?;
                done += e.len as usize;
                finish = finish.max(f);
            }
            Ok((PipeOut::Done, finish))
        }
        PipeOp::Load2 { ptr, index, len } => exec_indirect(c, *ptr, *index, None, *len, arrival),
        PipeOp::Store2 { ptr, index, data } => {
            exec_indirect(c, *ptr, *index, Some(data), data.len() as u64, arrival)
        }
        PipeOp::FaaiSwapGuarded { ptr, delta, replacement, guard, expect } => {
            exec_faai_swap_guarded(c, *ptr, *delta, *replacement, *guard, *expect, arrival)
        }
    }
}

/// Pipelined guarded `faai_swap`: one atomic unit at the pointer's home
/// node (guard check, pointer bump, target-word swap), mirroring the
/// serial verb's charges. The descriptor retains the serial verb's
/// atomicity, so pipelining dequeues never opens a read-then-clear window.
fn exec_faai_swap_guarded(
    c: &mut FabricClient,
    ptr_addr: FarAddr,
    delta: u64,
    replacement: u64,
    guard: FarAddr,
    expect: u64,
    arrival: u64,
) -> Result<(PipeOut, u64)> {
    use crate::addr::{NodeId, WORD};
    use std::sync::atomic::Ordering;

    let cost = *c.fabric().cost();
    let mode = c.fabric().config().indirection;
    let fabric = c.fabric().clone();
    let (home_id, ptr_off) = c.word_home(ptr_addr)?;
    let home_phys = c.route(home_id);
    let home = fabric.node(home_phys);
    home.check_alive_at(arrival)?;
    let home_finish = home.occupy(arrival, cost.node_msg_ns + cost.node_ext_ns);
    c.stats_mut().messages += 1;
    let (guard_node, guard_off) = c.word_home(guard)?;
    if guard_node != home_id {
        return Err(FabricError::BadIovec {
            reason: "guard word must live on the pointer's node",
        });
    }
    enum Unit {
        Null,
        Local { ptr: u64, old: u64, slot_off: u64 },
        Remote { ptr: u64, target: FarAddr, node: NodeId },
    }
    let fabric2 = fabric.clone();
    let unit = home.guarded_verb(guard_off, expect, |n| {
        let ptr = n.words_raw(ptr_off)?.load(Ordering::SeqCst);
        if ptr == 0 {
            return Ok(Unit::Null);
        }
        let target = FarAddr(ptr);
        let segs = fabric2.segments(target, WORD)?;
        if segs.iter().any(|s| s.node != home_id) {
            // Remote target: bump the pointer atomically; the swap happens
            // outside the unit (forwarded, weaker atomicity — as serial).
            n.words_raw(ptr_off)?.fetch_add(delta, Ordering::SeqCst);
            let remote = segs.iter().find(|s| s.node != home_id).unwrap();
            return Ok(Unit::Remote { ptr, target, node: remote.node });
        }
        n.words_raw(ptr_off)?.fetch_add(delta, Ordering::SeqCst);
        let seg = segs[0];
        if !target.is_aligned(WORD) {
            return Err(FabricError::Unaligned { addr: target, required: WORD });
        }
        let old = n.words_raw(seg.offset)?.swap(replacement, Ordering::SeqCst);
        Ok(Unit::Local { ptr, old, slot_off: seg.offset })
    });
    c.stats_mut().atomics += 1;
    let service = cost.node_ext_ns + cost.bytes_ns(WORD);
    let finish = home.occupy(home_finish, service);
    c.observe(crate::check::AccessKind::AtomicRead, guard, WORD);
    match unit? {
        Unit::Null => Err(FabricError::NullDeref { pointer_at: ptr_addr }),
        Unit::Local { ptr, old, slot_off } => {
            // Both mirrors fan out in parallel; the ack folds in the slower.
            let f1 = fabric.fire(c.stats_mut(), home_id, ptr_off, WORD, finish);
            let f2 = fabric.fire(c.stats_mut(), home_id, slot_off, WORD, finish);
            let finish = f1.max(f2);
            c.observe(crate::check::AccessKind::AtomicRmw, ptr_addr, WORD);
            c.observe(crate::check::AccessKind::AtomicRmw, FarAddr(ptr), WORD);
            c.stats_mut().bytes_read += WORD;
            Ok((PipeOut::PtrWord { ptr, word: old }, finish))
        }
        Unit::Remote { ptr, target, node } => {
            c.observe(crate::check::AccessKind::AtomicRmw, ptr_addr, WORD);
            let finish = fabric.fire(c.stats_mut(), home_id, ptr_off, WORD, finish);
            if mode == IndirectionMode::Error {
                return Err(FabricError::IndirectRemote { target, target_node: node });
            }
            // Forwarded completion at the remote target (§7.1).
            let seg = fabric.segments(target, WORD)?[0];
            let rphys = c.route(seg.node);
            let rnode = fabric.node(rphys);
            rnode.check_alive_at(arrival)?;
            c.stats_mut().forward_hops += 1;
            c.stats_mut().messages += 1;
            let svc = cost.node_msg_ns + cost.bytes_ns(WORD);
            let f = rnode.occupy(arrival, svc).max(finish) + cost.mem_hop_ns;
            c.stats_mut().atomics += 1;
            let old = rnode.swap_u64(seg.offset, replacement)?;
            let f = fabric.fire(c.stats_mut(), seg.node, seg.offset, WORD, f);
            c.observe(crate::check::AccessKind::AtomicRmw, target, WORD);
            c.stats_mut().bytes_read += WORD;
            Ok((PipeOut::PtrWord { ptr, word: old }, f))
        }
    }
}

/// Pipelined plain-pointer indirect verb (`load0`/`load2`/`store0`/
/// `store2`): mirrors the serial indirect verb's charges — pointer
/// resolution at the home node, target segments extending the home service
/// chain or forwarded with one memory-side hop (§7.1). `write` is `None`
/// for a read of `len` bytes, `Some(data)` for a write.
fn exec_indirect(
    c: &mut FabricClient,
    ptr: FarAddr,
    index: u64,
    write: Option<&[u8]>,
    len: u64,
    arrival: u64,
) -> Result<(PipeOut, u64)> {
    let cost = *c.fabric().cost();
    let mode = c.fabric().config().indirection;
    let fabric = c.fabric().clone();
    let (home_id, ptr_off) = c.word_home(ptr)?;
    let home_phys = c.route(home_id);
    let home = fabric.node(home_phys);
    home.check_alive_at(arrival)?;
    let home_finish = home.occupy(arrival, cost.node_msg_ns + cost.node_ext_ns);
    c.stats_mut().messages += 1;
    let ptr_val = home.read_u64(ptr_off)?;
    if ptr_val == 0 {
        return Err(FabricError::NullDeref { pointer_at: ptr });
    }
    let target = FarAddr(ptr_val + index);
    let segs = fabric.segments(target, len)?;
    if mode == IndirectionMode::Error {
        if let Some(remote) = segs.iter().find(|s| s.node != home_id) {
            return Err(FabricError::IndirectRemote {
                target,
                target_node: remote.node,
            });
        }
    }
    let mut buf = if write.is_none() { vec![0u8; len as usize] } else { Vec::new() };
    let mut finish = home_finish;
    let mut done = 0usize;
    for seg in &segs {
        let phys = c.route(seg.node);
        let node = fabric.node(phys);
        node.check_alive_at(arrival)?;
        let service = cost.node_msg_ns + cost.bytes_ns(seg.len);
        let mut f = if seg.node == home_id {
            node.occupy(home_finish, service)
        } else {
            c.stats_mut().forward_hops += 1;
            c.stats_mut().messages += 1;
            node.occupy(arrival, service).max(home_finish) + cost.mem_hop_ns
        };
        match write {
            None => node.read_bytes(seg.offset, &mut buf[done..done + seg.len as usize])?,
            Some(data) => {
                node.write_bytes(seg.offset, &data[done..done + seg.len as usize])?;
                f = fabric.fire(c.stats_mut(), seg.node, seg.offset, seg.len, f);
            }
        }
        done += seg.len as usize;
        finish = finish.max(f);
    }
    c.observe(crate::check::AccessKind::Read, ptr, crate::addr::WORD);
    match write {
        None => {
            c.stats_mut().bytes_read += len;
            c.observe(crate::check::AccessKind::Read, target, len);
            Ok((PipeOut::Bytes(buf), finish))
        }
        Some(_) => {
            c.stats_mut().bytes_written += len;
            c.observe(crate::check::AccessKind::Write, target, len);
            Ok((PipeOut::Done, finish))
        }
    }
}

fn check_iov(iov: &[FarIov]) -> Result<u64> {
    if iov.is_empty() {
        return Err(FabricError::BadIovec { reason: "iovec must be non-empty" });
    }
    let mut total = 0u64;
    for e in iov {
        if e.len == 0 {
            return Err(FabricError::BadIovec { reason: "iovec entries must be non-empty" });
        }
        total += e.len;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{NodeId, Striping, PAGE, WORD};
    use crate::cost::CostModel;
    use crate::fabric::FabricConfig;
    use crate::fault::FaultPlan;
    use crate::stats::AccessStats;

    fn striped(nodes: u32, cost: CostModel) -> std::sync::Arc<crate::fabric::Fabric> {
        FabricConfig {
            nodes,
            node_capacity: 1 << 20,
            striping: Striping::Striped { stripe: PAGE },
            cost,
            ..FabricConfig::default()
        }
        .build()
    }

    /// Page-aligned addresses landing on distinct nodes of a 4-node
    /// striped map.
    fn spread_addrs(n: u64) -> Vec<FarAddr> {
        (0..n).map(|i| FarAddr(PAGE * (i + 1))).collect()
    }

    #[test]
    fn pipelined_reads_match_serial_counts_but_overlap_time() {
        let addrs = spread_addrs(8);
        let payload = vec![0x5au8; 2048];

        // Serial baseline.
        let f1 = striped(4, CostModel::DEFAULT);
        let mut serial = f1.client();
        for a in &addrs {
            serial.write(*a, &payload).unwrap();
        }
        let s0 = serial.stats();
        let t0 = serial.now_ns();
        let mut serial_data = Vec::new();
        for a in &addrs {
            serial_data.push(serial.read(*a, payload.len() as u64).unwrap());
        }
        let serial_delta = serial.stats().since(&s0);
        let serial_ns = serial.now_ns() - t0;

        // Pipelined run on an identical fresh fabric.
        let f2 = striped(4, CostModel::DEFAULT);
        let mut piped = f2.client();
        for a in &addrs {
            piped.write(*a, &payload).unwrap();
        }
        let p0 = piped.stats();
        let t1 = piped.now_ns();
        let mut q = piped.pipeline();
        for a in &addrs {
            q.read(*a, payload.len() as u64);
        }
        let cq = q.commit();
        cq.status().unwrap();
        let outs = cq.into_outputs().unwrap();
        let piped_delta = piped.stats().since(&p0);
        let piped_ns = piped.now_ns() - t1;

        // Data and access counts are byte-identical to the serial path.
        for (o, s) in outs.iter().zip(serial_data.iter()) {
            assert_eq!(o.bytes(), &s[..]);
        }
        assert_eq!(piped_delta.round_trips, serial_delta.round_trips);
        assert_eq!(piped_delta.messages, serial_delta.messages);
        assert_eq!(piped_delta.bytes_read, serial_delta.bytes_read);
        // Virtual time overlaps: 8 reads over 4 nodes complete well under
        // 8 serial round trips.
        assert!(
            piped_ns * 2 <= serial_ns,
            "pipelined {piped_ns} ns vs serial {serial_ns} ns"
        );
        assert_eq!(piped_delta.doorbells, 1);
        assert_eq!(piped_delta.pipelined_ops, 8);
        // The saved time is the per-descriptor completion-latency sum minus
        // the elapsed time; sibling queueing at the nodes only inflates the
        // per-descriptor latencies, so it bounds the true serial saving
        // from above.
        assert!(
            piped_delta.overlap_saved_ns >= serial_ns - piped_ns,
            "saved {} < serial delta {}",
            piped_delta.overlap_saved_ns,
            serial_ns - piped_ns
        );
    }

    #[test]
    fn same_node_chains_stay_fifo_serialized() {
        // All descriptors target node 0: the interface queue serializes
        // their service, so elapsed >= RTT + n * service.
        let f = striped(1, CostModel::DEFAULT);
        let mut c = f.client();
        let len = 4096u64;
        for i in 1..=4u64 {
            c.write(FarAddr(PAGE * i), &vec![1u8; len as usize]).unwrap();
        }
        let t0 = c.now_ns();
        let mut q = c.pipeline();
        for i in 1..=4u64 {
            q.read(FarAddr(PAGE * i), len);
        }
        q.commit().status().unwrap();
        let elapsed = c.now_ns() - t0;
        let cost = CostModel::DEFAULT;
        let min = cost.far_rtt_ns + 4 * (cost.node_msg_ns + cost.bytes_ns(len));
        assert!(elapsed >= min, "elapsed {elapsed} < FIFO bound {min}");
    }

    #[test]
    fn mixed_ops_complete_with_serial_semantics() {
        let f = striped(4, CostModel::COUNT_ONLY);
        let mut c = f.client();
        c.write_u64(FarAddr(PAGE), 10).unwrap();
        c.write_u64(FarAddr(PAGE * 2), 4).unwrap();
        // Pointer for load0 at PAGE*3, pointing at PAGE (value 10).
        c.write_u64(FarAddr(PAGE * 3), PAGE).unwrap();
        let before = c.stats();
        let mut q = c.pipeline();
        let i_faa = q.faa(FarAddr(PAGE), 5);
        let i_cas = q.cas(FarAddr(PAGE * 2), 4, 9);
        let i_w = q.write_u64(FarAddr(PAGE * 4), 77);
        let i_g = q.gather(&[
            FarIov::new(FarAddr(PAGE), 8),
            FarIov::new(FarAddr(PAGE * 2), 8),
        ]);
        let i_l = q.load0(FarAddr(PAGE * 3), 8);
        let mut cq = q.commit();
        cq.status().unwrap();
        assert_eq!(cq.take(i_faa).unwrap().unwrap().value(), 10);
        assert_eq!(cq.take(i_cas).unwrap().unwrap().value(), 4);
        assert_eq!(cq.take(i_w).unwrap().unwrap(), PipeOut::Done);
        let g = cq.take(i_g).unwrap().unwrap().into_bytes();
        assert_eq!(u64::from_le_bytes(g[0..8].try_into().unwrap()), 15);
        assert_eq!(u64::from_le_bytes(g[8..16].try_into().unwrap()), 9);
        // load0 sees the post-FAA value or the pre-FAA value depending on
        // descriptor order at the node; here FAA (descriptor 0) executes
        // first at the shared arrival, so the target holds 15.
        let l = cq.take(i_l).unwrap().unwrap().into_bytes();
        assert_eq!(u64::from_le_bytes(l.try_into().unwrap()), 15);
        assert_eq!(c.read_u64(FarAddr(PAGE * 4)).unwrap(), 77);
        let d = c.stats().since(&before);
        // faa + cas + write + gather + load0, minus the verification read.
        assert_eq!(d.round_trips, 5 + 1);
        assert_eq!(d.atomics, 2);
        assert_eq!(d.pipelined_ops, 5);
        assert_eq!(d.doorbells, 1);
    }

    #[test]
    fn torn_pipeline_surfaces_partial_completion() {
        // Node 1 is permanently failed; a write that completed on node 0
        // before the failing descriptor makes the commit torn.
        let f = striped(2, CostModel::COUNT_ONLY);
        let mut c = f.client();
        f.node(NodeId(1)).fail();
        let mut q = c.pipeline();
        q.write_u64(FarAddr(PAGE * 2), 1); // stripe 2 -> node 0: completes
        q.write_u64(FarAddr(PAGE), 2); // stripe 1 -> node 1: fails
        q.write_u64(FarAddr(PAGE * 4), 3); // node 0 again: aborted
        let mut cq = q.commit();
        match cq.status() {
            Err(FabricError::PipelineTorn { completed, failed }) => {
                assert_eq!(completed, 1);
                assert_eq!(failed, 2);
            }
            other => panic!("expected PipelineTorn, got {other:?}"),
        }
        assert!(!FabricError::PipelineTorn { completed: 1, failed: 2 }.is_transient());
        // The completed descriptor's result stays drainable; the aborted
        // tail was never attempted.
        assert_eq!(cq.take(0).unwrap().unwrap(), PipeOut::Done);
        assert!(matches!(cq.take(1), Some(Err(_))));
        assert!(cq.take(2).is_none());
        // The completed write really applied; the aborted one did not.
        f.node(NodeId(1)).recover();
        assert_eq!(c.read_u64(FarAddr(PAGE * 2)).unwrap(), 1);
        assert_eq!(c.read_u64(FarAddr(PAGE * 4)).unwrap(), 0);
        // Retries were spent on the failing descriptor alone.
        assert!(c.stats().retries > 0);
        assert_eq!(c.stats().giveups, 1);
    }

    #[test]
    fn read_only_pipeline_failure_is_not_torn() {
        let f = striped(2, CostModel::COUNT_ONLY);
        let mut c = f.client();
        f.node(NodeId(1)).fail();
        let mut q = c.pipeline();
        q.read_u64(FarAddr(PAGE * 2));
        q.read_u64(FarAddr(PAGE));
        let cq = q.commit();
        assert!(
            matches!(cq.status(), Err(FabricError::NodeFailed(_))),
            "reads-only failure surfaces the plain error: {:?}",
            cq.status()
        );
    }

    #[test]
    fn per_descriptor_faults_retry_transparently() {
        let f = FabricConfig {
            nodes: 4,
            node_capacity: 1 << 20,
            striping: Striping::Striped { stripe: PAGE },
            faults: FaultPlan::transient(100_000), // 10 % per attempt
            ..FabricConfig::count_only(1 << 20)
        }
        .build();
        let mut c = f.client();
        for round in 0..50u64 {
            let mut q = c.pipeline();
            for i in 0..8u64 {
                q.write_u64(FarAddr(PAGE * (i + 1)), round * 8 + i);
            }
            q.commit().status().unwrap();
            let mut q = c.pipeline();
            for i in 0..8u64 {
                q.read_u64(FarAddr(PAGE * (i + 1)));
            }
            let outs = q.commit().into_outputs().unwrap();
            for (i, o) in outs.iter().enumerate() {
                assert_eq!(o.value(), round * 8 + i as u64);
            }
        }
        let s = c.stats();
        assert!(s.faults_injected > 0, "plan must have injected faults");
        assert!(s.retries > 0, "descriptors must have retried individually");
        assert_eq!(s.giveups, 0);
        assert_eq!(s.pipelined_ops, 800);
        assert_eq!(s.doorbells, 100);
    }

    #[test]
    fn tracing_attributes_pipeline_verbs_and_reconciles() {
        let f = striped(4, CostModel::DEFAULT);
        let mut c = f.client();
        c.enable_tracing(crate::trace::TraceConfig::default());
        {
            let _s = c.span("pipeline.workload");
            let mut q = c.pipeline();
            for i in 0..8u64 {
                q.write_u64(FarAddr(PAGE * (i + 1)), i);
            }
            q.commit().status().unwrap();
        }
        let r = c.trace_report().unwrap();
        r.reconcile().unwrap_or_else(|field| {
            panic!("pipelined stats diverge from span sums on `{field}`")
        });
        let span = r.spans.iter().find(|s| s.name == "pipeline.workload").unwrap();
        assert_eq!(span.stats.doorbells, 1);
        assert_eq!(span.stats.pipelined_ops, 8);
        assert!(span.stats.overlap_saved_ns > 0);
        assert!(r
            .verbs
            .iter()
            .any(|v| v.kind == VerbKind::Pipeline && v.count == 1));
    }

    #[test]
    fn tracing_is_pure_observation_for_pipelines() {
        let run = |traced: bool| -> (AccessStats, u64) {
            let f = FabricConfig {
                nodes: 4,
                node_capacity: 1 << 20,
                striping: Striping::Striped { stripe: PAGE },
                faults: FaultPlan::transient(50_000),
                ..FabricConfig::default()
            }
            .build();
            let mut c = f.client();
            if traced {
                c.enable_tracing(crate::trace::TraceConfig::default());
            }
            for round in 0..10u64 {
                let mut q = c.pipeline();
                for i in 0..8u64 {
                    q.write_u64(FarAddr(PAGE * (i + 1)), round + i);
                }
                q.commit().status().unwrap();
            }
            (c.stats(), c.now_ns())
        };
        let (plain, plain_ns) = run(false);
        let (traced, traced_ns) = run(true);
        assert_eq!(plain, traced);
        assert_eq!(plain_ns, traced_ns);
    }

    #[test]
    fn empty_commit_is_free() {
        let f = striped(2, CostModel::DEFAULT);
        let mut c = f.client();
        let before = c.stats();
        let t0 = c.now_ns();
        let cq = c.pipeline().commit();
        assert!(cq.is_empty());
        cq.status().unwrap();
        assert_eq!(c.stats(), before);
        assert_eq!(c.now_ns(), t0);
    }

    #[test]
    fn bad_iovec_descriptors_fail_cleanly() {
        let f = striped(2, CostModel::COUNT_ONLY);
        let mut c = f.client();
        let mut q = c.pipeline();
        q.gather(&[]);
        let cq = q.commit();
        assert!(matches!(cq.status(), Err(FabricError::BadIovec { .. })));
    }

    /// Pipelined `load2`/`store2` descriptors book exactly the serial
    /// indirect verb's round trips, messages and bytes — the property the
    /// far-structure adopters (`FarVec::read_ranges` et al.) rely on.
    #[test]
    fn pipelined_indirect_matches_serial_charges() {
        let serial_f = striped(2, CostModel::DEFAULT);
        let piped_f = striped(2, CostModel::DEFAULT);
        // Same layout on both fabrics: a pointer word on node 0 whose
        // target spans the second page (node 1 under PAGE striping).
        for f in [&serial_f, &piped_f] {
            let mut c = f.client();
            c.write_u64(FarAddr(WORD), PAGE).unwrap();
            c.write(FarAddr(PAGE), &vec![7u8; 256]).unwrap();
        }

        let mut sc = serial_f.client();
        let sv = sc.load2(FarAddr(WORD), 64, 128).unwrap();
        sc.store2(FarAddr(WORD), 512, &[9u8; 64]).unwrap();
        let serial = sc.stats();

        let mut pc = piped_f.client();
        let mut q = pc.pipeline();
        q.load2(FarAddr(WORD), 64, 128);
        q.store2(FarAddr(WORD), 512, &[9u8; 64]);
        let cq = q.commit();
        let mut cq = cq;
        assert!(cq.status().is_ok());
        assert_eq!(cq.take(0).unwrap().unwrap().into_bytes(), sv);
        let piped = pc.stats();

        assert_eq!(piped.round_trips, serial.round_trips);
        assert_eq!(piped.messages, serial.messages);
        assert_eq!(piped.bytes_read, serial.bytes_read);
        assert_eq!(piped.bytes_written, serial.bytes_written);
        assert_eq!(piped.forward_hops, serial.forward_hops);
        // Both stores landed: read the target back through either client.
        let back = sc.read(FarAddr(PAGE + 512), 64).unwrap();
        let pback = pc.read(FarAddr(PAGE + 512), 64).unwrap();
        assert_eq!(back, vec![9u8; 64]);
        assert_eq!(pback, back);
    }
}
