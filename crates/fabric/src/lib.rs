//! # farmem-fabric — a simulated far-memory fabric
//!
//! This crate is the substrate of the *Far Memory Data Structures* (HotOS
//! '19) reproduction: a software model of a far-memory interconnect in the
//! style of RDMA or Gen-Z, extended with the paper's proposed hardware
//! primitives.
//!
//! ## Model
//!
//! A [`Fabric`] owns a pool of [`MemoryNode`]s holding word-granular far
//! memory. Compute-side [`FabricClient`]s access it with *one-sided* verbs
//! — no processor near the memory mediates:
//!
//! * baseline verbs (§2): [`read`](FabricClient::read),
//!   [`write`](FabricClient::write), [`cas`](FabricClient::cas),
//!   [`faa`](FabricClient::faa) and fenced
//!   [`batch`](FabricClient::batch)es;
//! * indirect addressing (Fig. 1, §4.1): `load0..2`, `store0..2`, `faai`,
//!   `saai`, `add0..2` — see [`ext::indirect`];
//! * scatter-gather (Fig. 1, §4.2): `rscatter`, `rgather`, `wscatter`,
//!   `wgather` — see [`ext::sg`];
//! * notifications (Fig. 1, §4.3): `notify0`, `notifye`, `notify0d`, with
//!   coalescing, best-effort loss and spike-drop warnings (§7.2), plus a
//!   software [`Broker`] tier.
//!
//! ## Accounting and time
//!
//! Every verb updates the client's [`AccessStats`] (the paper's key metric
//! is far-memory accesses, §3.1) and charges a configurable [`CostModel`]
//! against the client's virtual clock. No experiment in this repository
//! measures wall-clock time.
//!
//! ## Example
//!
//! ```
//! use farmem_fabric::{FabricConfig, FarAddr};
//!
//! let fabric = FabricConfig::single_node(1 << 20).build();
//! let mut client = fabric.client();
//! client.write_u64(FarAddr(64), 4096).unwrap();   // a far pointer
//! client.write_u64(FarAddr(4096), 7).unwrap();    // its target
//! // One far access dereferences the pointer and loads the target:
//! let v = client.load0(FarAddr(64), 8).unwrap();
//! assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod broker;
pub mod check;
pub mod client;
pub mod cost;
pub mod error;
pub mod ext;
pub mod fabric;
pub mod fault;
pub mod node;
pub mod notify;
pub mod pipeline;
pub mod replica;
pub mod sample;
pub mod stats;
pub mod trace;

pub use addr::{AddressMap, FarAddr, NodeId, Segment, Striping, PAGE, WORD};
pub use broker::{Broker, BrokerStats};
pub use check::{Access, AccessKind, CheckObserver};
pub use client::{BatchOp, BatchOut, FabricClient};
pub use cost::{CostModel, SimClock};
pub use error::{FabricError, Result};
pub use ext::sg::FarIov;
pub use fabric::{Fabric, FabricConfig, IndirectionMode};
pub use fault::{FaultPlan, RetryPolicy};
pub use node::{MemoryNode, NodeOccupancy};
pub use notify::{DeliveryPolicy, Event, EventSink, SinkStats, SubId, SubKind};
pub use pipeline::{CompletionQueue, IssueQueue, PipeOp, PipeOut};
pub use replica::{GroupView, ReplicaConfig, FAILOVER_LEASE_NS};
pub use sample::MetricSampler;
pub use stats::AccessStats;
pub use trace::{
    LatencyHistogram, SpanAgg, SpanGuard, SpanSummary, TraceConfig, TraceEvent, TraceReport,
    Tracer, VerbKind, VerbSummary,
};
