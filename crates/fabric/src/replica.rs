//! Replication groups and fenced failover (`farmem-replica`).
//!
//! Far memory sits in its own fault domain (§2): a memory node can
//! crash-stop and take its data with it. This module gives every *logical*
//! node a replication group — the original primary plus `K` replica
//! [`MemoryNode`](crate::node::MemoryNode)s — so permanent node loss
//! becomes survivable:
//!
//! * **Writes/CAS/FAA fan out**: every mutation a verb commits on the
//!   primary is synchronously mirrored to the group's live replicas before
//!   the verb is acknowledged (ack-after-replica-durable). The mirror
//!   messages occupy the replica interfaces *in parallel* — replication
//!   costs roughly one extra memory-side hop, not K round trips — while
//!   each mirror still counts as a fabric message
//!   ([`AccessStats::replica_messages`](crate::stats::AccessStats)).
//! * **Reads** are served by the primary, or round-robined over the whole
//!   group when [`ReplicaConfig::spread_reads`] is on (hot-key spreading;
//!   see DESIGN.md §10 for the consistency caveat).
//! * **Fenced failover**: a verb hitting a crash-stopped primary surfaces
//!   [`FabricError::NodeLost`]. The
//!   client waits one [`ReplicaConfig::failover_lease_ns`] of virtual time
//!   (so every lease the deposed primary's clients held has expired),
//!   then promotes a live replica: promotion bumps the group's
//!   *configuration epoch* — the fencing token — and fences the deposed
//!   node, whose every later verb fails with
//!   [`FabricError::FencedEpoch`]
//!   instead of silently serving stale data. Clients cache a per-group
//!   view `{epoch, primary, members}`; a stale client keeps routing to
//!   the fenced node until the fence error forces a (charged) view
//!   refresh.
//!
//! Promotion is epoch-conditional and therefore idempotent: concurrent
//! clients that suspect the same primary race to
//! [`Fabric::promote`](crate::fabric::Fabric::promote) with the epoch they
//! observed; exactly one bump happens, the losers adopt the winner's view.
//! A replica that misses a mirror (it was failed or lost at mirror time)
//! is evicted from the group — membership only shrinks, so every member
//! is always byte-identical to the primary and *any* member is safe to
//! promote. There is no resync/rejoin protocol (out of scope; DESIGN.md
//! §10).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::addr::NodeId;
use crate::error::{FabricError, Result};

/// Default failover lease: matches `farmem_core::mutex::LEASE_NS`, so by
/// the time a replica is promoted, every lock lease a client of the dead
/// primary could have held has expired (fencing + leases interaction,
/// DESIGN.md §10).
pub const FAILOVER_LEASE_NS: u64 = 100_000_000;

/// Replication policy of a fabric, attached to a
/// [`FabricConfig`](crate::fabric::FabricConfig).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Replicas per logical node (`K`); 0 disables replication entirely
    /// (bit-identical to the unreplicated fabric).
    pub replicas: u32,
    /// Round-robin reads over the whole group instead of always reading
    /// the primary. Spreads hot-key load at the cost of strict
    /// linearizability across concurrent readers (DESIGN.md §10).
    pub spread_reads: bool,
    /// Virtual time a client waits between suspecting a primary
    /// (first [`NodeLost`](crate::error::FabricError::NodeLost)) and
    /// promoting a replica. Bounds unavailability: one failover costs at
    /// most this plus a view refresh.
    pub failover_lease_ns: u64,
}

impl ReplicaConfig {
    /// Replication disabled — the default.
    pub const NONE: ReplicaConfig = ReplicaConfig {
        replicas: 0,
        spread_reads: false,
        failover_lease_ns: FAILOVER_LEASE_NS,
    };

    /// `k` replicas per logical node, primary reads, default lease.
    pub fn mirrored(k: u32) -> ReplicaConfig {
        ReplicaConfig { replicas: k, ..ReplicaConfig::NONE }
    }

    /// Whether any replication state exists at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.replicas > 0
    }
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig::NONE
    }
}

/// A client's (or inspector's) snapshot of one replication group's
/// configuration. Clients cache these and only refresh when a fence or
/// failover forces them to — that staleness window is the whole point of
/// the fencing epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupView {
    /// Configuration epoch (the fencing token). Bumped by every promotion.
    pub epoch: u64,
    /// Physical node currently serving as primary.
    pub primary: NodeId,
    /// All live members (primary first at epoch 0; order is stable
    /// afterwards). Reads may be spread over these.
    pub members: Vec<NodeId>,
}

/// One group's authoritative state (the fabric-side "configuration
/// service"; in a real deployment this is a metadata service or the
/// interconnect's routing table).
struct GroupState {
    epoch: u64,
    primary: NodeId,
    members: Vec<NodeId>,
}

/// Authoritative replication state of a fabric: one group per logical
/// node, plus lock-free mirrors of each group's epoch and primary for the
/// verb hot path.
pub(crate) struct GroupTable {
    groups: Vec<Mutex<GroupState>>,
    /// Current primary of each group (physical node id), readable without
    /// the group lock on every mirrored mutation.
    primaries: Vec<AtomicU32>,
    /// Current epoch of each group, ditto.
    epochs: Vec<AtomicU64>,
}

impl GroupTable {
    /// Builds the initial configuration: group `g`'s primary is physical
    /// node `g`, its replicas are physical nodes `logical + g*k + r`.
    pub(crate) fn new(logical: u32, k: u32) -> GroupTable {
        let mut groups = Vec::with_capacity(logical as usize);
        let mut primaries = Vec::with_capacity(logical as usize);
        let mut epochs = Vec::with_capacity(logical as usize);
        for g in 0..logical {
            let mut members = vec![NodeId(g)];
            for r in 0..k {
                members.push(NodeId(logical + g * k + r));
            }
            groups.push(Mutex::new(GroupState {
                epoch: 0,
                primary: NodeId(g),
                members,
            }));
            primaries.push(AtomicU32::new(g));
            epochs.push(AtomicU64::new(0));
        }
        GroupTable { groups, primaries, epochs }
    }

    /// Current primary (physical) of group `g`, without the group lock.
    #[inline]
    pub(crate) fn primary(&self, g: NodeId) -> NodeId {
        NodeId(self.primaries[g.0 as usize].load(Ordering::SeqCst))
    }

    /// Current configuration epoch of group `g`, without the group lock.
    #[inline]
    pub(crate) fn epoch(&self, g: NodeId) -> u64 {
        self.epochs[g.0 as usize].load(Ordering::SeqCst)
    }

    /// Snapshot of group `g`'s configuration.
    pub(crate) fn view(&self, g: NodeId) -> GroupView {
        let s = self.groups[g.0 as usize].lock().unwrap();
        GroupView { epoch: s.epoch, primary: s.primary, members: s.members.clone() }
    }

    /// Members of group `g` other than its primary (the mirror targets).
    pub(crate) fn replicas_of(&self, g: NodeId) -> Vec<NodeId> {
        let s = self.groups[g.0 as usize].lock().unwrap();
        s.members.iter().copied().filter(|&m| m != s.primary).collect()
    }

    /// Drops `phys` from group `g`'s membership (a replica that missed a
    /// mirror or crash-stopped; it can never be promoted). The primary
    /// cannot be evicted — deposing the primary is [`promote`]'s job.
    ///
    /// [`promote`]: GroupTable::promote
    pub(crate) fn evict(&self, g: NodeId, phys: NodeId) {
        let mut s = self.groups[g.0 as usize].lock().unwrap();
        if phys != s.primary {
            s.members.retain(|&m| m != phys);
        }
    }

    /// Promotes a live replica of group `g`, conditioned on the caller
    /// having observed configuration epoch `observed_epoch`.
    ///
    /// Exactly one of the racing suspectors wins: if the epoch already
    /// moved past `observed_epoch`, promotion already happened and the
    /// current view is returned unchanged (idempotent adoption). On a win
    /// the deposed primary is fenced at the *new* epoch, dropped from the
    /// membership, and the first promotable member (not lost, not failed
    /// at `now_ns`) becomes primary. With no promotable member left the
    /// group is dead and the caller gets the loss back.
    pub(crate) fn promote(
        &self,
        fabric: &crate::fabric::Fabric,
        g: NodeId,
        observed_epoch: u64,
        now_ns: u64,
    ) -> Result<GroupView> {
        let mut s = self.groups[g.0 as usize].lock().unwrap();
        if s.epoch != observed_epoch {
            return Ok(GroupView {
                epoch: s.epoch,
                primary: s.primary,
                members: s.members.clone(),
            });
        }
        let deposed = s.primary;
        let candidate = s
            .members
            .iter()
            .copied()
            .find(|&m| {
                m != deposed && {
                    let n = fabric.node(m);
                    !n.is_lost_at(now_ns) && n.check_alive().is_ok() && !n.is_fenced()
                }
            })
            .ok_or(FabricError::NodeLost(deposed))?;
        let epoch = s.epoch + 1;
        // Fence first, then publish the new configuration: no window where
        // both the old and the new primary would accept writes.
        fabric.node(deposed).fence(epoch);
        s.members.retain(|&m| m != deposed);
        s.primary = candidate;
        s.epoch = epoch;
        self.primaries[g.0 as usize].store(candidate.0, Ordering::SeqCst);
        self.epochs[g.0 as usize].store(epoch, Ordering::SeqCst);
        Ok(GroupView { epoch, primary: candidate, members: s.members.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;

    fn replicated(k: u32) -> std::sync::Arc<crate::fabric::Fabric> {
        FabricConfig {
            replication: ReplicaConfig::mirrored(k),
            ..FabricConfig::count_only(1 << 20)
        }
        .build()
    }

    #[test]
    fn initial_groups_map_logical_to_primary() {
        let f = replicated(2);
        let v = f.group_view(NodeId(0));
        assert_eq!(v.epoch, 0);
        assert_eq!(v.primary, NodeId(0));
        assert_eq!(v.members, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(f.nodes().len(), 3, "1 logical x (1 + K) physical");
    }

    #[test]
    fn promote_bumps_epoch_fences_and_is_idempotent() {
        let f = replicated(2);
        f.node(NodeId(0)).crash_permanent();
        let v = f.promote(NodeId(0), 0, 0).unwrap();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.primary, NodeId(1));
        assert!(!v.members.contains(&NodeId(0)));
        assert!(f.node(NodeId(0)).is_fenced());
        // A racing suspector with the stale epoch adopts, not re-promotes.
        let v2 = f.promote(NodeId(0), 0, 0).unwrap();
        assert_eq!(v2, v);
        // The fenced node refuses verbs with the fencing error.
        assert!(matches!(
            f.node(NodeId(0)).check_alive_at(5),
            Err(FabricError::FencedEpoch { epoch: 1, .. })
        ));
    }

    #[test]
    fn promotion_skips_dead_replicas_and_reports_group_death() {
        let f = replicated(2);
        f.node(NodeId(0)).crash_permanent();
        f.node(NodeId(1)).crash_permanent();
        let v = f.promote(NodeId(0), 0, 0).unwrap();
        assert_eq!(v.primary, NodeId(2), "first live member wins");
        f.node(NodeId(2)).crash_permanent();
        assert!(matches!(
            f.promote(NodeId(0), 1, 0),
            Err(FabricError::NodeLost(_))
        ));
    }
}
