//! Deterministic fault injection and transparent retry (chaos fabric).
//!
//! Far memory sits in a separate fault domain (§2): nodes fail
//! independently of clients, and real one-sided fabrics surface *transient*
//! completion errors and timeouts that clients are expected to retry. The
//! seed fabric modelled only permanent node failure; this module adds the
//! rest of the taxonomy so every experiment can also be audited under
//! faults:
//!
//! * **transient verb failures** — a request is dropped before the node
//!   executes it and the client sees [`FabricError::Transient`]
//!   (retry-safe by construction: *fail-before-execution*);
//! * **timeouts** — like a transient failure, but the client burns
//!   [`FaultPlan::timeout_ns`] of virtual time before noticing
//!   ([`FabricError::Timeout`]);
//! * **latency spikes** — the verb succeeds but costs
//!   [`FaultPlan::spike_ns`] extra virtual nanoseconds;
//! * **timed node crash windows** — scheduled on a
//!   [`MemoryNode`](crate::node::MemoryNode) via
//!   [`schedule_crash`](crate::node::MemoryNode::schedule_crash); any verb
//!   whose arrival falls inside a window fails with
//!   [`FabricError::NodeFailed`], and the node recovers once virtual time
//!   moves past the window.
//!
//! All randomness is a per-client xorshift64* stream seeded from
//! `FaultPlan::seed ^ client-id`, so a run is a pure function of the
//! configuration: the same seed injects the same faults at the same verbs.
//!
//! The injection model is deliberately *fail-before-execution*: an injected
//! fault drops the request before the node performs any side effect, which
//! makes every verb — including non-idempotent atomics like `faa` and
//! `saai` — safe to retry. Real fabrics can also lose *completions* of
//! executed requests; modelling that would make blind retry of atomics
//! unsound and is out of scope (see DESIGN.md, "Fault model").
//!
//! [`FabricError::Transient`]: crate::error::FabricError::Transient
//! [`FabricError::Timeout`]: crate::error::FabricError::Timeout
//! [`FabricError::NodeFailed`]: crate::error::FabricError::NodeFailed

/// A seeded, per-verb fault-injection plan, attached to a
/// [`FabricConfig`](crate::fabric::FabricConfig).
///
/// Probabilities are in parts per million and are evaluated independently
/// per verb *attempt* (a retried verb re-rolls). The plan is `Copy` so the
/// config stays cheap to clone; timed node crash windows, which need
/// per-node state, live on the nodes themselves
/// ([`schedule_crash`](crate::node::MemoryNode::schedule_crash)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Probability (ppm) that a verb attempt fails with
    /// [`Transient`](crate::error::FabricError::Transient).
    pub transient_ppm: u32,
    /// Probability (ppm) that a verb attempt fails with
    /// [`Timeout`](crate::error::FabricError::Timeout).
    pub timeout_ppm: u32,
    /// Probability (ppm) that a verb attempt suffers a latency spike.
    pub spike_ppm: u32,
    /// Virtual time burned by one timeout before the client notices.
    pub timeout_ns: u64,
    /// Extra virtual latency of one spike.
    pub spike_ns: u64,
    /// Seed of the deterministic fault stream (mixed with the client id).
    pub seed: u64,
    /// Node to permanently crash-stop at [`crash_at_ns`](FaultPlan::crash_at_ns)
    /// (applied when the fabric is built; ignored while `crash_at_ns` is
    /// `u64::MAX`).
    pub crash_node: u32,
    /// Virtual time of the scheduled permanent crash-stop of
    /// [`crash_node`](FaultPlan::crash_node); `u64::MAX` (the default)
    /// schedules none. Unlike the transient taxonomy above this fault
    /// never heals: verbs fail with
    /// [`FabricError::NodeLost`](crate::error::FabricError::NodeLost) and
    /// the client must fail over (or give up immediately), not retry.
    pub crash_at_ns: u64,
}

impl FaultPlan {
    /// No faults at all — the default.
    pub const NONE: FaultPlan = FaultPlan {
        transient_ppm: 0,
        timeout_ppm: 0,
        spike_ppm: 0,
        timeout_ns: 50_000,
        spike_ns: 20_000,
        seed: 0xfa17,
        crash_node: 0,
        crash_at_ns: u64::MAX,
    };

    /// A plan that permanently crash-stops logical node `node` at virtual
    /// time `at_ns` (and injects nothing else). Compose with other fault
    /// kinds via [`with_crash_permanent`](FaultPlan::with_crash_permanent).
    pub fn crash_permanent(node: crate::addr::NodeId, at_ns: u64) -> FaultPlan {
        FaultPlan::NONE.with_crash_permanent(node, at_ns)
    }

    /// Same plan, plus a permanent crash-stop of `node` at `at_ns` — e.g.
    /// a chaos plan of transient faults with one mid-workload node loss.
    pub fn with_crash_permanent(self, node: crate::addr::NodeId, at_ns: u64) -> FaultPlan {
        FaultPlan { crash_node: node.0, crash_at_ns: at_ns, ..self }
    }

    /// A plan injecting transient failures (two thirds) and timeouts (one
    /// third) at `ppm` parts per million per verb attempt, plus spikes at
    /// half that rate.
    pub fn transient(ppm: u32) -> FaultPlan {
        FaultPlan {
            transient_ppm: ppm - ppm / 3,
            timeout_ppm: ppm / 3,
            spike_ppm: ppm / 2,
            ..FaultPlan::NONE
        }
    }

    /// Same plan, different deterministic fault stream.
    pub fn with_seed(self, seed: u64) -> FaultPlan {
        FaultPlan { seed, ..self }
    }

    /// Whether any fault kind has a nonzero probability.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.transient_ppm > 0 || self.timeout_ppm > 0 || self.spike_ppm > 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Client-side retry policy for transient verb failures.
///
/// Every public verb of [`FabricClient`](crate::client::FabricClient) is
/// wrapped transparently: on a transient error
/// ([`FabricError::is_transient`](crate::error::FabricError::is_transient))
/// the client backs off exponentially — charged to its *virtual* clock, so
/// backoff also drives recovery from timed node crash windows and lease
/// expiry in `farmem-core` — and reissues the verb, up to
/// [`max_attempts`](RetryPolicy::max_attempts) attempts. Retries and
/// give-ups are counted in
/// [`AccessStats`](crate::stats::AccessStats::retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per verb (1 = no retry).
    pub max_attempts: u32,
    /// First backoff, in virtual nanoseconds.
    pub base_backoff_ns: u64,
    /// Backoff cap; the delay doubles until it reaches this.
    pub max_backoff_ns: u64,
    /// Add a seeded random jitter of up to half the current backoff.
    pub jitter: bool,
}

impl RetryPolicy {
    /// The default policy: 8 attempts, 1 µs → 64 µs exponential backoff
    /// with jitter. The full backoff budget (~127 µs plus jitter) is what a
    /// crash window must be shorter than for transparent recovery.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_attempts: 8,
        base_backoff_ns: 1_000,
        max_backoff_ns: 64_000,
        jitter: true,
    };

    /// No retries: every transient fault surfaces immediately.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base_backoff_ns: 0,
        max_backoff_ns: 0,
        jitter: false,
    };
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT
    }
}

/// The per-client deterministic fault stream: a xorshift64* generator
/// (same family as the notification sinks' drop stream).
#[derive(Clone, Copy, Debug)]
pub(crate) struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub(crate) fn new(seed: u64) -> FaultRng {
        // Scramble the raw seed (splitmix64 finalizer): adjacent seeds —
        // plan seed ^ client id produces runs of them — must yield
        // unrelated streams, and xorshift needs a nonzero state.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        FaultRng { state: (z ^ (z >> 31)) | 1 }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A roll in `[0, 1_000_000)` for ppm comparisons.
    pub(crate) fn roll_ppm(&mut self) -> u64 {
        self.next() % 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_disabled() {
        assert!(!FaultPlan::NONE.enabled());
        assert!(FaultPlan::transient(10_000).enabled());
    }

    #[test]
    fn transient_split_sums_to_rate() {
        let p = FaultPlan::transient(9_999);
        assert_eq!(p.transient_ppm + p.timeout_ppm, 9_999);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let mut c = FaultRng::new(43);
        let sa: Vec<u64> = (0..8).map(|_| a.roll_ppm()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.roll_ppm()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.roll_ppm()).collect();
        assert_eq!(sa, sb, "same seed, same stream");
        assert_ne!(sa, sc, "different seed, different stream");
    }
}
