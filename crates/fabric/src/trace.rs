//! farmem-trace: span-attributed tracing of far-memory accesses.
//!
//! The paper's argument is about *where far accesses come from* (§3.1,
//! §5): a flat [`AccessStats`] total cannot say whether an HT-tree `get`'s
//! round trips went to lock acquisition, traversal, or retry
//! amplification. This module attributes every verb to a named operation
//! **span**, all in virtual time:
//!
//! * **events** — one per completed verb (read/write/atomic/batch/
//!   indirect/scatter-gather/notify), carrying the verb kind, virtual
//!   start/end time, success flag and the exact [`AccessStats`] delta it
//!   caused, kept in a bounded ring;
//! * **spans** — RAII guards ([`SpanGuard`]) opened by data-structure
//!   operations (`httree.get`, `queue.enqueue`, `mutex.lock`, …) with
//!   parent/child nesting. Each span accumulates the stats of the verbs
//!   issued while it is the innermost open span (*self* stats), so the
//!   per-span sums plus the unattributed remainder reconcile **exactly**
//!   with the client's flat counters;
//! * **histograms** — log₂-bucketed virtual-time latency distributions
//!   (p50/p99/max) per verb kind and per span name;
//! * **exporters** — JSON-lines and Chrome trace-event format
//!   ([`Tracer::chrome_trace`]) keyed on virtual time, so a whole run
//!   opens in Perfetto / `chrome://tracing`.
//!
//! Tracing is cheap-by-default: a disabled tracer is a branch on an
//! `Option` in the client and adds **zero fabric accesses** either way —
//! the tracer only observes counters the client already maintains.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::stats::AccessStats;

/// Classification of one traced verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerbKind {
    /// One-sided reads (`read`, `read_u64`, `rscatter`'s far leg).
    Read,
    /// One-sided writes (`write`, `write_u64`).
    Write,
    /// Fabric atomics issued directly (`cas`, `faa`).
    Atomic,
    /// Fenced batches (`batch`).
    Batch,
    /// Unsignaled posted ops (`post_write_u64`, `post_faa_u64`).
    Posted,
    /// Indirect-addressing verbs (`load*`, `store*`, `faai*`, `saai*`,
    /// `add*`, §4.1).
    Indirect,
    /// Scatter-gather verbs (`rscatter`, `rgather`, `wscatter`,
    /// `wgather`, §4.2).
    ScatterGather,
    /// Subscription management (`notify0`, `notifye`, `notify0d`,
    /// `unsubscribe`, §4.3).
    Notify,
    /// Pipelined doorbells: an [`IssueQueue`](crate::pipeline::IssueQueue)
    /// commit draining many descriptors under one overlap-aware clock
    /// charge.
    Pipeline,
}

impl VerbKind {
    /// Every kind, in a stable order.
    pub const ALL: [VerbKind; 9] = [
        VerbKind::Read,
        VerbKind::Write,
        VerbKind::Atomic,
        VerbKind::Batch,
        VerbKind::Posted,
        VerbKind::Indirect,
        VerbKind::ScatterGather,
        VerbKind::Notify,
        VerbKind::Pipeline,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            VerbKind::Read => "read",
            VerbKind::Write => "write",
            VerbKind::Atomic => "atomic",
            VerbKind::Batch => "batch",
            VerbKind::Posted => "posted",
            VerbKind::Indirect => "indirect",
            VerbKind::ScatterGather => "scatter_gather",
            VerbKind::Notify => "notify",
            VerbKind::Pipeline => "pipeline",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("kind listed in ALL")
    }
}

/// Sizing of a tracer's bounded buffers.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Maximum retained verb events; beyond it the oldest are dropped
    /// (counted in [`TraceReport::events_dropped`]). Aggregates keep
    /// counting regardless.
    pub event_capacity: usize,
    /// Maximum retained *closed* spans (for export); aggregation by span
    /// name is unaffected by this cap.
    pub span_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { event_capacity: 1 << 16, span_capacity: 1 << 14 }
    }
}

/// One recorded verb.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number (survives ring eviction).
    pub seq: u64,
    /// Verb classification.
    pub kind: VerbKind,
    /// Innermost open span when the verb completed (`0` = unattributed).
    pub span: u32,
    /// Virtual time at which the verb was issued.
    pub start_ns: u64,
    /// Virtual time at which the verb completed (client clock).
    pub end_ns: u64,
    /// Whether the verb returned `Ok` (after any transparent retries).
    pub ok: bool,
    /// Exact counter delta the verb caused, including its retries.
    pub delta: AccessStats,
}

/// A closed span, as retained for export.
#[derive(Clone, Debug)]
pub struct ClosedSpan {
    /// Span identifier (unique per tracer, starting at 1).
    pub id: u32,
    /// Parent span id (`0` = top-level).
    pub parent: u32,
    /// Static span name (e.g. `"httree.get"`).
    pub name: &'static str,
    /// Virtual open time.
    pub start_ns: u64,
    /// Virtual close time (last traced activity inside the span).
    pub end_ns: u64,
    /// *Self* stats: verbs issued while this span was innermost.
    pub stats: AccessStats,
    /// Number of verbs attributed to this span.
    pub events: u64,
}

struct OpenSpan {
    id: u32,
    parent: u32,
    name: &'static str,
    start_ns: u64,
    stats: AccessStats,
    events: u64,
}

/// Log₂-bucketed latency histogram over virtual nanoseconds.
///
/// Bucket `b` holds values with `b` significant bits (`0` holds exact
/// zeros), so percentiles are exact to within a factor of two — plenty for
/// attributing microseconds-scale far latencies.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn add(&mut self, ns: u64) {
        let b = if ns == 0 { 0 } else { (64 - ns.leading_zeros()) as usize };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Largest recorded duration.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`), reported as the midpoint of its
    /// log₂ bucket and clamped to the observed maximum.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = match b {
                    0 => 0,
                    1 => 1,
                    b => 3u64 << (b - 2), // midpoint of [2^(b-1), 2^b)
                };
                return mid.min(self.max);
            }
        }
        self.max
    }

    fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Aggregate over all spans sharing one name.
#[derive(Clone, Debug, Default)]
pub struct SpanAgg {
    /// Closed spans folded in.
    pub count: u64,
    /// Sum of the spans' *self* stats.
    pub stats: AccessStats,
    /// Distribution of span durations (virtual ns).
    pub latency: LatencyHistogram,
    /// Verbs attributed across all these spans.
    pub events: u64,
}

struct TracerInner {
    cfg: TraceConfig,
    client_id: u32,
    /// Client counters at enable time; reports are deltas against this.
    base_stats: AccessStats,
    enabled_at_ns: u64,
    seq: u64,
    events: VecDeque<TraceEvent>,
    events_dropped: u64,
    open: Vec<OpenSpan>,
    next_span_id: u32,
    closed: VecDeque<ClosedSpan>,
    spans_dropped: u64,
    agg: BTreeMap<&'static str, SpanAgg>,
    unattributed: AccessStats,
    unattributed_events: u64,
    verb_hist: [LatencyHistogram; 9],
    verb_count: [u64; 9],
    /// Virtual time of the last traced activity; closes spans whose RAII
    /// guard cannot reach the client clock.
    last_activity_ns: u64,
}

/// Handle on one client's trace state (cheaply cloneable; the [`SpanGuard`]s
/// hold clones).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// Creates a tracer for client `client_id` whose report baseline is
    /// `base_stats` at virtual time `now_ns`.
    pub fn new(cfg: TraceConfig, client_id: u32, base_stats: AccessStats, now_ns: u64) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                cfg,
                client_id,
                base_stats,
                enabled_at_ns: now_ns,
                seq: 0,
                events: VecDeque::new(),
                events_dropped: 0,
                open: Vec::new(),
                next_span_id: 1,
                closed: VecDeque::new(),
                spans_dropped: 0,
                agg: BTreeMap::new(),
                unattributed: AccessStats::new(),
                unattributed_events: 0,
                verb_hist: Default::default(),
                verb_count: [0; 9],
                last_activity_ns: now_ns,
            })),
        }
    }

    /// Records one completed verb with its exact counter delta.
    pub(crate) fn record_verb(
        &self,
        kind: VerbKind,
        start_ns: u64,
        end_ns: u64,
        delta: AccessStats,
        ok: bool,
    ) {
        let mut g = self.inner.lock().unwrap();
        g.last_activity_ns = g.last_activity_ns.max(end_ns);
        let span = match g.open.last_mut() {
            Some(s) => {
                s.stats.merge(&delta);
                s.events += 1;
                s.id
            }
            None => {
                g.unattributed.merge(&delta);
                g.unattributed_events += 1;
                0
            }
        };
        let k = kind.index();
        g.verb_hist[k].add(end_ns.saturating_sub(start_ns));
        g.verb_count[k] += 1;
        g.seq += 1;
        let seq = g.seq;
        if g.events.len() >= g.cfg.event_capacity {
            g.events.pop_front();
            g.events_dropped += 1;
        }
        g.events.push_back(TraceEvent { seq, kind, span, start_ns, end_ns, ok, delta });
    }

    /// Attributes a counter delta that has no verb event of its own (near
    /// accesses, notification drains) to the innermost open span.
    pub(crate) fn charge(&self, delta: AccessStats, now_ns: u64) {
        let mut g = self.inner.lock().unwrap();
        g.last_activity_ns = g.last_activity_ns.max(now_ns);
        match g.open.last_mut() {
            Some(s) => s.stats.merge(&delta),
            None => g.unattributed.merge(&delta),
        }
    }

    /// Opens a span; returns its id. Prefer
    /// [`FabricClient::span`](crate::FabricClient::span), which pairs this
    /// with an RAII guard.
    pub fn open_span(&self, name: &'static str, now_ns: u64) -> u32 {
        let mut g = self.inner.lock().unwrap();
        g.last_activity_ns = g.last_activity_ns.max(now_ns);
        let id = g.next_span_id;
        g.next_span_id += 1;
        let parent = g.open.last().map_or(0, |s| s.id);
        g.open.push(OpenSpan {
            id,
            parent,
            name,
            start_ns: now_ns,
            stats: AccessStats::new(),
            events: 0,
        });
        id
    }

    /// Closes span `id`, folding it into the per-name aggregate. The close
    /// time is the last traced activity (guards have no clock access);
    /// out-of-order closes are tolerated.
    pub fn close_span(&self, id: u32) {
        let mut g = self.inner.lock().unwrap();
        let Some(pos) = g.open.iter().rposition(|s| s.id == id) else { return };
        let s = g.open.remove(pos);
        let end_ns = g.last_activity_ns.max(s.start_ns);
        let closed = ClosedSpan {
            id: s.id,
            parent: s.parent,
            name: s.name,
            start_ns: s.start_ns,
            end_ns,
            stats: s.stats,
            events: s.events,
        };
        let agg = g.agg.entry(s.name).or_default();
        agg.count += 1;
        agg.stats.merge(&closed.stats);
        agg.latency.add(end_ns - closed.start_ns);
        agg.events += closed.events;
        if g.closed.len() >= g.cfg.span_capacity {
            g.closed.pop_front();
            g.spans_dropped += 1;
        }
        g.closed.push_back(closed);
    }

    /// Builds the attribution report. `current_stats` must be the owning
    /// client's live counters; the report's `total` is the delta since the
    /// tracer was enabled, and `spans + unattributed == total` holds
    /// field-for-field once every span is closed.
    pub fn report(&self, current_stats: AccessStats) -> TraceReport {
        let g = self.inner.lock().unwrap();
        let mut spans: Vec<SpanSummary> = g
            .agg
            .iter()
            .map(|(name, a)| SpanSummary {
                name,
                count: a.count,
                events: a.events,
                stats: a.stats,
                p50_ns: a.latency.quantile_ns(0.50),
                p99_ns: a.latency.quantile_ns(0.99),
                max_ns: a.latency.max_ns(),
                mean_ns: a.latency.mean_ns(),
            })
            .collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.stats.round_trips));
        let verbs = VerbKind::ALL
            .iter()
            .filter(|k| g.verb_count[k.index()] > 0)
            .map(|k| VerbSummary {
                kind: *k,
                count: g.verb_count[k.index()],
                p50_ns: g.verb_hist[k.index()].quantile_ns(0.50),
                p99_ns: g.verb_hist[k.index()].quantile_ns(0.99),
                max_ns: g.verb_hist[k.index()].max_ns(),
                mean_ns: g.verb_hist[k.index()].mean_ns(),
            })
            .collect();
        // Anything still open has not been folded into `agg`; surface it
        // so reconciliation failures point at the leak.
        let mut open_stats = AccessStats::new();
        for s in &g.open {
            open_stats.merge(&s.stats);
        }
        TraceReport {
            client_id: g.client_id,
            enabled_at_ns: g.enabled_at_ns,
            total: current_stats.since(&g.base_stats),
            spans,
            verbs,
            unattributed: g.unattributed,
            unattributed_events: g.unattributed_events,
            open_spans: g.open.len(),
            open_stats,
            events_recorded: g.seq,
            events_dropped: g.events_dropped,
            spans_dropped: g.spans_dropped,
        }
    }

    /// Exports retained events and closed spans as JSON-lines: one object
    /// per line, `{"type":"span",…}` or `{"type":"verb",…}`.
    pub fn jsonl(&self) -> String {
        let g = self.inner.lock().unwrap();
        let mut out = String::new();
        for s in &g.closed {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\
                 \"start_ns\":{},\"end_ns\":{},\"events\":{},\"stats\":{{{}}}}}\n",
                s.id,
                s.parent,
                json_escape(s.name),
                s.start_ns,
                s.end_ns,
                s.events,
                stats_json(&s.stats),
            ));
        }
        for e in &g.events {
            out.push_str(&format!(
                "{{\"type\":\"verb\",\"seq\":{},\"kind\":\"{}\",\"span\":{},\
                 \"start_ns\":{},\"end_ns\":{},\"ok\":{},\"stats\":{{{}}}}}\n",
                e.seq,
                e.kind.name(),
                e.span,
                e.start_ns,
                e.end_ns,
                e.ok,
                stats_json(&e.delta),
            ));
        }
        out
    }

    /// Exports retained events and closed spans in Chrome trace-event
    /// format (complete `"ph":"X"` events, microsecond timestamps on the
    /// virtual clock), loadable in Perfetto / `chrome://tracing`. Spans
    /// and the verbs inside them nest visually on the client's track.
    pub fn chrome_trace(&self) -> String {
        let g = self.inner.lock().unwrap();
        let pid = g.client_id;
        let mut parts: Vec<String> = Vec::with_capacity(g.closed.len() + g.events.len());
        for s in &g.closed {
            parts.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{},{}}}}}",
                json_escape(s.name),
                micros(s.start_ns),
                micros(s.end_ns - s.start_ns),
                pid,
                pid,
                s.id,
                s.parent,
                stats_json(&s.stats),
            ));
        }
        for e in &g.events {
            parts.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"verb\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"ok\":{},{}}}}}",
                e.kind.name(),
                micros(e.start_ns),
                micros(e.end_ns.saturating_sub(e.start_ns)),
                pid,
                pid,
                e.span,
                e.ok,
                stats_json(&e.delta),
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
            parts.join(",")
        )
    }

    /// Merges another tracer's per-name aggregates into a combined map —
    /// used by multi-client drivers to report fleet-wide attribution.
    pub fn merge_aggregates(&self, into: &mut BTreeMap<&'static str, SpanAgg>) {
        let g = self.inner.lock().unwrap();
        for (name, a) in &g.agg {
            let t = into.entry(name).or_default();
            t.count += a.count;
            t.stats.merge(&a.stats);
            t.latency.merge(&a.latency);
            t.events += a.events;
        }
    }
}

/// Virtual ns → trace-event microseconds (fractional).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// `"name":value` pairs for every counter, generated from the field list.
fn stats_json(s: &AccessStats) -> String {
    s.fields()
        .iter()
        .map(|(name, v)| format!("\"{name}\":{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// RAII handle on an open span; closing happens on drop. A guard from a
/// disabled tracer ([`FabricClient::span`](crate::FabricClient::span) with
/// tracing off) is inert and free.
#[must_use = "a span guard attributes nothing unless it lives across the operation"]
pub struct SpanGuard {
    tracer: Option<Tracer>,
    id: u32,
}

impl SpanGuard {
    /// An inert guard (tracing disabled).
    pub fn disabled() -> SpanGuard {
        SpanGuard { tracer: None, id: 0 }
    }

    /// A live guard for span `id` of `tracer`.
    pub fn new(tracer: Tracer, id: u32) -> SpanGuard {
        SpanGuard { tracer: Some(tracer), id }
    }

    /// The span id (`0` when disabled).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t) = &self.tracer {
            t.close_span(self.id);
        }
    }
}

/// Per-name span attribution summary.
#[derive(Clone, Debug)]
pub struct SpanSummary {
    /// Span name.
    pub name: &'static str,
    /// Closed spans with this name.
    pub count: u64,
    /// Verbs attributed to these spans.
    pub events: u64,
    /// Summed *self* stats.
    pub stats: AccessStats,
    /// Median span duration (virtual ns, log₂-bucket midpoint).
    pub p50_ns: u64,
    /// 99th-percentile span duration.
    pub p99_ns: u64,
    /// Maximum span duration (exact).
    pub max_ns: u64,
    /// Mean span duration (exact).
    pub mean_ns: u64,
}

/// Per-verb-kind latency summary.
#[derive(Clone, Debug)]
pub struct VerbSummary {
    /// Verb classification.
    pub kind: VerbKind,
    /// Completed verbs of this kind.
    pub count: u64,
    /// Median verb latency (virtual ns).
    pub p50_ns: u64,
    /// 99th-percentile verb latency.
    pub p99_ns: u64,
    /// Maximum verb latency (exact).
    pub max_ns: u64,
    /// Mean verb latency (exact).
    pub mean_ns: u64,
}

/// Attribution report for one client (see [`Tracer::report`]).
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Owning client.
    pub client_id: u32,
    /// Virtual time tracing was enabled.
    pub enabled_at_ns: u64,
    /// Flat counter delta since enable — the reconciliation target.
    pub total: AccessStats,
    /// Per-name span attribution, descending by round trips.
    pub spans: Vec<SpanSummary>,
    /// Per-verb-kind latency summaries.
    pub verbs: Vec<VerbSummary>,
    /// Stats of verbs issued outside any span.
    pub unattributed: AccessStats,
    /// Verbs issued outside any span.
    pub unattributed_events: u64,
    /// Spans still open at report time (their stats are in `open_stats`,
    /// not in `spans`).
    pub open_spans: usize,
    /// Summed self-stats of still-open spans.
    pub open_stats: AccessStats,
    /// Verbs recorded since enable (including ring-evicted ones).
    pub events_recorded: u64,
    /// Verbs evicted from the event ring.
    pub events_dropped: u64,
    /// Closed spans evicted from the span ring.
    pub spans_dropped: u64,
}

impl TraceReport {
    /// Sum of all attributed span stats.
    pub fn attributed(&self) -> AccessStats {
        let mut s = AccessStats::new();
        for span in &self.spans {
            s.merge(&span.stats);
        }
        s
    }

    /// Checks `attributed + unattributed + open == total` for every
    /// counter; returns the first mismatching field name.
    pub fn reconcile(&self) -> std::result::Result<(), &'static str> {
        let mut sum = self.attributed();
        sum.merge(&self.unattributed);
        sum.merge(&self.open_stats);
        let a = sum.to_array();
        let b = self.total.to_array();
        for (i, name) in AccessStats::FIELD_NAMES.iter().enumerate() {
            if a[i] != b[i] {
                return Err(name);
            }
        }
        Ok(())
    }

    /// Fraction of `total.round_trips` attributed to named spans
    /// (1.0 when no round trips happened).
    pub fn attribution_ratio(&self) -> f64 {
        if self.total.round_trips == 0 {
            return 1.0;
        }
        self.attributed().round_trips as f64 / self.total.round_trips as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_bucket_accurate() {
        let mut h = LatencyHistogram::default();
        for _ in 0..98 {
            h.add(1_000); // bucket 10 [512, 1024)
        }
        h.add(100_000);
        h.add(120_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        assert!((512..2048).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 65_536, "p99 {p99}");
        assert_eq!(h.max_ns(), 120_000);
        assert_eq!(h.quantile_ns(1.0), 120_000.min(h.quantile_ns(1.0)));
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        h.add(0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn spans_nest_and_attribute_exclusively() {
        let t = Tracer::new(TraceConfig::default(), 0, AccessStats::new(), 0);
        let outer = t.open_span("outer", 0);
        let mut d1 = AccessStats::new();
        d1.round_trips = 1;
        t.record_verb(VerbKind::Read, 0, 2_000, d1, true);
        let inner = t.open_span("inner", 2_000);
        let mut d2 = AccessStats::new();
        d2.round_trips = 2;
        t.record_verb(VerbKind::Write, 2_000, 6_000, d2, true);
        t.close_span(inner);
        t.close_span(outer);
        let mut live = AccessStats::new();
        live.round_trips = 3;
        let r = t.report(live);
        assert_eq!(r.spans.len(), 2);
        let outer_s = r.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner_s = r.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer_s.stats.round_trips, 1, "outer keeps only its self stats");
        assert_eq!(inner_s.stats.round_trips, 2);
        assert!(r.reconcile().is_ok());
        assert_eq!(r.attribution_ratio(), 1.0);
    }

    #[test]
    fn unattributed_verbs_are_reported() {
        let t = Tracer::new(TraceConfig::default(), 0, AccessStats::new(), 0);
        let mut d = AccessStats::new();
        d.round_trips = 4;
        t.record_verb(VerbKind::Batch, 0, 1_000, d, true);
        let r = t.report(d);
        assert!(r.spans.is_empty());
        assert_eq!(r.unattributed.round_trips, 4);
        assert_eq!(r.unattributed_events, 1);
        assert!(r.reconcile().is_ok());
        assert_eq!(r.attribution_ratio(), 0.0);
    }

    #[test]
    fn event_ring_is_bounded() {
        let t = Tracer::new(
            TraceConfig { event_capacity: 4, span_capacity: 2 },
            0,
            AccessStats::new(),
            0,
        );
        for i in 0..10u64 {
            t.record_verb(VerbKind::Read, i, i + 1, AccessStats::new(), true);
            let id = t.open_span("s", i);
            t.close_span(id);
        }
        let r = t.report(AccessStats::new());
        assert_eq!(r.events_recorded, 10);
        assert_eq!(r.events_dropped, 6);
        assert_eq!(r.spans_dropped, 8);
        let agg = r.spans.iter().find(|s| s.name == "s").unwrap();
        assert_eq!(agg.count, 10, "aggregation is unaffected by ring eviction");
    }

    #[test]
    fn exports_are_nonempty_and_escaped() {
        let t = Tracer::new(TraceConfig::default(), 3, AccessStats::new(), 0);
        let id = t.open_span("q\"uote", 5);
        t.record_verb(VerbKind::Indirect, 5, 2_005, AccessStats::new(), false);
        t.close_span(id);
        let jsonl = t.jsonl();
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("q\\\"uote"));
        let chrome = t.chrome_trace();
        assert!(chrome.starts_with('{'));
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"pid\":3"));
    }
}
