//! Per-client bump arenas: amortized zero-far-access item allocation.

use std::sync::Arc;

use farmem_fabric::FarAddr;

use crate::{AllocError, AllocHint, FarAlloc, Result};

/// A per-client bump allocator carving chunks out of a [`FarAlloc`].
///
/// Far-memory data structures frequently publish small immutable records
/// (HT-tree items, queue payloads). Allocating each record through a shared
/// allocator would add coordination; instead each client owns an arena and
/// bumps a local cursor — zero far accesses per item, with one chunk
/// refill every `chunk_len / item` allocations.
///
/// Arena memory is only reclaimed wholesale ([`Arena::retire`]); this is
/// the usual trade-off for publish-only records whose liveness is governed
/// by the containing data structure's epochs.
///
/// # Examples
///
/// ```
/// use farmem_fabric::FabricConfig;
/// use farmem_alloc::{AllocHint, Arena, FarAlloc};
///
/// let fabric = FabricConfig::single_node(1 << 20).build();
/// let alloc = FarAlloc::new(fabric);
/// let mut arena = Arena::new(alloc, 4096, AllocHint::Spread);
/// let a = arena.alloc(32).unwrap(); // zero far accesses (bump)
/// let b = arena.alloc(32).unwrap();
/// assert_ne!(a, b);
/// ```
pub struct Arena {
    alloc: Arc<FarAlloc>,
    hint: AllocHint,
    chunk_len: u64,
    chunk: FarAddr,
    cursor: u64,
    /// Chunks fully used, retained for `retire`.
    retired: Vec<FarAddr>,
    items: u64,
}

impl Arena {
    /// Creates an arena drawing `chunk_len`-byte chunks with `hint`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero (configuration error).
    pub fn new(alloc: Arc<FarAlloc>, chunk_len: u64, hint: AllocHint) -> Arena {
        assert!(chunk_len > 0, "arena chunks must be non-empty");
        Arena {
            alloc,
            hint,
            chunk_len,
            chunk: FarAddr::NULL,
            cursor: 0,
            retired: Vec::new(),
            items: 0,
        }
    }

    /// Number of items handed out.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Number of chunks drawn from the underlying allocator.
    pub fn chunks(&self) -> usize {
        self.retired.len() + usize::from(!self.chunk.is_null())
    }

    /// Allocates `len` bytes (word-rounded). Amortized zero far accesses:
    /// the bump is local; a refill is one allocator call.
    pub fn alloc(&mut self, len: u64) -> Result<FarAddr> {
        if len == 0 {
            return Err(AllocError::ZeroSize);
        }
        let len = len.div_ceil(8) * 8;
        if len > self.chunk_len {
            // Oversized item: dedicated allocation with the same hint.
            self.items += 1;
            return self.alloc.alloc(len, self.hint);
        }
        if self.chunk.is_null() || self.cursor + len > self.chunk_len {
            if !self.chunk.is_null() {
                self.retired.push(self.chunk);
            }
            self.chunk = self.alloc.alloc(self.chunk_len, self.hint)?;
            self.cursor = 0;
        }
        let addr = self.chunk.offset(self.cursor);
        self.cursor += len;
        self.items += 1;
        Ok(addr)
    }

    /// Returns every chunk this arena ever drew to the underlying
    /// allocator. The caller asserts nothing references the items anymore.
    pub fn retire(mut self) -> Result<()> {
        if !self.chunk.is_null() {
            self.retired.push(self.chunk);
        }
        for chunk in self.retired.drain(..) {
            self.alloc.free(chunk, self.chunk_len)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmem_fabric::FabricConfig;

    fn arena() -> Arena {
        let f = FabricConfig::single_node(4 << 20).build();
        Arena::new(FarAlloc::new(f), 4096, AllocHint::Spread)
    }

    #[test]
    fn items_are_distinct_and_word_aligned() {
        let mut a = arena();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let addr = a.alloc(24).unwrap();
            assert!(addr.is_aligned(8));
            assert!(seen.insert(addr));
        }
        assert_eq!(a.items(), 500);
    }

    #[test]
    fn refills_amortize() {
        let mut a = arena();
        for _ in 0..512 {
            a.alloc(32).unwrap();
        }
        // 512 × 32 B = 4 chunks of 4096.
        assert_eq!(a.chunks(), 4);
    }

    #[test]
    fn oversized_items_get_dedicated_allocations() {
        let mut a = arena();
        let big = a.alloc(10_000).unwrap();
        assert!(!big.is_null());
        let small = a.alloc(8).unwrap();
        assert_ne!(big, small);
    }

    #[test]
    fn retire_returns_chunks() {
        let f = FabricConfig::single_node(4 << 20).build();
        let alloc = FarAlloc::new(f);
        let mut a = Arena::new(alloc.clone(), 4096, AllocHint::Spread);
        for _ in 0..200 {
            a.alloc(64).unwrap();
        }
        let live_before = alloc.stats().live_bytes;
        a.retire().unwrap();
        assert!(alloc.stats().live_bytes < live_before);
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = arena();
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
    }
}
