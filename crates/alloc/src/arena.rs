//! Per-client bump arenas: amortized zero-far-access item allocation.

use std::sync::Arc;

use farmem_fabric::FarAddr;

use crate::{AllocError, AllocHint, FarAlloc, Result};

/// A per-client bump allocator carving chunks out of a [`FarAlloc`].
///
/// Far-memory data structures frequently publish small immutable records
/// (HT-tree items, queue payloads). Allocating each record through a shared
/// allocator would add coordination; instead each client owns an arena and
/// bumps a local cursor — zero far accesses per item, with one chunk
/// refill every `chunk_len / item` allocations.
///
/// Arena memory is only reclaimed wholesale — eagerly via
/// [`Arena::retire`], or deferred behind an epoch grace period by handing
/// [`Arena::into_parts`] to `farmem-reclaim`'s `retire_arena`. This is
/// the usual trade-off for publish-only records whose liveness is governed
/// by the containing data structure's epochs.
///
/// Simply **dropping** an arena strands its chunks: `live_bytes` stays
/// elevated forever (asserted by the `plain_drop_strands_chunks` test).
/// Teardown paths must call `retire`/`into_parts` explicitly — an
/// implicit `Drop` free would be unsound, because dropping happens at
/// unwinding/scope exit where concurrent readers may still hold
/// references that only an epoch grace period can wait out.
///
/// # Examples
///
/// ```
/// use farmem_fabric::FabricConfig;
/// use farmem_alloc::{AllocHint, Arena, FarAlloc};
///
/// let fabric = FabricConfig::single_node(1 << 20).build();
/// let alloc = FarAlloc::new(fabric);
/// let mut arena = Arena::new(alloc, 4096, AllocHint::Spread);
/// let a = arena.alloc(32).unwrap(); // zero far accesses (bump)
/// let b = arena.alloc(32).unwrap();
/// assert_ne!(a, b);
/// ```
pub struct Arena {
    alloc: Arc<FarAlloc>,
    hint: AllocHint,
    chunk_len: u64,
    chunk: FarAddr,
    cursor: u64,
    /// Chunks fully used, retained for `retire`.
    retired: Vec<FarAddr>,
    /// Oversized items (> `chunk_len`) with their word-rounded lengths;
    /// they got dedicated allocations and are freed at `retire` like the
    /// chunks (they used to be silently leaked).
    oversized: Vec<(FarAddr, u64)>,
    items: u64,
}

impl Arena {
    /// Creates an arena drawing `chunk_len`-byte chunks with `hint`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero (configuration error).
    pub fn new(alloc: Arc<FarAlloc>, chunk_len: u64, hint: AllocHint) -> Arena {
        assert!(chunk_len > 0, "arena chunks must be non-empty");
        Arena {
            alloc,
            hint,
            chunk_len,
            chunk: FarAddr::NULL,
            cursor: 0,
            retired: Vec::new(),
            oversized: Vec::new(),
            items: 0,
        }
    }

    /// Number of items handed out.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Number of chunks drawn from the underlying allocator.
    pub fn chunks(&self) -> usize {
        self.retired.len() + usize::from(!self.chunk.is_null())
    }

    /// Allocates `len` bytes (word-rounded). Amortized zero far accesses:
    /// the bump is local; a refill is one allocator call.
    pub fn alloc(&mut self, len: u64) -> Result<FarAddr> {
        if len == 0 {
            return Err(AllocError::ZeroSize);
        }
        let len = len.div_ceil(8) * 8;
        if len > self.chunk_len {
            // Oversized item: dedicated allocation with the same hint,
            // tracked so `retire` returns it along with the chunks.
            let addr = self.alloc.alloc(len, self.hint)?;
            self.oversized.push((addr, len));
            self.items += 1;
            return Ok(addr);
        }
        if self.chunk.is_null() || self.cursor + len > self.chunk_len {
            if !self.chunk.is_null() {
                self.retired.push(self.chunk);
            }
            self.chunk = self.alloc.alloc(self.chunk_len, self.hint)?;
            self.cursor = 0;
        }
        let addr = self.chunk.offset(self.cursor);
        self.cursor += len;
        self.items += 1;
        Ok(addr)
    }

    /// Returns every chunk (and oversized item) this arena ever drew to
    /// the underlying allocator. The caller asserts nothing references
    /// the items anymore — when concurrent readers might, hand
    /// [`Arena::into_parts`] to an epoch-based reclaimer instead.
    pub fn retire(mut self) -> Result<()> {
        if !self.chunk.is_null() {
            self.retired.push(self.chunk);
            self.chunk = FarAddr::NULL;
        }
        for chunk in self.retired.drain(..) {
            self.alloc.free(chunk, self.chunk_len)?;
        }
        for (addr, len) in self.oversized.drain(..) {
            self.alloc.free(addr, len)?;
        }
        Ok(())
    }

    /// Consumes the arena and exposes everything it drew from the
    /// allocator: `(chunks, chunk_len, oversized)`. Deferred-reclamation
    /// layers use this to push the pieces into a limbo list instead of
    /// freeing them eagerly.
    pub fn into_parts(mut self) -> (Vec<FarAddr>, u64, Vec<(FarAddr, u64)>) {
        if !self.chunk.is_null() {
            self.retired.push(self.chunk);
            self.chunk = FarAddr::NULL;
        }
        (
            std::mem::take(&mut self.retired),
            self.chunk_len,
            std::mem::take(&mut self.oversized),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmem_fabric::FabricConfig;

    fn arena() -> Arena {
        let f = FabricConfig::single_node(4 << 20).build();
        Arena::new(FarAlloc::new(f), 4096, AllocHint::Spread)
    }

    #[test]
    fn items_are_distinct_and_word_aligned() {
        let mut a = arena();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let addr = a.alloc(24).unwrap();
            assert!(addr.is_aligned(8));
            assert!(seen.insert(addr));
        }
        assert_eq!(a.items(), 500);
    }

    #[test]
    fn refills_amortize() {
        let mut a = arena();
        for _ in 0..512 {
            a.alloc(32).unwrap();
        }
        // 512 × 32 B = 4 chunks of 4096.
        assert_eq!(a.chunks(), 4);
    }

    #[test]
    fn oversized_items_get_dedicated_allocations() {
        let mut a = arena();
        let big = a.alloc(10_000).unwrap();
        assert!(!big.is_null());
        let small = a.alloc(8).unwrap();
        assert_ne!(big, small);
    }

    #[test]
    fn retire_returns_chunks() {
        let f = FabricConfig::single_node(4 << 20).build();
        let alloc = FarAlloc::new(f);
        let mut a = Arena::new(alloc.clone(), 4096, AllocHint::Spread);
        for _ in 0..200 {
            a.alloc(64).unwrap();
        }
        let live_before = alloc.stats().live_bytes;
        a.retire().unwrap();
        assert!(alloc.stats().live_bytes < live_before);
    }

    /// `retire` frees everything — including oversized dedicated
    /// allocations, which used to be silently leaked. `live_bytes`
    /// returns to its pre-arena baseline.
    #[test]
    fn retire_restores_live_bytes_baseline() {
        let f = FabricConfig::single_node(4 << 20).build();
        let alloc = FarAlloc::new(f);
        let baseline = alloc.stats().live_bytes;
        let mut a = Arena::new(alloc.clone(), 4096, AllocHint::Spread);
        for _ in 0..200 {
            a.alloc(64).unwrap();
        }
        a.alloc(10_000).unwrap(); // oversized: dedicated allocation
        assert!(alloc.stats().live_bytes > baseline);
        a.retire().unwrap();
        assert_eq!(alloc.stats().live_bytes, baseline);
    }

    /// Documented behavior: plain `drop` strands the chunks (an implicit
    /// free would be unsound under concurrent readers). Teardown must go
    /// through `retire` or `into_parts`.
    #[test]
    fn plain_drop_strands_chunks() {
        let f = FabricConfig::single_node(4 << 20).build();
        let alloc = FarAlloc::new(f);
        let baseline = alloc.stats().live_bytes;
        let mut a = Arena::new(alloc.clone(), 4096, AllocHint::Spread);
        for _ in 0..200 {
            a.alloc(64).unwrap();
        }
        drop(a);
        assert!(
            alloc.stats().live_bytes > baseline,
            "dropped arena chunks stay allocated (leak is deliberate)"
        );
    }

    #[test]
    fn into_parts_exposes_all_allocations() {
        let f = FabricConfig::single_node(4 << 20).build();
        let alloc = FarAlloc::new(f);
        let baseline = alloc.stats().live_bytes;
        let mut a = Arena::new(alloc.clone(), 4096, AllocHint::Spread);
        for _ in 0..200 {
            a.alloc(64).unwrap();
        }
        a.alloc(10_000).unwrap();
        let (chunks, chunk_len, oversized) = a.into_parts();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunk_len, 4096);
        assert_eq!(oversized.len(), 1);
        for c in chunks {
            alloc.free(c, chunk_len).unwrap();
        }
        for (addr, len) in oversized {
            alloc.free(addr, len).unwrap();
        }
        assert_eq!(alloc.stats().live_bytes, baseline);
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = arena();
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
    }
}
