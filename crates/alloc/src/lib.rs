//! # farmem-alloc — far-memory allocation with locality hints
//!
//! §7.1 of the paper argues that far-memory allocators should be designed
//! with locality in mind: parts of a data structure where indirect
//! addressing is common (e.g. a chain within a hash bucket) benefit from
//! *localized* placement so memory-side indirection never leaves the node,
//! while independent parts benefit from *anti-local* placement for
//! parallelism, and bulk data benefits from striping for bandwidth.
//! Applications express this through [`AllocHint`]s which the allocator
//! considers when granting requests.
//!
//! Two allocators are provided:
//!
//! * [`FarAlloc`] — a size-class slab allocator over the fabric's global
//!   address space, with per-node page pools honoring placement hints;
//! * [`Arena`] — a per-client bump allocator that carves chunks out of
//!   [`FarAlloc`] so that allocating an *item* costs zero far accesses
//!   (amortized), which the HT-tree's two-far-access store budget (§5.2)
//!   depends on.
//!
//! Allocation metadata lives at the client/management plane, not in far
//! memory; the paper does not charge far accesses for allocation and
//! neither do we (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod slab;

pub use arena::Arena;
pub use slab::{AllocStats, ClassStats, FarAlloc};

use farmem_fabric::{FarAddr, NodeId};

/// Placement preference for an allocation (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocHint {
    /// No preference: round-robin across nodes for balance.
    Spread,
    /// Place on the given node (e.g. next to data it will be chained to).
    Localize(NodeId),
    /// Place on the same node as existing data at this address.
    Colocate(FarAddr),
    /// Place anywhere *except* the given node (anti-locality for
    /// parallelism between independent requests).
    AntiLocal(NodeId),
    /// Allocate from the globally contiguous region so the bytes stripe
    /// across nodes for aggregate bandwidth (large vectors, histograms).
    Striped,
}

/// Errors returned by the allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The requested placement cannot be satisfied: the pool is exhausted.
    OutOfMemory {
        /// Node whose pool was exhausted, if the request was node-bound.
        node: Option<NodeId>,
    },
    /// A zero-byte allocation was requested.
    ZeroSize,
    /// `free` was called with an address/length pair the allocator never
    /// returned.
    BadFree {
        /// The offending address.
        addr: FarAddr,
    },
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfMemory { node: Some(n) } => {
                write!(f, "far memory pool on node {n:?} exhausted")
            }
            AllocError::OutOfMemory { node: None } => write!(f, "far memory exhausted"),
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
            AllocError::BadFree { addr } => write!(f, "bad free of {addr:?}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Convenience alias for allocator results.
pub type Result<T> = core::result::Result<T, AllocError>;
