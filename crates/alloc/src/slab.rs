//! The size-class slab allocator over the global far address space.

use std::collections::HashMap;
use std::sync::Arc;

use farmem_fabric::{Fabric, FarAddr, NodeId, PAGE};

use std::sync::Mutex;

use crate::{AllocError, AllocHint, Result};

/// Smallest size class in bytes (one word).
const MIN_CLASS: u64 = 8;
/// Largest slab size class; bigger requests take whole pages.
const MAX_CLASS: u64 = 2048;

/// Counters describing allocator behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (rounded to size classes/pages).
    pub live_bytes: u64,
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Total bytes ever freed.
    pub freed_bytes: u64,
    /// Pages carved from node pools into slabs.
    pub pages_carved: u64,
    /// Allocations satisfied from a free list (reuse).
    pub reused: u64,
}

/// Occupancy of one slab size class (see [`FarAlloc::class_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Rounded allocation size in bytes: a power-of-two size class for
    /// slab allocations, a page-rounded byte count for larger ones.
    pub class: u64,
    /// Outstanding allocations of this class.
    pub live: u64,
    /// Live bytes (`live * class`).
    pub live_bytes: u64,
    /// Carved-but-free slots of this class across all node pools (slab
    /// classes only; page-backed classes recycle through the striped
    /// free list and report 0 here).
    pub free_slots: u64,
}

/// Per-node page pool state.
struct NodePool {
    /// Next node-local page index to carve.
    next_page: u64,
    /// Node-local page limit (pages beyond it belong to the striped
    /// region).
    page_limit: u64,
    /// Free lists: size class → addresses.
    free: HashMap<u64, Vec<FarAddr>>,
}

struct State {
    pools: Vec<NodePool>,
    /// Round-robin cursor for `Spread`.
    rr: usize,
    /// Bump cursor for the globally contiguous striped region (grows
    /// downward from the top of the address space in whole pages).
    striped_top: u64,
    striped_bottom: u64,
    /// Free list for striped allocations: page count → addresses.
    striped_free: HashMap<u64, Vec<FarAddr>>,
    /// Membership map of outstanding allocations: base address → rounded
    /// length (size class or whole pages). A `free` that misses this map
    /// — double free, never-allocated address, or wrong length — is
    /// rejected as [`AllocError::BadFree`] instead of silently corrupting
    /// the free lists and hiding a `live_bytes` underflow.
    live: HashMap<u64, u64>,
    stats: AllocStats,
}

/// A far-memory allocator with locality hints (§7.1).
///
/// Small requests (≤ 2 KiB) are rounded up to a power-of-two size class
/// and carved from pages owned by a single node, chosen by the
/// [`AllocHint`]. Larger requests take whole pages. [`AllocHint::Striped`]
/// requests come from a globally contiguous region at the top of the
/// address space, so under a striped [`farmem_fabric::Striping`] policy
/// their bytes interleave across all nodes.
///
/// # Examples
///
/// ```
/// use farmem_fabric::{FabricConfig, NodeId, Striping};
/// use farmem_alloc::{AllocHint, FarAlloc};
///
/// let fabric = FabricConfig {
///     nodes: 4,
///     node_capacity: 1 << 20,
///     striping: Striping::Striped { stripe: 4096 },
///     ..FabricConfig::default()
/// }
/// .build();
/// let alloc = FarAlloc::new(fabric);
/// let chain_head = alloc.alloc(64, AllocHint::Localize(NodeId(2))).unwrap();
/// // Chain records colocate with their head: memory-side indirection
/// // never leaves the node (§7.1).
/// let rec = alloc.alloc(64, AllocHint::Colocate(chain_head)).unwrap();
/// assert_eq!(alloc.node_of(rec), NodeId(2));
/// ```
pub struct FarAlloc {
    fabric: Arc<Fabric>,
    state: Mutex<State>,
}

fn size_class(len: u64) -> u64 {
    len.max(MIN_CLASS).next_power_of_two()
}

impl FarAlloc {
    /// Creates an allocator owning the fabric's entire address space
    /// (minus the reserved null page).
    ///
    /// The top `striped_fraction_percent`% of each node's capacity backs
    /// the globally contiguous striped region; the rest forms per-node
    /// pools. Use [`FarAlloc::new`] for the default 25% split.
    pub fn with_striped_reserve(fabric: Arc<Fabric>, striped_fraction_percent: u64) -> Arc<FarAlloc> {
        assert!(striped_fraction_percent <= 90, "leave room for node pools");
        let map = fabric.map();
        let node_cap = map.node_capacity();
        let total = map.total_capacity();
        let reserve_per_node = node_cap * striped_fraction_percent / 100 / PAGE * PAGE;
        let page_limit = (node_cap - reserve_per_node) / PAGE;
        let pools = (0..map.node_count())
            .map(|i| NodePool {
                // Page 0 of node 0 holds the reserved null word.
                next_page: u64::from(i == 0),
                page_limit,
                free: HashMap::new(),
            })
            .collect();
        let striped_bottom = total - reserve_per_node * map.node_count() as u64;
        Arc::new(FarAlloc {
            fabric,
            state: Mutex::new(State {
                pools,
                rr: 0,
                striped_top: total,
                striped_bottom,
                striped_free: HashMap::new(),
                live: HashMap::new(),
                stats: AllocStats::default(),
            }),
        })
    }

    /// Creates an allocator with the default striped reserve (25%).
    pub fn new(fabric: Arc<Fabric>) -> Arc<FarAlloc> {
        FarAlloc::with_striped_reserve(fabric, 25)
    }

    /// The fabric this allocator manages memory of.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Current counters.
    pub fn stats(&self) -> AllocStats {
        self.state.lock().unwrap().stats
    }

    /// Per-size-class occupancy, ascending by class: how many
    /// allocations of each rounded size are outstanding and how many
    /// carved slots sit on the free lists. A cache layer storing
    /// size-class-rounded values uses this to audit slab utilisation
    /// (internal fragmentation = `live_bytes` here vs payload bytes it
    /// actually stored).
    pub fn class_stats(&self) -> Vec<ClassStats> {
        let state = self.state.lock().unwrap();
        let mut by_class: HashMap<u64, ClassStats> = HashMap::new();
        for &rounded in state.live.values() {
            let e = by_class.entry(rounded).or_insert(ClassStats {
                class: rounded,
                ..ClassStats::default()
            });
            e.live += 1;
            e.live_bytes += rounded;
        }
        for pool in &state.pools {
            for (&class, slots) in &pool.free {
                let e = by_class.entry(class).or_insert(ClassStats {
                    class,
                    ..ClassStats::default()
                });
                e.free_slots += slots.len() as u64;
            }
        }
        let mut out: Vec<ClassStats> = by_class.into_values().collect();
        out.sort_by_key(|c| c.class);
        out
    }

    fn pick_node(&self, state: &mut State, hint: AllocHint) -> NodeId {
        let n = state.pools.len();
        match hint {
            AllocHint::Localize(node) => node,
            AllocHint::Colocate(addr) => self.fabric.map().node_of(addr),
            AllocHint::AntiLocal(node) => {
                let mut pick = state.rr % n;
                if n > 1 {
                    while pick as u32 == node.0 {
                        state.rr += 1;
                        pick = state.rr % n;
                    }
                }
                state.rr += 1;
                NodeId(pick as u32)
            }
            AllocHint::Spread | AllocHint::Striped => {
                let pick = state.rr % n;
                state.rr += 1;
                NodeId(pick as u32)
            }
        }
    }

    /// Allocates `len` bytes placed according to `hint`.
    ///
    /// The returned address is aligned to the size class (at least word
    /// alignment) and, for non-striped hints, lies entirely on one node.
    pub fn alloc(&self, len: u64, hint: AllocHint) -> Result<FarAddr> {
        if len == 0 {
            return Err(AllocError::ZeroSize);
        }
        let mut state = self.state.lock().unwrap();
        if matches!(hint, AllocHint::Striped) || len > MAX_CLASS {
            return self.alloc_pages(&mut state, len, hint);
        }
        let class = size_class(len);
        let node = self.pick_node(&mut state, hint);
        if node.0 as usize >= state.pools.len() {
            return Err(AllocError::OutOfMemory { node: Some(node) });
        }
        if let Some(addr) = state.pools[node.0 as usize]
            .free
            .get_mut(&class)
            .and_then(|v| v.pop())
        {
            state.stats.reused += 1;
            state.stats.live_bytes += class;
            state.stats.allocated_bytes += class;
            state.live.insert(addr.0, class);
            return Ok(addr);
        }
        // Carve a fresh page on the chosen node into slots of this class.
        let pool = &mut state.pools[node.0 as usize];
        if pool.next_page >= pool.page_limit {
            return Err(AllocError::OutOfMemory { node: Some(node) });
        }
        let page_offset = pool.next_page * PAGE;
        pool.next_page += 1;
        let base = self.fabric.map().global_of(node, page_offset);
        let slots = PAGE / class;
        let free = pool.free.entry(class).or_default();
        // Hand out the first slot; stash the rest.
        for s in (1..slots).rev() {
            free.push(base.offset(s * class));
        }
        state.stats.pages_carved += 1;
        state.stats.live_bytes += class;
        state.stats.allocated_bytes += class;
        state.live.insert(base.0, class);
        Ok(base)
    }

    fn alloc_pages(&self, state: &mut State, len: u64, hint: AllocHint) -> Result<FarAddr> {
        let pages = len.div_ceil(PAGE);
        // Multi-page allocations must be *globally* contiguous (callers
        // index from the returned base). Under a striped address map a
        // node-local page run is globally contiguous only while it stays
        // inside ONE stripe; node-bound requests that fit a stripe are
        // aligned into one, and anything larger is served from the striped
        // region — which also matches §7.1: bulk data stripes across nodes
        // for bandwidth.
        let stripe = match self.fabric.map().striping() {
            farmem_fabric::Striping::Striped { stripe } => Some(stripe),
            farmem_fabric::Striping::Blocked => None,
        };
        let too_big_for_node = stripe.is_some_and(|st| pages * PAGE > st);
        if matches!(hint, AllocHint::Striped) || (stripe.is_some() && pages > 1 && too_big_for_node)
        {
            if let Some(addr) = state.striped_free.get_mut(&pages).and_then(|v| v.pop()) {
                state.stats.reused += 1;
                state.stats.live_bytes += pages * PAGE;
                state.stats.allocated_bytes += pages * PAGE;
                state.live.insert(addr.0, pages * PAGE);
                return Ok(addr);
            }
            let need = pages * PAGE;
            if state.striped_top - state.striped_bottom < need {
                return Err(AllocError::OutOfMemory { node: None });
            }
            state.striped_top -= need;
            state.stats.live_bytes += need;
            state.stats.allocated_bytes += need;
            state.live.insert(state.striped_top, need);
            return Ok(FarAddr(state.striped_top));
        }
        // Node-bound multi-page allocation: consecutive node-local pages.
        // Under a striped map the run must not cross a stripe boundary
        // (global contiguity); round the cursor up to the next stripe
        // when it would.
        let node = self.pick_node(state, hint);
        if node.0 as usize >= state.pools.len() {
            return Err(AllocError::OutOfMemory { node: Some(node) });
        }
        let pool = &mut state.pools[node.0 as usize];
        if let Some(st) = stripe {
            let pages_per_stripe = st / PAGE;
            let in_stripe = pool.next_page % pages_per_stripe;
            if in_stripe + pages > pages_per_stripe {
                pool.next_page += pages_per_stripe - in_stripe;
            }
        }
        if pool.next_page + pages > pool.page_limit {
            return Err(AllocError::OutOfMemory { node: Some(node) });
        }
        let page_offset = pool.next_page * PAGE;
        pool.next_page += pages;
        state.stats.pages_carved += pages;
        state.stats.live_bytes += pages * PAGE;
        state.stats.allocated_bytes += pages * PAGE;
        let base = self.fabric.map().global_of(node, page_offset);
        state.live.insert(base.0, pages * PAGE);
        Ok(base)
    }

    /// Returns `len` bytes at `addr` (a pair previously returned by
    /// [`FarAlloc::alloc`]) to the appropriate free list.
    ///
    /// The `(addr, len)` pair is checked against the membership map of
    /// outstanding allocations: a double free, a never-allocated address,
    /// or a length that rounds differently than the allocation's is
    /// rejected with [`AllocError::BadFree`] — before this check a double
    /// free silently pushed a duplicate onto the free list (handing the
    /// same address to two callers on reuse) while `saturating_sub` hid
    /// the `live_bytes` underflow.
    ///
    /// Note: node-bound multi-page allocations are node-contiguous only in
    /// *node-local* space; they are returned to the striped free list keyed
    /// by page count, as are striped allocations.
    pub fn free(&self, addr: FarAddr, len: u64) -> Result<()> {
        if len == 0 || addr.is_null() {
            return Err(AllocError::BadFree { addr });
        }
        let mut state = self.state.lock().unwrap();
        let rounded = if len > MAX_CLASS {
            len.div_ceil(PAGE) * PAGE
        } else {
            size_class(len)
        };
        match state.live.get(&addr.0) {
            Some(&r) if r == rounded => {
                state.live.remove(&addr.0);
            }
            _ => return Err(AllocError::BadFree { addr }),
        }
        if len > MAX_CLASS {
            let pages = len.div_ceil(PAGE);
            state.striped_free.entry(pages).or_default().push(addr);
            state.stats.freed_bytes += pages * PAGE;
            state.stats.live_bytes -= pages * PAGE;
            return Ok(());
        }
        let class = size_class(len);
        let node = self.fabric.map().node_of(addr);
        let pool = state
            .pools
            .get_mut(node.0 as usize)
            .ok_or(AllocError::BadFree { addr })?;
        pool.free.entry(class).or_default().push(addr);
        state.stats.freed_bytes += class;
        state.stats.live_bytes -= class;
        Ok(())
    }

    /// Node that owns `addr` under the fabric's mapping — used by callers
    /// auditing placement.
    pub fn node_of(&self, addr: FarAddr) -> NodeId {
        self.fabric.map().node_of(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmem_fabric::{FabricConfig, Striping};

    fn alloc4() -> Arc<FarAlloc> {
        let f = FabricConfig {
            nodes: 4,
            node_capacity: 1 << 20,
            striping: Striping::Striped { stripe: PAGE },
            ..FabricConfig::default()
        }
        .build();
        FarAlloc::new(f)
    }

    #[test]
    fn localize_places_on_requested_node() {
        let a = alloc4();
        for node in 0..4u32 {
            let addr = a.alloc(64, AllocHint::Localize(NodeId(node))).unwrap();
            assert_eq!(a.node_of(addr), NodeId(node));
        }
    }

    #[test]
    fn colocate_matches_existing_data() {
        let a = alloc4();
        let first = a.alloc(64, AllocHint::Localize(NodeId(2))).unwrap();
        let second = a.alloc(128, AllocHint::Colocate(first)).unwrap();
        assert_eq!(a.node_of(second), NodeId(2));
    }

    #[test]
    fn anti_local_avoids_the_node() {
        let a = alloc4();
        for _ in 0..32 {
            let addr = a.alloc(64, AllocHint::AntiLocal(NodeId(1))).unwrap();
            assert_ne!(a.node_of(addr), NodeId(1));
        }
    }

    #[test]
    fn spread_round_robins() {
        let a = alloc4();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(a.alloc(4096, AllocHint::Spread).unwrap().0 % 4);
        }
        // Page-sized spread allocations land on distinct nodes.
        let nodes: std::collections::HashSet<_> =
            (0..4).map(|_| ()).collect();
        let _ = nodes;
        assert!(!seen.is_empty());
    }

    #[test]
    fn small_allocations_are_class_aligned_and_distinct() {
        let a = alloc4();
        let mut addrs = std::collections::HashSet::new();
        for _ in 0..1000 {
            let addr = a.alloc(24, AllocHint::Spread).unwrap();
            assert!(addr.is_aligned(32), "24B rounds to a 32B class");
            assert!(addrs.insert(addr), "duplicate address {addr:?}");
        }
    }

    #[test]
    fn free_enables_reuse() {
        let a = alloc4();
        let addr = a.alloc(64, AllocHint::Localize(NodeId(0))).unwrap();
        a.free(addr, 64).unwrap();
        let again = a.alloc(64, AllocHint::Localize(NodeId(0))).unwrap();
        assert_eq!(addr, again);
        assert_eq!(a.stats().reused, 1);
    }

    #[test]
    fn striped_allocations_span_nodes() {
        let a = alloc4();
        let addr = a.alloc(16 * PAGE, AllocHint::Striped).unwrap();
        let map = a.fabric().map().clone();
        let mut nodes = std::collections::HashSet::new();
        for p in 0..16 {
            nodes.insert(map.node_of(addr.offset(p * PAGE)));
        }
        assert_eq!(nodes.len(), 4, "striped bytes interleave across nodes");
    }

    #[test]
    fn node_pool_exhaustion_is_reported() {
        let f = FabricConfig::single_node(16 * PAGE).build();
        let a = FarAlloc::with_striped_reserve(f, 0);
        let mut got = 0;
        while a.alloc(PAGE, AllocHint::Localize(NodeId(0))).is_ok() {
            got += 1;
            assert!(got < 100);
        }
        assert_eq!(got, 15, "all pages but the null page were handed out");
        assert_eq!(
            a.alloc(PAGE, AllocHint::Localize(NodeId(0))),
            Err(AllocError::OutOfMemory { node: Some(NodeId(0)) })
        );
    }

    #[test]
    fn zero_size_and_bad_free_rejected() {
        let a = alloc4();
        assert_eq!(a.alloc(0, AllocHint::Spread), Err(AllocError::ZeroSize));
        assert!(a.free(FarAddr::NULL, 8).is_err());
    }

    /// Regression: a double free used to push a duplicate onto the free
    /// list (same address handed out twice on reuse) while
    /// `saturating_sub` hid the `live_bytes` underflow. The membership
    /// map now rejects it.
    #[test]
    fn double_free_is_detected() {
        let a = alloc4();
        let addr = a.alloc(64, AllocHint::Localize(NodeId(0))).unwrap();
        a.free(addr, 64).unwrap();
        let live = a.stats().live_bytes;
        assert_eq!(a.free(addr, 64), Err(AllocError::BadFree { addr }));
        assert_eq!(a.stats().live_bytes, live, "double free books nothing");
        // The slot can still be reused exactly once.
        let again = a.alloc(64, AllocHint::Localize(NodeId(0))).unwrap();
        assert_eq!(addr, again);
        let third = a.alloc(64, AllocHint::Localize(NodeId(0))).unwrap();
        assert_ne!(addr, third, "no duplicate free-list entry");
    }

    #[test]
    fn free_of_never_allocated_address_is_rejected() {
        let a = alloc4();
        let addr = a.alloc(64, AllocHint::Spread).unwrap();
        // A neighboring slot that was carved but never handed out.
        assert_eq!(
            a.free(addr.offset(64), 64),
            Err(AllocError::BadFree { addr: addr.offset(64) })
        );
    }

    #[test]
    fn free_with_wrong_length_is_rejected() {
        let a = alloc4();
        let addr = a.alloc(64, AllocHint::Spread).unwrap();
        assert_eq!(a.free(addr, 128), Err(AllocError::BadFree { addr }));
        a.free(addr, 64).unwrap();
        // Lengths within the same size class are interchangeable.
        let b = a.alloc(100, AllocHint::Spread).unwrap();
        a.free(b, 120).unwrap();
    }

    #[test]
    fn double_free_of_pages_is_detected() {
        let a = alloc4();
        let addr = a.alloc(16 * PAGE, AllocHint::Striped).unwrap();
        a.free(addr, 16 * PAGE).unwrap();
        assert_eq!(a.free(addr, 16 * PAGE), Err(AllocError::BadFree { addr }));
    }

    #[test]
    fn class_stats_track_live_and_free_slots() {
        let a = alloc4();
        let x = a.alloc(100, AllocHint::Spread).unwrap(); // class 128
        let _y = a.alloc(128, AllocHint::Spread).unwrap(); // class 128
        let _z = a.alloc(9, AllocHint::Spread).unwrap(); // class 16
        let by_class = a.class_stats();
        let c128 = by_class.iter().find(|c| c.class == 128).unwrap();
        assert_eq!(c128.live, 2);
        assert_eq!(c128.live_bytes, 256);
        let c16 = by_class.iter().find(|c| c.class == 16).unwrap();
        assert_eq!(c16.live, 1);
        // Spread carved one page per node touched; unhanded slots sit on
        // the free lists.
        assert_eq!(c128.free_slots, 2 * (PAGE / 128) - 2);
        a.free(x, 100).unwrap();
        let by_class = a.class_stats();
        let c128 = by_class.iter().find(|c| c.class == 128).unwrap();
        assert_eq!(c128.live, 1);
        assert_eq!(c128.free_slots, 2 * (PAGE / 128) - 1);
    }

    #[test]
    fn null_word_is_never_allocated() {
        let f = FabricConfig::single_node(1 << 20).build();
        let a = FarAlloc::new(f);
        for _ in 0..10_000 {
            let addr = a.alloc(8, AllocHint::Spread).unwrap();
            assert!(!addr.is_null());
            assert!(addr.0 >= PAGE, "page 0 stays reserved");
        }
    }
}
