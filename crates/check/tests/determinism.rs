//! Determinism guarantees: the suite's JSON is a pure function of
//! `(smoke, seed)`, and smoke bounds are a strict prefix of the full
//! bounds — everything smoke finds, the full run finds too.

use farmem_check::explore::{explore, ExploreBounds};
use farmem_check::mutants::all_mutants;
use farmem_check::suite::{run_suite, SuiteConfig};

#[test]
fn suite_json_is_byte_identical_across_runs() {
    let cfg = SuiteConfig { smoke: true, seed: 0xE16 };
    let a = run_suite(&cfg).to_json();
    let b = run_suite(&cfg).to_json();
    assert_eq!(a, b, "suite JSON differs between identical runs");
}

#[test]
fn smoke_findings_are_a_subset_of_full_findings() {
    // A racy mutant makes the subset relation observable: the DFS
    // prefix property means every schedule the small budget runs, the
    // large budget runs too (same order), and random schedules use the
    // same per-index seeds.
    let mutants = all_mutants();
    let m = mutants
        .iter()
        .find(|m| m.program.name == "m3_unsync_counter")
        .expect("m3 present");
    let small = explore(
        &m.program,
        &ExploreBounds { max_schedules: 12, random_schedules: 4, seed: 7 },
    );
    let large = explore(
        &m.program,
        &ExploreBounds { max_schedules: 48, random_schedules: 4, seed: 7 },
    );
    assert!(small.schedules <= large.schedules);
    for r in &small.races {
        assert!(
            large.races.contains(r),
            "race {:?} found under small bounds but not large",
            r
        );
    }
    assert!(large.lin_violations >= small.lin_violations.min(1));
}
