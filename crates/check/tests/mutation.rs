//! Mutation self-tests: every deliberately-broken protocol variant must
//! be flagged by every analysis it was built to trip, and every main
//! (unbroken) program must come back clean — under the same smoke
//! bounds CI uses.

use std::sync::OnceLock;

use farmem_check::suite::{run_suite, SuiteConfig, SuiteResult};

const CFG: SuiteConfig = SuiteConfig { smoke: true, seed: 0xE16 };

/// The suite is expensive; run it once and share it across tests.
fn suite() -> &'static SuiteResult {
    static SUITE: OnceLock<SuiteResult> = OnceLock::new();
    SUITE.get_or_init(|| run_suite(&CFG))
}

#[test]
fn main_programs_are_clean_under_smoke_bounds() {
    let suite = suite();
    for p in &suite.programs {
        assert!(
            p.clean(),
            "program {} not clean: races={:?} lin={:?} invariant={:?} panicked={}",
            p.name,
            p.races,
            p.first_lin,
            p.first_invariant,
            p.panicked,
        );
        assert!(p.lin_checked > 0 || p.races.is_empty());
    }
}

#[test]
fn every_mutant_is_caught_by_each_expected_analysis() {
    let suite = suite();
    assert!(!suite.mutants.is_empty());
    for m in &suite.mutants {
        assert!(
            m.caught,
            "mutant {} escaped: expected {:?}, got races={:?} lin={} invariant={}",
            m.exploration.name,
            m.expect,
            m.exploration.races,
            m.exploration.lin_violations,
            m.exploration.invariant_violations,
        );
    }
    // At least one mutant per analysis, so each checker's kill is
    // demonstrated independently.
    for analysis in ["races", "linearizability", "invariant"] {
        assert!(
            suite.mutants.iter().any(|m| m.expect.contains(&analysis)),
            "no mutant exercises the {analysis} analysis"
        );
    }
}
