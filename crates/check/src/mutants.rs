//! Mutation self-tests: deliberately broken protocol variants that the
//! analyses must flag.
//!
//! Each mutant is a small program with one protocol rule removed —
//! exactly the classes of bug the checker exists to catch. The suite
//! runs every mutant under the same explorer and asserts that the
//! *expected* analyses fire; a mutant slipping through fails the suite
//! (and the `e16_check` driver, and CI). This is the evidence that a
//! green main-suite report means something.
//!
//! These are **not** `#[cfg(test)]`-gated: the `e16_check` driver runs
//! them to produce the committed mutation-coverage report, so they are
//! ordinary (dev-tooling) code of this crate.
//!
//! Mutants attributed to the linearizability checker run with race
//! detection off, so a catch cannot be credited to the wrong analysis.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use farmem_alloc::{AllocHint, FarAlloc};
use farmem_core::FarRwLock;
use farmem_fabric::FarAddr;
use farmem_reclaim::{pin, ReclaimRegistry};

use crate::explore::{PreparedRun, Program};
use crate::history::{History, Op, Ret};
use crate::linz::Model;
use crate::programs::{plain_fabric, word};

/// Which analysis is expected to flag a mutant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// The happens-before race detector must report at least one race.
    Races,
    /// The linearizability checker must reject at least one history.
    Lin,
    /// A program invariant (explorer finale) must fail.
    Invariant,
}

impl Expect {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Expect::Races => "races",
            Expect::Lin => "linearizability",
            Expect::Invariant => "invariant",
        }
    }
}

/// A mutant program plus the analyses that must flag it.
pub struct Mutant {
    /// The broken program.
    pub program: Program,
    /// Every listed analysis must fire for the mutant to count as
    /// caught.
    pub expect: &'static [Expect],
}

/// M1 — lock released with a blind store instead of the fenced
/// (tag-checked) CAS. The release write races every other client's CAS
/// on the lock word: the fencing-token check is exactly what made the
/// release safe.
fn mutex_unfenced_release() -> Mutant {
    let program = Program {
        name: "m1_mutex_unfenced_release",
        model: Some(Model::Counter),
        check_races: true,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let lock = word(&mut c0, &alloc);
            let ctr = word(&mut c0, &alloc);
            let h = Arc::new(History::new());
            let mut participants = Vec::new();
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..2 {
                let mut cl = f.client();
                let id = cl.id();
                participants.push(id);
                let h2 = h.clone();
                bodies.push(Box::new(move || {
                    let tag = id as u64 + 1;
                    let t = h2.invoke(id, Op::CtrAdd { by: 1 });
                    let mut held = false;
                    for _ in 0..24 {
                        if cl.cas(lock, 0, tag).unwrap() == 0 {
                            held = true;
                            break;
                        }
                    }
                    if !held {
                        h2.fail(t);
                        return;
                    }
                    let old = cl.read_u64(ctr).unwrap();
                    cl.write_u64(ctr, old + 1).unwrap();
                    // MUTANT: blind store release — correct code CASes
                    // `tag -> 0` so a stolen lease surfaces as LeaseLost.
                    cl.write_u64(lock, 0).unwrap();
                    h2.complete(t, Ret::Val(old));
                }));
            }
            PreparedRun { fabric: f, participants, bodies, history: h, finale: None }
        }),
    };
    Mutant { program, expect: &[Expect::Races] }
}

/// M2 — a contender that "steals" a held lock immediately with a plain
/// store instead of waiting out the lease: two clients end up in the
/// critical section.
fn mutex_immediate_steal() -> Mutant {
    let program = Program {
        name: "m2_mutex_immediate_steal",
        model: Some(Model::Counter),
        check_races: true,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let lock = word(&mut c0, &alloc);
            let ctr = word(&mut c0, &alloc);
            let h = Arc::new(History::new());
            let mut participants = Vec::new();
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..2 {
                let mut cl = f.client();
                let id = cl.id();
                participants.push(id);
                let h2 = h.clone();
                bodies.push(Box::new(move || {
                    let tag = id as u64 + 1;
                    let t = h2.invoke(id, Op::CtrAdd { by: 1 });
                    if cl.cas(lock, 0, tag).unwrap() != 0 {
                        // MUTANT: immediate steal — correct code charges
                        // the holder's lease before taking over.
                        cl.write_u64(lock, tag).unwrap();
                    }
                    let old = cl.read_u64(ctr).unwrap();
                    cl.write_u64(ctr, old + 1).unwrap();
                    let _ = cl.cas(lock, tag, 0).unwrap();
                    h2.complete(t, Ret::Val(old));
                }));
            }
            PreparedRun { fabric: f, participants, bodies, history: h, finale: None }
        }),
    };
    Mutant { program, expect: &[Expect::Races] }
}

/// M3 — the counter protocol with the lock removed entirely:
/// read-modify-write on a shared word with no synchronization. Both the
/// race detector and the linearizability checker (lost update) must
/// fire.
fn unsync_counter() -> Mutant {
    let program = Program {
        name: "m3_unsync_counter",
        model: Some(Model::Counter),
        check_races: true,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let ctr = word(&mut c0, &alloc);
            let h = Arc::new(History::new());
            let mut participants = Vec::new();
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..2 {
                let mut cl = f.client();
                let id = cl.id();
                participants.push(id);
                let h2 = h.clone();
                bodies.push(Box::new(move || {
                    for _ in 0..2 {
                        let t = h2.invoke(id, Op::CtrAdd { by: 1 });
                        // MUTANT: no lock, no FAA — a plain read/write
                        // pair that loses updates under interleaving.
                        let old = cl.read_u64(ctr).unwrap();
                        cl.write_u64(ctr, old + 1).unwrap();
                        h2.complete(t, Ret::Val(old));
                    }
                }));
            }
            PreparedRun { fabric: f, participants, bodies, history: h, finale: None }
        }),
    };
    Mutant { program, expect: &[Expect::Races, Expect::Lin] }
}

/// M4 — a reader that skips `read_lock` and snapshots the pair with one
/// multi-word read while the writer (correctly locked) updates it word
/// by word: a torn read, visible both to the race detector and as a
/// register value that was never written.
fn rwlock_skip_readlock() -> Mutant {
    let program = Program {
        name: "m4_rwlock_skip_readlock",
        model: Some(Model::Register { init: 0 }),
        check_races: true,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let lk = FarRwLock::create(&mut c0, &alloc, AllocHint::Spread).unwrap();
            let pair = alloc.alloc(16, AllocHint::Spread).unwrap();
            c0.write(pair, &[0u8; 16]).unwrap();
            let h = Arc::new(History::new());
            let mut writer = f.client();
            let wid = writer.id();
            let mut reader = f.client();
            let rid = reader.id();
            let participants = vec![wid, rid];
            let hw = h.clone();
            let lw = FarRwLock::attach(lk.addr());
            let wbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for i in 1..=2u64 {
                    let t = hw.invoke(wid, Op::RegWrite { part: 0, v: vec![i, i] });
                    if lw.write_lock(&mut writer, 24).is_err() {
                        hw.fail(t);
                        continue;
                    }
                    writer.write_u64(pair, i).unwrap();
                    writer.write_u64(pair.offset(8), i).unwrap();
                    let _ = lw.write_unlock(&mut writer);
                    hw.complete(t, Ret::Unit);
                }
            });
            let hr = h.clone();
            let rbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = hr.invoke(rid, Op::RegRead { part: 0 });
                    // MUTANT: no read_lock around the snapshot.
                    let b = reader.read(pair, 16).unwrap();
                    let w0 = u64::from_le_bytes(b[0..8].try_into().unwrap());
                    let w1 = u64::from_le_bytes(b[8..16].try_into().unwrap());
                    hr.complete(t, Ret::Vals(vec![w0, w1]));
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![wbody, rbody],
                history: h,
                finale: None,
            }
        }),
    };
    Mutant { program, expect: &[Expect::Races, Expect::Lin] }
}

/// M5 — a miniature directory split that publishes the new table
/// pointer *before* filling the table (the correct order is
/// fill-then-CAS). Readers chasing the pointer observe uninitialised
/// memory. Race detection is off: the catch is attributed to the
/// linearizability checker alone.
fn split_publish_order() -> Mutant {
    let program = Program {
        name: "m5_split_publish_before_fill",
        model: Some(Model::Register { init: 1 }),
        check_races: false,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let t1 = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(t1, 1).unwrap();
            let dir = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(dir, t1.0).unwrap();
            let h = Arc::new(History::new());
            h.seed(c0.id(), Op::RegWrite { part: 0, v: vec![1] }, Ret::Unit);
            let mut cw = f.client();
            let wid = cw.id();
            let participants_head = wid;
            let hw = h.clone();
            let alloc_w = alloc.clone();
            let wbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = hw.invoke(wid, Op::RegWrite { part: 0, v: vec![2] });
                let t2 = alloc_w.alloc(8, AllocHint::Spread).unwrap();
                // MUTANT: publish the directory entry first, fill the
                // table after — readers can chase into zeroed memory.
                assert_eq!(cw.cas(dir, t1.0, t2.0).unwrap(), t1.0);
                cw.write_u64(t2, 2).unwrap();
                hw.complete(t, Ret::Unit);
            });
            let mut participants = vec![participants_head];
            let mut bodies = vec![wbody];
            for _ in 0..2 {
                let mut cr = f.client();
                let rid = cr.id();
                participants.push(rid);
                let hr = h.clone();
                bodies.push(Box::new(move || {
                    let t = hr.invoke(rid, Op::RegRead { part: 0 });
                    let p = cr.read_u64(dir).unwrap();
                    let v = cr.read_u64(FarAddr(p)).unwrap();
                    hr.complete(t, Ret::Vals(vec![v]));
                }) as Box<dyn FnOnce() + Send>);
            }
            PreparedRun { fabric: f, participants, bodies, history: h, finale: None }
        }),
    };
    Mutant { program, expect: &[Expect::Lin] }
}

/// M6 — double retire: the same block is handed to the limbo list
/// twice, violating the "retired exactly once" contract. Grace then
/// frees it twice — 16 bytes back from an 8-byte allocation — which the
/// finale's conservation invariant catches. (A "retire without seal"
/// variant is *not* a usable mutant here: `reclaim` auto-seals pending
/// retires on entry, by design.)
fn double_retire() -> Mutant {
    let program = Program {
        name: "m6_double_retire",
        model: None,
        check_races: true,
        max_steps: 400,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let reg = ReclaimRegistry::create(&mut c0, &alloc, 4).unwrap();
            let x = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(x, 1).unwrap();
            let h = Arc::new(History::new());
            let mut ca = f.client();
            let aid = ca.id();
            let sa = reg.attach(&mut ca, &alloc).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let sb = reg.attach(&mut cb, &alloc).unwrap();
            let participants = vec![aid, bid];
            let abody: Box<dyn FnOnce() + Send> = Box::new(move || {
                // A well-behaved peer: pins and unpins, never lags.
                for _ in 0..2 {
                    if let Ok(g) = pin(&sa, &mut ca) {
                        drop(g);
                    }
                }
            });
            let freed_total = Arc::new(AtomicU64::new(0));
            let ff = freed_total.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                // MUTANT: the same 8-byte block is retired twice.
                {
                    let mut r = sb.lock().unwrap();
                    // lint: retire-ok: mutation under test — deliberate double retire
                    r.retire(&mut cb, x, 8).unwrap();
                    r.retire(&mut cb, x, 8).unwrap();
                }
                for _ in 0..30 {
                    // A downstream BadFree from the allocator is itself
                    // the anomaly the invariant must surface — don't
                    // panic, mark it.
                    match sb.lock().unwrap().reclaim(&mut cb) {
                        Ok(freed) => {
                            ff.fetch_add(freed, Ordering::SeqCst);
                        }
                        Err(_) => {
                            ff.store(u64::MAX, Ordering::SeqCst);
                            break;
                        }
                    }
                    if ff.load(Ordering::SeqCst) >= 8 {
                        break;
                    }
                }
            });
            let finale: Box<dyn FnOnce() -> Option<String>> = Box::new(move || {
                let freed = freed_total.load(Ordering::SeqCst);
                if freed == 8 {
                    None
                } else if freed == u64::MAX {
                    Some("conservation violated: duplicate retire reached the allocator".into())
                } else {
                    Some(format!(
                        "conservation violated: freed {freed} bytes from one 8-byte retire"
                    ))
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![abody, bbody],
                history: h,
                finale: Some(finale),
            }
        }),
    };
    Mutant { program, expect: &[Expect::Invariant] }
}

/// M7 — free before grace: the reclaimer poisons the retired block
/// immediately after unpublishing it, without waiting for readers'
/// epochs. A pinned reader observes the poison (linearizability) and the
/// poison store races its read (race detector).
fn free_before_grace() -> Mutant {
    let program = Program {
        name: "m7_free_before_grace",
        model: Some(Model::Register { init: 1 }),
        check_races: true,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let reg = ReclaimRegistry::create(&mut c0, &alloc, 4).unwrap();
            let ptr = alloc.alloc(8, AllocHint::Spread).unwrap();
            let x = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(x, 1).unwrap();
            c0.write_u64(ptr, x.0).unwrap();
            let h = Arc::new(History::new());
            h.seed(c0.id(), Op::RegWrite { part: 0, v: vec![1] }, Ret::Unit);
            let mut ca = f.client();
            let aid = ca.id();
            let sa = reg.attach(&mut ca, &alloc).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let participants = vec![aid, bid];
            let h2 = h.clone();
            let abody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = h2.invoke(aid, Op::RegRead { part: 0 });
                    match pin(&sa, &mut ca) {
                        Ok(g) => {
                            let p = ca.read_u64(ptr).unwrap();
                            let v = ca.read_u64(FarAddr(p)).unwrap();
                            drop(g);
                            h2.complete(t, Ret::Vals(vec![v]));
                        }
                        Err(_) => h2.fail(t),
                    }
                }
            });
            let h3 = h.clone();
            let alloc_b = alloc.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = h3.invoke(bid, Op::RegWrite { part: 0, v: vec![2] });
                let y = alloc_b.alloc(8, AllocHint::Spread).unwrap();
                cb.write_u64(y, 2).unwrap();
                assert_eq!(cb.cas(ptr, x.0, y.0).unwrap(), x.0);
                h3.complete(t, Ret::Unit);
                // MUTANT: no retire/seal/grace — poison immediately, as
                // if the block were freed and reused on the spot.
                cb.write_u64(x, crate::programs::POISON).unwrap();
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![abody, bbody],
                history: h,
                finale: None,
            }
        }),
    };
    Mutant { program, expect: &[Expect::Races, Expect::Lin] }
}

/// M8 — a miniature array queue whose dequeue advances the head with a
/// read-then-plain-write instead of an atomic claim: two consumers can
/// dequeue the same item. Race detection off; the catch belongs to the
/// FIFO linearizability check.
fn queue_nonatomic_head() -> Mutant {
    let program = Program {
        name: "m8_queue_nonatomic_head",
        model: Some(Model::Fifo),
        check_races: false,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            // Layout: [head, tail, slot0..slot3], pre-filled with two
            // items so the history starts `Enq 11, Enq 22`.
            let base = alloc.alloc(8 * 6, AllocHint::Spread).unwrap();
            c0.write_u64(base, 0).unwrap();
            c0.write_u64(base.offset(8), 2).unwrap();
            c0.write_u64(base.offset(16), 11).unwrap();
            c0.write_u64(base.offset(24), 22).unwrap();
            let h = Arc::new(History::new());
            h.seed(c0.id(), Op::Enq { v: 11 }, Ret::Unit);
            h.seed(c0.id(), Op::Enq { v: 22 }, Ret::Unit);
            let mut participants = Vec::new();
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..2 {
                let mut cl = f.client();
                let id = cl.id();
                participants.push(id);
                let h2 = h.clone();
                bodies.push(Box::new(move || {
                    let t = h2.invoke(id, Op::Deq);
                    let head = cl.read_u64(base).unwrap();
                    let tail = cl.read_u64(base.offset(8)).unwrap();
                    if head >= tail {
                        h2.complete(t, Ret::OptVal(None));
                        return;
                    }
                    let v = cl.read_u64(base.offset(16 + head * 8)).unwrap();
                    // MUTANT: plain head bump — correct code claims the
                    // slot with a CAS/FAA so each item is taken once.
                    cl.write_u64(base, head + 1).unwrap();
                    h2.complete(t, Ret::OptVal(Some(v)));
                }));
            }
            PreparedRun { fabric: f, participants, bodies, history: h, finale: None }
        }),
    };
    Mutant { program, expect: &[Expect::Lin] }
}

/// Shared geometry of the failover mutants (M9–M11): the miniature
/// replicated register of `programs::replica_failover` — epoch word `e`
/// (the fencing token), primary copy `d_a`, replica copy `d_b`, both
/// seeded with the register's initial value 1.
fn failover_words(
    f: &Arc<farmem_fabric::Fabric>,
) -> (FarAddr, FarAddr, FarAddr, Arc<History>, u32) {
    let alloc = FarAlloc::new(f.clone());
    let mut c0 = f.client();
    let e = word(&mut c0, &alloc);
    let d_a = alloc.alloc(8, AllocHint::Spread).unwrap();
    let d_b = alloc.alloc(8, AllocHint::Spread).unwrap();
    c0.write_u64(d_a, 1).unwrap();
    c0.write_u64(d_b, 1).unwrap();
    let h = Arc::new(History::new());
    h.seed(c0.id(), Op::RegWrite { part: 0, v: vec![1] }, Ret::Unit);
    (e, d_a, d_b, h, c0.id())
}

/// M9 — a deposed primary keeps serving reads: the reader never checks
/// the fencing epoch and always reads the old primary copy, so a read
/// invoked after the promoted replica's write completed still returns
/// the pre-failover value. Exactly the stale-primary split-brain the
/// fencing token exists to prevent.
fn serve_read_after_fence() -> Mutant {
    let program = Program {
        name: "m9_serve_read_after_fence",
        model: Some(Model::Register { init: 1 }),
        check_races: false,
        max_steps: 150,
        build: Box::new(|| {
            let f = plain_fabric();
            let (e, d_a, d_b, h, _) = failover_words(&f);
            let mut cp = f.client();
            let pid = cp.id();
            let hp = h.clone();
            let pbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = hp.invoke(pid, Op::RegWrite { part: 0, v: vec![2] });
                assert_eq!(cp.cas(e, 0, 1).unwrap(), 0, "sole promoter");
                cp.write_u64(d_b, 2).unwrap();
                hp.complete(t, Ret::Unit);
            });
            let mut cr = f.client();
            let rid = cr.id();
            let hr = h.clone();
            let rbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = hr.invoke(rid, Op::RegRead { part: 0 });
                    // MUTANT: epoch never consulted — the read is served
                    // from the deposed primary `d_a` forever. Correct
                    // code reads `e` and follows it to `d_b`.
                    let v = cr.read_u64(d_a).unwrap();
                    hr.complete(t, Ret::Vals(vec![v]));
                }
            });
            PreparedRun {
                fabric: f,
                participants: vec![pid, rid],
                bodies: vec![pbody, rbody],
                history: h,
                finale: None,
            }
        }),
    };
    Mutant { program, expect: &[Expect::Lin] }
}

/// M10 — promotion without bumping the configuration epoch: the new
/// primary starts serving writes but no fencing token ever changes, so
/// epoch-honouring readers keep reading the old copy and miss completed
/// writes.
fn promote_without_epoch_bump() -> Mutant {
    let program = Program {
        name: "m10_promote_without_epoch_bump",
        model: Some(Model::Register { init: 1 }),
        check_races: false,
        max_steps: 150,
        build: Box::new(|| {
            let f = plain_fabric();
            let (e, d_a, d_b, h, _) = failover_words(&f);
            let mut cp = f.client();
            let pid = cp.id();
            let hp = h.clone();
            let pbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = hp.invoke(pid, Op::RegWrite { part: 0, v: vec![2] });
                // MUTANT: no `cas(e, 0, 1)` — the replica starts serving
                // writes without publishing a new configuration epoch.
                cp.write_u64(d_b, 2).unwrap();
                hp.complete(t, Ret::Unit);
            });
            let mut cr = f.client();
            let rid = cr.id();
            let hr = h.clone();
            let rbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = hr.invoke(rid, Op::RegRead { part: 0 });
                    let epoch = cr.read_u64(e).unwrap();
                    let v = if epoch == 0 {
                        cr.read_u64(d_a).unwrap()
                    } else {
                        cr.read_u64(d_b).unwrap()
                    };
                    hr.complete(t, Ret::Vals(vec![v]));
                }
            });
            PreparedRun {
                fabric: f,
                participants: vec![pid, rid],
                bodies: vec![pbody, rbody],
                history: h,
                finale: None,
            }
        }),
    };
    Mutant { program, expect: &[Expect::Lin] }
}

/// M11 — write acknowledged before the replica is durable: the writer
/// completes after updating only the primary copy and mirrors to the
/// replica afterwards. A failover in that window (the reader serves from
/// the replica, as after a promotion) loses the acknowledged write.
fn ack_write_before_replica_durable() -> Mutant {
    let program = Program {
        name: "m11_ack_write_before_replica_durable",
        model: Some(Model::Register { init: 1 }),
        check_races: false,
        max_steps: 150,
        build: Box::new(|| {
            let f = plain_fabric();
            let (_e, d_a, d_b, h, _) = failover_words(&f);
            let mut cw = f.client();
            let wid = cw.id();
            let hw = h.clone();
            let wbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = hw.invoke(wid, Op::RegWrite { part: 0, v: vec![2] });
                cw.write_u64(d_a, 2).unwrap();
                // MUTANT: ack after primary durability only — correct
                // code mirrors to `d_b` *before* completing the write
                // (ack-after-replica-durable).
                hw.complete(t, Ret::Unit);
                cw.write_u64(d_b, 2).unwrap();
            });
            // The post-failover reader: the primary has crash-stopped,
            // so the promoted replica `d_b` serves the read.
            let mut cr = f.client();
            let rid = cr.id();
            let hr = h.clone();
            let rbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = hr.invoke(rid, Op::RegRead { part: 0 });
                    let v = cr.read_u64(d_b).unwrap();
                    hr.complete(t, Ret::Vals(vec![v]));
                }
            });
            PreparedRun {
                fabric: f,
                participants: vec![wid, rid],
                bodies: vec![wbody, rbody],
                history: h,
                finale: None,
            }
        }),
    };
    Mutant { program, expect: &[Expect::Lin] }
}

/// Shared setup of the serving-TTL mutants (M12–M13): the two-word
/// record of `programs::serve_ttl_evict` — expiry flag `exp` (zeroed)
/// and value word `val` seeded with the register's initial value 7,
/// plus a 4-slot reclaim registry.
#[allow(clippy::type_complexity)]
fn ttl_words(
    f: &Arc<farmem_fabric::Fabric>,
) -> (Arc<FarAlloc>, ReclaimRegistry, FarAddr, FarAddr, Arc<History>) {
    let alloc = FarAlloc::new(f.clone());
    let mut c0 = f.client();
    let reg = ReclaimRegistry::create(&mut c0, &alloc, 4).unwrap();
    let exp = word(&mut c0, &alloc);
    let val = alloc.alloc(8, AllocHint::Spread).unwrap();
    c0.write_u64(val, 7).unwrap();
    let h = Arc::new(History::new());
    h.seed(c0.id(), Op::RegWrite { part: 0, v: vec![7] }, Ret::Unit);
    (alloc, reg, exp, val, h)
}

/// M12 — serve after expiry: the serving read path skips the record's
/// TTL check and serves the value word unconditionally. Retirement and
/// reclamation stay fully intact, so there is nothing for the race
/// detector — the catch is pure history: a get invoked after the expiry
/// completed must miss (return the tombstone 0), and this reader keeps
/// serving the old value.
fn serve_read_after_expiry() -> Mutant {
    let program = Program {
        name: "m12_serve_read_after_expiry",
        model: Some(Model::Register { init: 7 }),
        check_races: true,
        max_steps: 400,
        build: Box::new(|| {
            let f = plain_fabric();
            let (alloc, reg, exp, val, h) = ttl_words(&f);
            let mut ca = f.client();
            let aid = ca.id();
            let sa = reg.attach(&mut ca, &alloc).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let sb = reg.attach(&mut cb, &alloc).unwrap();
            let participants = vec![aid, bid];
            let h2 = h.clone();
            let abody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = h2.invoke(aid, Op::RegRead { part: 0 });
                    match pin(&sa, &mut ca) {
                        Ok(g) => {
                            // MUTANT: no expiry-flag read — the record is
                            // served no matter how stale it is.
                            let v = ca.read_u64(val).unwrap();
                            drop(g);
                            h2.complete(t, Ret::Vals(vec![v]));
                        }
                        Err(_) => h2.fail(t),
                    }
                }
            });
            let h3 = h.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = h3.invoke(bid, Op::RegWrite { part: 0, v: vec![0] });
                assert_eq!(cb.cas(exp, 0, 1).unwrap(), 0, "sole expirer");
                h3.complete(t, Ret::Unit);
                {
                    let mut hh = sb.lock().unwrap();
                    hh.retire(&mut cb, val, 8).unwrap();
                    hh.seal(&mut cb).unwrap();
                }
                // Few rounds, as in reclaim_publish: no lease eviction.
                for _ in 0..4 {
                    if sb.lock().unwrap().reclaim(&mut cb).unwrap() > 0 {
                        break;
                    }
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![abody, bbody],
                history: h,
                finale: None,
            }
        }),
    };
    Mutant { program, expect: &[Expect::Lin] }
}

/// M13 — evict without retire: the expirer raises the TTL flag and then
/// poisons the value word on the spot — no retire, no seal, no grace
/// period — as if the record's bytes were freed and reused immediately.
/// A pinned reader that sampled the flag while it was still clear goes
/// on to serve the poison (linearizability), and the poison store races
/// its read (race detector) — the serving-layer rendition of M7.
fn evict_without_retire() -> Mutant {
    let program = Program {
        name: "m13_evict_without_retire",
        model: Some(Model::Register { init: 7 }),
        check_races: true,
        max_steps: 250,
        build: Box::new(|| {
            let f = plain_fabric();
            let (alloc, reg, exp, val, h) = ttl_words(&f);
            let mut ca = f.client();
            let aid = ca.id();
            let sa = reg.attach(&mut ca, &alloc).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let participants = vec![aid, bid];
            let h2 = h.clone();
            let abody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = h2.invoke(aid, Op::RegRead { part: 0 });
                    match pin(&sa, &mut ca) {
                        Ok(g) => {
                            let expired = ca.read_u64(exp).unwrap() != 0;
                            let v = if expired { 0 } else { ca.read_u64(val).unwrap() };
                            drop(g);
                            h2.complete(t, Ret::Vals(vec![v]));
                        }
                        Err(_) => h2.fail(t),
                    }
                }
            });
            let h3 = h.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = h3.invoke(bid, Op::RegWrite { part: 0, v: vec![0] });
                assert_eq!(cb.cas(exp, 0, 1).unwrap(), 0, "sole expirer");
                h3.complete(t, Ret::Unit);
                // MUTANT: no retire/seal/grace — the record's bytes are
                // poisoned immediately, under a reader's pin.
                cb.write_u64(val, crate::programs::POISON).unwrap();
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![abody, bbody],
                history: h,
                finale: None,
            }
        }),
    };
    Mutant { program, expect: &[Expect::Races, Expect::Lin] }
}

/// Every mutant, in stable report order.
pub fn all_mutants() -> Vec<Mutant> {
    vec![
        mutex_unfenced_release(),
        mutex_immediate_steal(),
        unsync_counter(),
        rwlock_skip_readlock(),
        split_publish_order(),
        double_retire(),
        free_before_grace(),
        queue_nonatomic_head(),
        serve_read_after_fence(),
        promote_without_epoch_bump(),
        ack_write_before_replica_durable(),
        serve_read_after_expiry(),
        evict_without_retire(),
    ]
}
