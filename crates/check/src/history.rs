//! Operation histories for linearizability checking.
//!
//! Bodies running under the explorer record each high-level operation as
//! an invocation/response pair. Stamps come from one shared counter;
//! because the explorer serialises participants (one granted step at a
//! time) the stamps — and therefore the recorded history — are a pure
//! function of the schedule, which is what makes suite output
//! byte-for-byte reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A high-level operation against one of the checked models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Atomic add on a counter; the response carries the value read.
    CtrAdd {
        /// Amount added.
        by: u64,
    },
    /// Read of the counter.
    CtrRead,
    /// Write of a (possibly multi-word) register.
    RegWrite {
        /// Register partition.
        part: u64,
        /// Value written, one entry per word.
        v: Vec<u64>,
    },
    /// Read of a register; response carries the words read.
    RegRead {
        /// Register partition.
        part: u64,
    },
    /// FIFO enqueue.
    Enq {
        /// Value enqueued.
        v: u64,
    },
    /// FIFO dequeue; response is the value or `None` for empty.
    Deq,
    /// Map put.
    Put {
        /// Key.
        k: u64,
        /// Value.
        v: u64,
    },
    /// Map get; response is the value or `None` for absent.
    Get {
        /// Key.
        k: u64,
    },
    /// Map remove.
    Remove {
        /// Key.
        k: u64,
    },
}

/// An operation's response value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ret {
    /// No interesting value (writes, puts, removes).
    Unit,
    /// A single value.
    Val(u64),
    /// An optional value (dequeue, get).
    OptVal(Option<u64>),
    /// A multi-word value (register reads).
    Vals(Vec<u64>),
}

/// One completed (or failed) operation in a history.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Issuing client id.
    pub client: u32,
    /// The operation.
    pub op: Op,
    /// Its response.
    pub ret: Ret,
    /// Invocation stamp.
    pub inv: u64,
    /// Response stamp (`u64::MAX` while pending).
    pub res: u64,
    /// True when the operation failed without taking effect; such
    /// records are excluded from linearizability checking.
    pub failed: bool,
}

impl OpRecord {
    /// Stable one-line rendering for violation reports.
    pub fn render(&self) -> String {
        format!("c{} {:?} -> {:?} [{}..{}]", self.client, self.op, self.ret, self.inv, self.res)
    }
}

/// Handle returned by [`History::invoke`]; pass it back to
/// [`History::complete`] or [`History::fail`].
#[derive(Clone, Copy, Debug)]
pub struct OpToken(usize);

/// A shared, append-only operation history.
#[derive(Default)]
pub struct History {
    stamp: AtomicU64,
    ops: Mutex<Vec<OpRecord>>,
}

impl History {
    /// An empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Records an invocation; the operation is pending (and counts as
    /// failed) until completed.
    pub fn invoke(&self, client: u32, op: Op) -> OpToken {
        let inv = self.stamp.fetch_add(1, Ordering::SeqCst);
        let mut v = self.ops.lock().unwrap();
        v.push(OpRecord { client, op, ret: Ret::Unit, inv, res: u64::MAX, failed: true });
        OpToken(v.len() - 1)
    }

    /// Completes a pending operation with its response.
    pub fn complete(&self, t: OpToken, ret: Ret) {
        let res = self.stamp.fetch_add(1, Ordering::SeqCst);
        let mut v = self.ops.lock().unwrap();
        let r = &mut v[t.0];
        r.ret = ret;
        r.res = res;
        r.failed = false;
    }

    /// Marks a pending operation as failed-without-effect (e.g. a lock
    /// acquisition that timed out before touching the protected data).
    pub fn fail(&self, t: OpToken) {
        let res = self.stamp.fetch_add(1, Ordering::SeqCst);
        let mut v = self.ops.lock().unwrap();
        v[t.0].res = res;
        v[t.0].failed = true;
    }

    /// Records an operation that is known to linearize before everything
    /// still to come (setup writes): invocation and response are stamped
    /// back to back.
    pub fn seed(&self, client: u32, op: Op, ret: Ret) {
        let t = self.invoke(client, op);
        self.complete(t, ret);
    }

    /// Drains the recorded operations.
    pub fn take(&self) -> Vec<OpRecord> {
        std::mem::take(&mut *self.ops.lock().unwrap())
    }
}
