//! Vector-clock happens-before race detection over fabric accesses.
//!
//! # Happens-before model
//!
//! The fabric gives a far-memory program exactly three sources of
//! cross-client ordering, and the detector recognises exactly those (see
//! DESIGN.md §9 for the full rationale):
//!
//! 1. **Fabric atomics.** A successful CAS / FAA / guarded RMW
//!    ([`AccessKind::AtomicRmw`]) is an acquire *and* release on its
//!    word: the client joins the word's `sync` clock, then publishes its
//!    own clock back into it. A failed CAS or a guard probe
//!    ([`AccessKind::AtomicRead`]) is acquire-only.
//! 2. **Reads-from on published words.** A plain read joins the word's
//!    `sync` clock. The memory node serialises word access, so a read
//!    that observes a CAS-published value really is ordered after the
//!    publishing RMW — this is what makes "CAS the pointer, then read
//!    through it" and "scan the registry slots" race-free without any
//!    lock. Plain *writes* never publish: writing a word tells nobody
//!    anything.
//! 3. **Notifications.** Delivery of a notification for a word joins
//!    that word's `sync` clock: the subscriber is ordered after the
//!    (atomic) update that fired it. Plain-write triggers order only
//!    through a subsequent atomic, and the detector makes no exception
//!    for them.
//!
//! The simulated-scheduler order itself creates **no** edges: that two
//! verbs happened to be serialised by the explorer does not make a real
//! fabric serialise them.
//!
//! # What is flagged
//!
//! Per word, with `⊀` meaning "not ordered by the model above":
//!
//! * plain write ⊀ plain write — [`RaceKind::WriteWrite`];
//! * plain read ⊀ plain write (either order) — [`RaceKind::ReadWrite`],
//!   or [`RaceKind::TornRead`] when the read is one word of a
//!   multi-word access (the classic torn pair);
//! * plain write ⊀ atomic access — [`RaceKind::AtomicPlain`]: blind
//!   plain stores to a word others CAS (e.g. a lock released without
//!   its fencing-token check) corrupt the atomic protocol;
//! * plain read vs atomic RMW is **allowed**: optimistic probe loops and
//!   version-validated multi-word scans read words that are concurrently
//!   CAS'd by design, and the node serialises each word access.

use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

use farmem_fabric::{Access, AccessKind, FarAddr};

use crate::vc::{Epoch, VectorClock};

const WORD: u64 = 8;

/// Classification of a detected race (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RaceKind {
    /// Two unordered plain writes to the same word.
    WriteWrite,
    /// A plain read unordered with a plain write of the same word.
    ReadWrite,
    /// Like [`RaceKind::ReadWrite`], but the read was one word of a
    /// multi-word access: the access can observe a torn value.
    TornRead,
    /// A plain write unordered with an atomic access of the same word.
    AtomicPlain,
}

impl RaceKind {
    /// Short stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
            RaceKind::TornRead => "torn-read",
            RaceKind::AtomicPlain => "atomic-plain",
        }
    }
}

/// One deduplicated race report.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Race {
    /// Byte address of the conflicting word.
    pub word: u64,
    /// Race classification.
    pub kind: RaceKind,
    /// The two clients involved, smaller id first.
    pub clients: (u32, u32),
}

impl Race {
    /// Stable one-line rendering, e.g. `write-write @0x40 c1<->c2`.
    pub fn render(&self) -> String {
        format!("{} @{:#x} c{}<->c{}", self.kind.label(), self.word, self.clients.0, self.clients.1)
    }
}

#[derive(Default)]
struct WordState {
    /// Clock released into the word by atomic RMWs.
    sync: VectorClock,
    /// Most recent plain write.
    last_write: Option<Epoch>,
    /// Most recent atomic RMW (the write half of the protocol).
    last_atomic: Option<Epoch>,
    /// Plain reads since the last plain write (one epoch per client).
    reads: Vec<Epoch>,
}

#[derive(Default)]
struct DetectorState {
    clients: HashMap<u32, VectorClock>,
    words: HashMap<u64, WordState>,
    found: BTreeSet<Race>,
}

/// A happens-before race detector fed one [`Access`] at a time.
///
/// The detector is installed for a single explorer run (one fresh fabric)
/// and accumulates deduplicated [`Race`]s. It holds an internal mutex:
/// under the explorer exactly one client runs at a time, so there is no
/// contention, and outside the explorer the lock makes it safe anyway.
#[derive(Default)]
pub struct RaceDetector {
    state: Mutex<DetectorState>,
}

impl RaceDetector {
    /// A fresh detector with no knowledge of any client or word.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Feeds one fabric access (multi-word accesses are checked per word).
    pub fn on_access(&self, a: &Access) {
        let mut st = self.state.lock().unwrap();
        let range = a.len > WORD || !a.addr.0.is_multiple_of(WORD);
        let first = a.addr.0 / WORD;
        let last = (a.addr.0 + a.len.max(1) - 1) / WORD;
        let time = st.clients.entry(a.client).or_default().tick(a.client);
        for w in first..=last {
            st.step(a.client, time, w * WORD, a.kind, range);
        }
    }

    /// Feeds a notification delivery: the subscriber joins the covered
    /// words' `sync` clocks (edge 3 of the model).
    pub fn on_notified(&self, client: u32, addr: FarAddr, len: u64) {
        let mut st = self.state.lock().unwrap();
        let first = addr.0 / WORD;
        let last = (addr.0 + len.max(1) - 1) / WORD;
        for w in first..=last {
            if let Some(ws) = st.words.get(&(w * WORD)) {
                let sync = ws.sync.clone();
                st.clients.entry(client).or_default().join(&sync);
            }
        }
    }

    /// All races found so far, deduplicated and in stable order.
    pub fn races(&self) -> Vec<Race> {
        self.state.lock().unwrap().found.iter().cloned().collect()
    }
}

impl DetectorState {
    fn step(&mut self, client: u32, time: u64, word: u64, kind: AccessKind, range: bool) {
        let ws = self.words.entry(word).or_default();
        let vc = self.clients.entry(client).or_default();
        // Acquire: every access that can observe a published value joins
        // the word's release clock (see module docs, edges 1 and 2).
        vc.join(&ws.sync);
        let ordered = |vc: &VectorClock, e: &Epoch| e.client == client || vc.covers(e.client, e.time);
        let mut hits: Vec<(RaceKind, u32)> = Vec::new();
        match kind {
            AccessKind::Read => {
                if let Some(w) = ws.last_write {
                    if !ordered(vc, &w) {
                        hits.push((if range { RaceKind::TornRead } else { RaceKind::ReadWrite }, w.client));
                    }
                }
                ws.reads.retain(|e| e.client != client);
                ws.reads.push(Epoch { client, time });
            }
            AccessKind::Write => {
                if let Some(w) = ws.last_write {
                    if !ordered(vc, &w) {
                        hits.push((RaceKind::WriteWrite, w.client));
                    }
                }
                if let Some(aw) = ws.last_atomic {
                    if !ordered(vc, &aw) {
                        hits.push((RaceKind::AtomicPlain, aw.client));
                    }
                }
                for r in &ws.reads {
                    if !ordered(vc, r) {
                        hits.push((if range { RaceKind::TornRead } else { RaceKind::ReadWrite }, r.client));
                    }
                }
                ws.last_write = Some(Epoch { client, time });
                // Reads ordered before this write are subsumed: any later
                // write ordered after us is ordered after them too, and an
                // unordered later write already races with us.
                ws.reads.clear();
            }
            AccessKind::AtomicRead | AccessKind::AtomicRmw => {
                if let Some(w) = ws.last_write {
                    if !ordered(vc, &w) {
                        hits.push((RaceKind::AtomicPlain, w.client));
                    }
                }
                if kind == AccessKind::AtomicRmw {
                    // Release: publish this client's history (including
                    // this very access) into the word.
                    ws.sync.join(vc);
                    ws.last_atomic = Some(Epoch { client, time });
                }
            }
        }
        for (kind, other) in hits {
            let clients = (client.min(other), client.max(other));
            self.found.insert(Race { word, kind, clients });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(client: u32, kind: AccessKind, addr: u64, len: u64) -> Access {
        Access { client, addr: FarAddr(addr), len, kind }
    }

    #[test]
    fn unsynchronized_write_write_flags() {
        let d = RaceDetector::new();
        d.on_access(&acc(1, AccessKind::Write, 0x100, 8));
        d.on_access(&acc(2, AccessKind::Write, 0x100, 8));
        let r = d.races();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, RaceKind::WriteWrite);
        assert_eq!(r[0].clients, (1, 2));
    }

    #[test]
    fn rmw_chain_orders_plain_accesses() {
        // c1: write data; RMW lock. c2: RMW lock (joins c1); write data.
        let d = RaceDetector::new();
        d.on_access(&acc(1, AccessKind::Write, 0x100, 8));
        d.on_access(&acc(1, AccessKind::AtomicRmw, 0x200, 8));
        d.on_access(&acc(2, AccessKind::AtomicRmw, 0x200, 8));
        d.on_access(&acc(2, AccessKind::Write, 0x100, 8));
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_through_published_pointer_is_ordered() {
        // c1 initialises an object with plain writes, then publishes its
        // address with a CAS; c2 plain-reads the pointer word (joining the
        // publish) and then the object. No races: edge 2 of the model.
        let d = RaceDetector::new();
        d.on_access(&acc(1, AccessKind::Write, 0x300, 8)); // object init
        d.on_access(&acc(1, AccessKind::AtomicRmw, 0x200, 8)); // publish ptr
        d.on_access(&acc(2, AccessKind::Read, 0x200, 8)); // read ptr
        d.on_access(&acc(2, AccessKind::Read, 0x300, 8)); // read object
        assert!(d.races().is_empty());
    }

    #[test]
    fn blind_store_to_cas_word_flags_atomic_plain() {
        // c1 plain-writes the lock word (unfenced release); c2's later CAS
        // is unordered with it.
        let d = RaceDetector::new();
        d.on_access(&acc(1, AccessKind::AtomicRmw, 0x200, 8)); // acquire
        d.on_access(&acc(2, AccessKind::AtomicRead, 0x200, 8)); // failed CAS
        d.on_access(&acc(1, AccessKind::Write, 0x200, 8)); // blind release
        d.on_access(&acc(2, AccessKind::AtomicRmw, 0x200, 8)); // acquire
        let r = d.races();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, RaceKind::AtomicPlain);
    }

    #[test]
    fn multi_word_read_against_unordered_writes_is_torn() {
        let d = RaceDetector::new();
        d.on_access(&acc(1, AccessKind::Write, 0x100, 8));
        d.on_access(&acc(2, AccessKind::Read, 0x100, 16));
        let r = d.races();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, RaceKind::TornRead);
    }

    #[test]
    fn probe_read_of_cas_word_is_allowed() {
        let d = RaceDetector::new();
        d.on_access(&acc(1, AccessKind::AtomicRmw, 0x200, 8));
        d.on_access(&acc(2, AccessKind::Read, 0x200, 8)); // optimistic probe
        d.on_access(&acc(1, AccessKind::AtomicRmw, 0x200, 8));
        assert!(d.races().is_empty());
    }

    #[test]
    fn notification_joins_firing_update() {
        // c1 plain-writes data then RMWs the watched word; c2 is notified
        // on the watched word and then plain-reads the data: ordered.
        let d = RaceDetector::new();
        d.on_access(&acc(1, AccessKind::Write, 0x100, 8));
        d.on_access(&acc(1, AccessKind::AtomicRmw, 0x200, 8));
        d.on_notified(2, FarAddr(0x200), 8);
        d.on_access(&acc(2, AccessKind::Write, 0x100, 8));
        assert!(d.races().is_empty());
    }
}
