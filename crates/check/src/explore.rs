//! Bounded deterministic exploration of client interleavings.
//!
//! One **run** executes a prepared program (fresh fabric, fresh
//! structures, one thread per simulated client) under the cooperative
//! [`Scheduler`]: every fabric verb attempt parks at a gate and the
//! driver grants exactly one client at a time, so the interleaving is a
//! pure function of the driver's choices. Exploration then enumerates
//! schedules two ways:
//!
//! * **DFS** over the tree of choice points (states where more than one
//!   client is runnable), depth-first with deterministic backtracking:
//!   re-run with the last choice incremented. Bounded by
//!   [`ExploreBounds::max_schedules`]; `exhausted` reports whether the
//!   whole tree fit.
//! * **Seeded random schedules**, which double as chaos runs when the
//!   program's fabric enables a fault plan: transient faults perturb the
//!   verb streams, and the histories still have to linearize.
//!
//! Runs that exceed the step bound (or wedge on the wall-clock watchdog)
//! are **truncated**: the scheduler is poisoned, the threads free-run to
//! completion, and everything observed is discarded — only the count is
//! kept. This is standard depth bounding; counted truncation keeps the
//! reported coverage honest.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use farmem_fabric::{Access, CheckObserver, Fabric, FarAddr};

use crate::history::{History, OpRecord};
use crate::linz::{self, Model};
use crate::race::{Race, RaceDetector};
use crate::sched::{Quiesce, Scheduler};

/// Observer composing the scheduler gate with optional race detection.
struct Hub {
    sched: Arc<Scheduler>,
    det: Option<Arc<RaceDetector>>,
    muted: AtomicBool,
}

impl CheckObserver for Hub {
    fn gate(&self, client: u32) {
        self.sched.gate(client);
    }

    fn access(&self, a: &Access) {
        if self.muted.load(Ordering::Acquire) {
            return;
        }
        if let Some(d) = &self.det {
            d.on_access(a);
        }
    }

    fn notified(&self, client: u32, addr: FarAddr, len: u64) {
        if self.muted.load(Ordering::Acquire) {
            return;
        }
        if let Some(d) = &self.det {
            d.on_notified(client, addr, len);
        }
    }
}

/// One freshly-built instance of a program, ready to run once.
pub struct PreparedRun {
    /// The fabric all clients share (observer is installed on it).
    pub fabric: Arc<Fabric>,
    /// Participant client ids, one per body, same order.
    pub participants: Vec<u32>,
    /// One body per participant; runs on its own thread.
    pub bodies: Vec<Box<dyn FnOnce() + Send>>,
    /// The shared operation history the bodies record into.
    pub history: Arc<History>,
    /// Post-run invariant check (runs only for completed runs); returns
    /// a violation description or `None`.
    pub finale: Option<Box<dyn FnOnce() -> Option<String>>>,
}

/// A checkable program: a builder producing fresh [`PreparedRun`]s plus
/// the analyses to apply.
pub struct Program {
    /// Stable name used in reports.
    pub name: &'static str,
    /// Sequential model for linearizability checking, if any.
    pub model: Option<Model>,
    /// Whether to run the happens-before race detector.
    pub check_races: bool,
    /// Per-run step bound (grants before truncation).
    pub max_steps: u64,
    /// Builds a fresh instance (fresh fabric and structures) per run.
    pub build: Box<dyn Fn() -> PreparedRun>,
}

/// Exploration bounds; see module docs.
#[derive(Clone, Copy, Debug)]
pub struct ExploreBounds {
    /// DFS schedule budget.
    pub max_schedules: usize,
    /// Seeded random schedules run after the DFS phase.
    pub random_schedules: usize,
    /// Seed for the random phase.
    pub seed: u64,
}

/// One choice point: which runnable client was picked, out of how many.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    arity: usize,
}

struct RunRecord {
    decisions: Vec<Decision>,
    truncated: bool,
    panicked: bool,
    steps: u64,
    races: Vec<Race>,
    ops: Vec<OpRecord>,
    invariant: Option<String>,
}

/// Aggregated result of exploring one program.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Program name.
    pub name: &'static str,
    /// DFS schedules executed.
    pub schedules: usize,
    /// Random schedules executed.
    pub random_schedules: usize,
    /// True when DFS enumerated the whole choice tree within budget.
    pub exhausted: bool,
    /// Runs discarded for exceeding the step bound (or wedging).
    pub truncated: usize,
    /// Runs discarded because a body panicked.
    pub panicked: usize,
    /// Total granted steps across kept runs.
    pub steps: u64,
    /// Deduplicated races across kept runs, stable order.
    pub races: Vec<Race>,
    /// Completed runs whose history was checked against the model.
    pub lin_checked: usize,
    /// Runs whose history failed to linearize.
    pub lin_violations: usize,
    /// First linearizability violation, rendered.
    pub first_lin: Option<String>,
    /// Runs whose finale invariant failed.
    pub invariant_violations: usize,
    /// First invariant violation, rendered.
    pub first_invariant: Option<String>,
}

impl Exploration {
    /// True when no analysis found anything (races, linearizability,
    /// invariants, panics).
    pub fn clean(&self) -> bool {
        self.races.is_empty()
            && self.lin_violations == 0
            && self.invariant_violations == 0
            && self.panicked == 0
    }
}

/// Runs one schedule: `chooser(arity)` picks at each choice point.
fn run_one(prep: PreparedRun, chooser: &mut dyn FnMut(usize) -> usize, max_steps: u64, check_races: bool) -> RunRecord {
    let sched = Arc::new(Scheduler::new(&prep.participants));
    let det = check_races.then(|| Arc::new(RaceDetector::new()));
    let hub = Arc::new(Hub { sched: sched.clone(), det: det.clone(), muted: AtomicBool::new(false) });
    prep.fabric.install_check_observer(hub.clone());
    let panicked = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for (i, body) in prep.bodies.into_iter().enumerate() {
        let id = prep.participants[i];
        let s2 = sched.clone();
        let p2 = panicked.clone();
        handles.push(std::thread::spawn(move || {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).is_err() {
                p2.store(true, Ordering::SeqCst);
            }
            s2.finish(id);
        }));
    }
    let mut decisions = Vec::new();
    let mut steps = 0u64;
    let mut truncated = false;
    loop {
        match sched.wait_quiescent() {
            Quiesce::Stuck => {
                truncated = true;
                break;
            }
            Quiesce::Runnable(r) if r.is_empty() => break,
            Quiesce::Runnable(r) => {
                if steps >= max_steps {
                    truncated = true;
                    break;
                }
                let chosen = if r.len() == 1 {
                    0
                } else {
                    let c = chooser(r.len()).min(r.len() - 1);
                    decisions.push(Decision { chosen: c, arity: r.len() });
                    c
                };
                steps += 1;
                sched.grant(r[chosen]);
            }
        }
    }
    if truncated {
        hub.muted.store(true, Ordering::Release);
        sched.poison();
    }
    for h in handles {
        let _ = h.join();
    }
    prep.fabric.clear_check_observer();
    let was_panicked = panicked.load(Ordering::SeqCst);
    let keep = !truncated && !was_panicked;
    RunRecord {
        decisions,
        truncated,
        panicked: was_panicked,
        steps,
        races: if keep { det.map(|d| d.races()).unwrap_or_default() } else { Vec::new() },
        ops: if keep { prep.history.take() } else { Vec::new() },
        invariant: if keep { prep.finale.and_then(|f| f()) } else { None },
    }
}

/// DFS backtracking: the next schedule prefix, or `None` when the tree
/// is exhausted.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        if decisions[i].chosen + 1 < decisions[i].arity {
            let mut p: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
            p.push(decisions[i].chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Deterministic splitmix64 generator for the random-schedule phase.
pub struct Lcg(u64);

impl Lcg {
    /// Seeded generator.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Explores `prog` under `bounds` and aggregates every analysis.
pub fn explore(prog: &Program, bounds: &ExploreBounds) -> Exploration {
    let mut out = Exploration {
        name: prog.name,
        schedules: 0,
        random_schedules: 0,
        exhausted: false,
        truncated: 0,
        panicked: 0,
        steps: 0,
        races: Vec::new(),
        lin_checked: 0,
        lin_violations: 0,
        first_lin: None,
        invariant_violations: 0,
        first_invariant: None,
    };
    let absorb = |out: &mut Exploration, rec: &RunRecord| {
        if rec.truncated {
            out.truncated += 1;
            return;
        }
        if rec.panicked {
            out.panicked += 1;
            return;
        }
        out.steps += rec.steps;
        for r in &rec.races {
            if !out.races.contains(r) {
                out.races.push(r.clone());
            }
        }
        if let Some(model) = prog.model {
            out.lin_checked += 1;
            let rep = linz::check(model, &rec.ops);
            if let Some(v) = rep.violation {
                out.lin_violations += 1;
                out.first_lin.get_or_insert(v);
            }
        }
        if let Some(v) = &rec.invariant {
            out.invariant_violations += 1;
            out.first_invariant.get_or_insert(v.clone());
        }
    };
    // Phase 1: DFS over choice points.
    let mut prefix: Vec<usize> = Vec::new();
    loop {
        if out.schedules >= bounds.max_schedules {
            break;
        }
        let mut idx = 0usize;
        let p = prefix.clone();
        let mut chooser = move |_arity: usize| {
            let c = if idx < p.len() { p[idx] } else { 0 };
            idx += 1;
            c
        };
        let rec = run_one((prog.build)(), &mut chooser, prog.max_steps, prog.check_races);
        out.schedules += 1;
        absorb(&mut out, &rec);
        match next_prefix(&rec.decisions) {
            Some(p) => prefix = p,
            None => {
                out.exhausted = true;
                break;
            }
        }
    }
    // Phase 2: seeded random schedules (chaos runs when the program's
    // fabric carries a fault plan).
    for i in 0..bounds.random_schedules {
        let mut rng = Lcg::new(bounds.seed ^ (i as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
        let mut chooser = move |arity: usize| (rng.next_u64() % arity as u64) as usize;
        let rec = run_one((prog.build)(), &mut chooser, prog.max_steps, prog.check_races);
        out.random_schedules += 1;
        absorb(&mut out, &rec);
    }
    out.races.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prefix_backtracks_depth_first() {
        let d = |chosen, arity| Decision { chosen, arity };
        assert_eq!(next_prefix(&[d(0, 2), d(1, 2)]), Some(vec![1]));
        assert_eq!(next_prefix(&[d(0, 2), d(0, 3)]), Some(vec![0, 1]));
        assert_eq!(next_prefix(&[d(1, 2), d(1, 2)]), None);
        assert_eq!(next_prefix(&[]), None);
    }
}
