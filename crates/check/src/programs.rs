//! The checked protocol programs: small concurrent workloads over the
//! real far-memory structures, one per protocol family.
//!
//! Each program builds a fresh fabric and structure per run, spawns 2–3
//! simulated clients, and records a high-level operation history. The
//! explorer drives every fabric verb interleaving (bounded), the race
//! detector watches every access, and the linearizability checker
//! validates every completed history. Setup runs on a non-participant
//! client *before* the observer is installed, so initialisation accesses
//! are invisible to the detector by construction.
//!
//! Two programs run with the race detector off, deliberately:
//!
//! * `queue_fifo` — the queue's `saai` slot publish is a plain write the
//!   consumer's guarded `faai_swap` races by design (the epoch guard and
//!   slot sentinel make it safe); the FIFO *history* is the contract.
//! * `httree_split` — gets are optimistic version-validated multi-word
//!   reads that intentionally race bucket rewrites; the map history is
//!   the contract.
//!
//! `reclaim_evict` covers the crashed-client path: a client pins an
//! epoch and never resyncs again (a crash, as far as the registry can
//! tell — guard drops are purely client-local), and the reclaimer must
//! still make progress by evicting the stale slot after its lease.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use farmem_alloc::{AllocHint, FarAlloc};
use farmem_core::{FarMutex, FarQueue, FarRwLock, HtTree, HtTreeConfig, QueueConfig};
use farmem_fabric::{FabricClient, FabricConfig, FarAddr, FaultPlan};
use farmem_reclaim::{pin, ReclaimRegistry};

use crate::explore::{PreparedRun, Program};
use crate::history::{History, Op, Ret};
use crate::linz::Model;

/// Bounded lock attempts: small enough that a waiter starved by the
/// explorer can never accumulate a full (100 ms virtual) lease against a
/// live holder — lease steal under starvation is real lease behaviour,
/// but it is not what these programs are probing.
const LOCK_ATTEMPTS: u32 = 24;

/// Fault rate (ppm per verb attempt) for the chaos variants.
const CHAOS_PPM: u32 = 20_000;

fn fabric(chaos: bool) -> Arc<farmem_fabric::Fabric> {
    let mut cfg = FabricConfig::count_only(64 << 20);
    if chaos {
        cfg.faults = FaultPlan { transient_ppm: CHAOS_PPM, ..FaultPlan::NONE };
    }
    cfg.build()
}

/// Two clients, two locked increments each, over [`FarMutex`].
/// Checked: race-freedom and counter linearizability.
pub fn mutex_counter(chaos: bool) -> Program {
    Program {
        name: if chaos { "mutex_counter_chaos" } else { "mutex_counter" },
        model: Some(Model::Counter),
        check_races: true,
        max_steps: 150,
        build: Box::new(move || {
            let f = fabric(chaos);
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let m = FarMutex::create(&mut c0, &alloc, AllocHint::Spread).unwrap();
            let ctr = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(ctr, 0).unwrap();
            let h = Arc::new(History::new());
            let mut participants = Vec::new();
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..2 {
                let mut cl = f.client();
                let id = cl.id();
                participants.push(id);
                let h2 = h.clone();
                let m2 = FarMutex::attach(m.addr());
                bodies.push(Box::new(move || {
                    for _ in 0..2 {
                        let t = h2.invoke(id, Op::CtrAdd { by: 1 });
                        if m2.lock(&mut cl, LOCK_ATTEMPTS).is_err() {
                            h2.fail(t); // no effect: the lock was never taken
                            continue;
                        }
                        let old = cl.read_u64(ctr).unwrap();
                        cl.write_u64(ctr, old + 1).unwrap();
                        // An unlock error after the store cannot undo the
                        // increment; the operation still took effect.
                        let _ = m2.unlock(&mut cl);
                        h2.complete(t, Ret::Val(old));
                    }
                }));
            }
            PreparedRun { fabric: f, participants, bodies, history: h, finale: None }
        }),
    }
}

/// One writer updating a two-word pair under [`FarRwLock`], one reader
/// taking 16-byte snapshots under the read lock. Checked: race-freedom
/// (including torn reads) and register linearizability.
pub fn rwlock_pair(chaos: bool) -> Program {
    Program {
        name: if chaos { "rwlock_pair_chaos" } else { "rwlock_pair" },
        model: Some(Model::Register { init: 0 }),
        check_races: true,
        max_steps: 170,
        build: Box::new(move || {
            let f = fabric(chaos);
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let lk = FarRwLock::create(&mut c0, &alloc, AllocHint::Spread).unwrap();
            let pair = alloc.alloc(16, AllocHint::Spread).unwrap();
            c0.write(pair, &[0u8; 16]).unwrap();
            let h = Arc::new(History::new());
            let mut writer = f.client();
            let wid = writer.id();
            let mut reader = f.client();
            let rid = reader.id();
            let participants = vec![wid, rid];
            let hw = h.clone();
            let lw = FarRwLock::attach(lk.addr());
            let wbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for i in 1..=2u64 {
                    let t = hw.invoke(wid, Op::RegWrite { part: 0, v: vec![i, i] });
                    if lw.write_lock(&mut writer, LOCK_ATTEMPTS).is_err() {
                        hw.fail(t);
                        continue;
                    }
                    writer.write_u64(pair, i).unwrap();
                    writer.write_u64(pair.offset(8), i).unwrap();
                    let _ = lw.write_unlock(&mut writer);
                    hw.complete(t, Ret::Unit);
                }
            });
            let hr = h.clone();
            let lr = FarRwLock::attach(lk.addr());
            let rbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = hr.invoke(rid, Op::RegRead { part: 0 });
                    if lr.read_lock(&mut reader, LOCK_ATTEMPTS).is_err() {
                        hr.fail(t);
                        continue;
                    }
                    let b = reader.read(pair, 16).unwrap();
                    let _ = lr.read_unlock(&mut reader);
                    let w0 = u64::from_le_bytes(b[0..8].try_into().unwrap());
                    let w1 = u64::from_le_bytes(b[8..16].try_into().unwrap());
                    hr.complete(t, Ret::Vals(vec![w0, w1]));
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![wbody, rbody],
                history: h,
                finale: None,
            }
        }),
    }
}

/// One producer, one consumer over [`FarQueue`]. Checked: FIFO
/// linearizability (race detection off — see module docs).
pub fn queue_fifo() -> Program {
    Program {
        name: "queue_fifo",
        model: Some(Model::Fifo),
        check_races: false,
        max_steps: 300,
        build: Box::new(|| {
            let f = fabric(false);
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let q = FarQueue::create(&mut c0, &alloc, QueueConfig::new(32, 4)).unwrap();
            let h = Arc::new(History::new());
            let mut pc = f.client();
            let pid = pc.id();
            let mut qp = FarQueue::attach(&mut pc, q.hdr()).unwrap();
            let mut cc = f.client();
            let cid = cc.id();
            let mut qc = FarQueue::attach(&mut cc, q.hdr()).unwrap();
            let participants = vec![pid, cid];
            let hp = h.clone();
            let pbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for v in [11u64, 22] {
                    let t = hp.invoke(pid, Op::Enq { v });
                    match qp.enqueue(&mut pc, v) {
                        Ok(()) => hp.complete(t, Ret::Unit),
                        Err(_) => hp.fail(t),
                    }
                }
            });
            let hc = h.clone();
            let cbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let mut got = 0;
                for _ in 0..5 {
                    if got == 2 {
                        break;
                    }
                    let t = hc.invoke(cid, Op::Deq);
                    match qc.dequeue(&mut cc) {
                        Ok(v) => {
                            got += 1;
                            hc.complete(t, Ret::OptVal(Some(v)));
                        }
                        Err(farmem_core::CoreError::QueueEmpty) => {
                            hc.complete(t, Ret::OptVal(None));
                        }
                        Err(_) => hc.fail(t),
                    }
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![pbody, cbody],
                history: h,
                finale: None,
            }
        }),
    }
}

/// Two clients over an [`HtTree`] configured to split almost
/// immediately: one drives the split with inserts, the other reads and
/// writes across it. Checked: per-key map linearizability (race
/// detection off — see module docs).
pub fn httree_split() -> Program {
    Program {
        name: "httree_split",
        model: Some(Model::Kv),
        check_races: false,
        max_steps: 700,
        build: Box::new(|| {
            let f = fabric(false);
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let cfg = HtTreeConfig {
                initial_buckets: 2,
                max_load_percent: 100,
                split_check_interval: 1,
                ..HtTreeConfig::default()
            };
            let tree = HtTree::create(&mut c0, &alloc, cfg).unwrap();
            let mut h0 = tree.attach(&mut c0, &alloc, cfg).unwrap();
            let h = Arc::new(History::new());
            for k in 0..3u64 {
                h0.put(&mut c0, k, k + 100).unwrap();
                h.seed(c0.id(), Op::Put { k, v: k + 100 }, Ret::Unit);
            }
            let mut ca = f.client();
            let aid = ca.id();
            let mut ha = tree.attach(&mut ca, &alloc, cfg).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let mut hb = tree.attach(&mut cb, &alloc, cfg).unwrap();
            let participants = vec![aid, bid];
            let h2 = h.clone();
            let abody: Box<dyn FnOnce() + Send> = Box::new(move || {
                // Crosses the load threshold on the first insert: the
                // split runs concurrently with the other client's ops.
                for k in 3..6u64 {
                    let t = h2.invoke(aid, Op::Put { k, v: k + 100 });
                    match ha.put(&mut ca, k, k + 100) {
                        Ok(()) => h2.complete(t, Ret::Unit),
                        Err(_) => h2.fail(t),
                    }
                }
            });
            let h3 = h.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let ops: [Op; 4] = [
                    Op::Get { k: 1 },
                    Op::Put { k: 40, v: 140 },
                    Op::Get { k: 40 },
                    Op::Get { k: 2 },
                ];
                for op in ops {
                    let t = h3.invoke(bid, op.clone());
                    let r = match op {
                        Op::Get { k } => hb.get(&mut cb, k).map(Ret::OptVal),
                        Op::Put { k, v } => hb.put(&mut cb, k, v).map(|_| Ret::Unit),
                        _ => unreachable!(),
                    };
                    match r {
                        Ok(ret) => h3.complete(t, ret),
                        Err(_) => h3.fail(t),
                    }
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![abody, bbody],
                history: h,
                finale: None,
            }
        }),
    }
}

/// Poison value a reclaimer writes into memory it has freed, standing in
/// for reuse by an unrelated allocation.
pub(crate) const POISON: u64 = 0xDEAD_DEAD_DEAD_DEAD;

/// Epoch-based reclamation, publish path: a reader pins and chases a
/// CAS-published pointer while a writer republishes, retires the old
/// object, waits out the grace period, and poisons the freed memory.
/// Checked: race-freedom (the pin-CAS / registry-scan happens-before
/// chain is load-bearing here) and register linearizability — the reader
/// must never observe the poison pattern (`POISON`).
pub fn reclaim_publish() -> Program {
    Program {
        name: "reclaim_publish",
        model: Some(Model::Register { init: 1 }),
        check_races: true,
        max_steps: 350,
        build: Box::new(|| {
            let f = fabric(false);
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let reg = ReclaimRegistry::create(&mut c0, &alloc, 4).unwrap();
            let ptr = alloc.alloc(8, AllocHint::Spread).unwrap();
            let x = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(x, 1).unwrap();
            c0.write_u64(ptr, x.0).unwrap();
            let h = Arc::new(History::new());
            h.seed(c0.id(), Op::RegWrite { part: 0, v: vec![1] }, Ret::Unit);
            let mut ca = f.client();
            let aid = ca.id();
            let sa = reg.attach(&mut ca, &alloc).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let sb = reg.attach(&mut cb, &alloc).unwrap();
            let participants = vec![aid, bid];
            let h2 = h.clone();
            let abody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..3 {
                    let t = h2.invoke(aid, Op::RegRead { part: 0 });
                    match pin(&sa, &mut ca) {
                        Ok(g) => {
                            let p = ca.read_u64(ptr).unwrap();
                            let v = ca.read_u64(FarAddr(p)).unwrap();
                            drop(g);
                            h2.complete(t, Ret::Vals(vec![v]));
                        }
                        Err(_) => h2.fail(t),
                    }
                }
            });
            let h3 = h.clone();
            let alloc_b = alloc.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = h3.invoke(bid, Op::RegWrite { part: 0, v: vec![2] });
                let y = alloc_b.alloc(8, AllocHint::Spread).unwrap();
                cb.write_u64(y, 2).unwrap();
                assert_eq!(cb.cas(ptr, x.0, y.0).unwrap(), x.0, "sole publisher");
                h3.complete(t, Ret::Unit);
                {
                    let mut hh = sb.lock().unwrap();
                    hh.retire(&mut cb, x, 8).unwrap();
                    hh.seal(&mut cb).unwrap();
                }
                // Few rounds only: far too few for a lease eviction, so
                // memory is freed exactly when every slot really advanced.
                let mut freed = 0;
                for _ in 0..4 {
                    freed = sb.lock().unwrap().reclaim(&mut cb).unwrap();
                    if freed > 0 {
                        break;
                    }
                }
                if freed > 0 {
                    cb.write_u64(x, POISON).unwrap();
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![abody, bbody],
                history: h,
                finale: None,
            }
        }),
    }
}

/// Epoch-based reclamation, crashed-client path: a client pins an epoch
/// and never returns; the reclaimer must evict its stale slot after the
/// lease and still free the retired block. Checked: race-freedom plus a
/// per-run liveness invariant (the block is freed in every completed
/// run).
pub fn reclaim_evict() -> Program {
    Program {
        name: "reclaim_evict",
        model: None,
        check_races: true,
        max_steps: 1000,
        build: Box::new(|| {
            let f = fabric(false);
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let reg = ReclaimRegistry::create(&mut c0, &alloc, 4).unwrap();
            let x = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(x, 1).unwrap();
            let h = Arc::new(History::new());
            // The crasher attaches first (lower id): the default DFS
            // schedule pins its slot before the reclaimer seals, which is
            // the interesting (eviction-requiring) path.
            let mut cc = f.client();
            let crash_id = cc.id();
            let sc = reg.attach(&mut cc, &alloc).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let sb = reg.attach(&mut cb, &alloc).unwrap();
            let participants = vec![crash_id, bid];
            let crash_body: Box<dyn FnOnce() + Send> = Box::new(move || {
                // Pin, then "crash": the guard drop is client-local, so
                // the far slot keeps the pinned epoch forever.
                if let Ok(g) = pin(&sc, &mut cc) {
                    drop(g);
                }
            });
            let freed_flag = Arc::new(AtomicU64::new(0));
            let ff = freed_flag.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                {
                    let mut hh = sb.lock().unwrap();
                    hh.retire(&mut cb, x, 8).unwrap();
                    hh.seal(&mut cb).unwrap();
                }
                // Enough rounds for the reclaimer's own virtual backoff to
                // out-wait the crashed client's lease and evict it.
                for _ in 0..400 {
                    let freed = sb.lock().unwrap().reclaim(&mut cb).unwrap();
                    if freed > 0 {
                        ff.store(freed, Ordering::SeqCst);
                        break;
                    }
                }
            });
            let finale: Box<dyn FnOnce() -> Option<String>> = Box::new(move || {
                if freed_flag.load(Ordering::SeqCst) == 8 {
                    None
                } else {
                    Some("crashed client was never evicted: retired block still in limbo".into())
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![crash_body, bbody],
                history: h,
                finale: Some(finale),
            }
        }),
    }
}

/// Miniature fenced-failover protocol over a replicated register
/// (crate::replica's protocol, shrunk to three far words). The register
/// lives on a "primary" word `d_a`, mirrored to a "replica" word `d_b`
/// (both seeded with the initial value); a configuration-epoch word `e`
/// is the fencing token. The promoter *fences first* — CAS `e` 0→1 —
/// and only then serves its write from the promoted replica; readers
/// consult the epoch and read whichever copy it selects. Checked:
/// register linearizability — real-time order across the promotion (a
/// read invoked after the new primary's write completed must see it).
/// Races off: the epoch word is the only synchronisation, and the
/// mutants of this protocol are credited to the history checker.
pub fn replica_failover() -> Program {
    Program {
        name: "replica_failover",
        model: Some(Model::Register { init: 1 }),
        check_races: false,
        max_steps: 150,
        build: Box::new(|| {
            let f = plain_fabric();
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let e = word(&mut c0, &alloc);
            let d_a = alloc.alloc(8, AllocHint::Spread).unwrap();
            let d_b = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(d_a, 1).unwrap();
            c0.write_u64(d_b, 1).unwrap();
            let h = Arc::new(History::new());
            h.seed(c0.id(), Op::RegWrite { part: 0, v: vec![1] }, Ret::Unit);
            // Promoter: fence the deposed primary by bumping the epoch,
            // then serve the new write from the promoted replica.
            let mut cp = f.client();
            let pid = cp.id();
            let hp = h.clone();
            let pbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = hp.invoke(pid, Op::RegWrite { part: 0, v: vec![2] });
                assert_eq!(cp.cas(e, 0, 1).unwrap(), 0, "sole promoter");
                cp.write_u64(d_b, 2).unwrap();
                hp.complete(t, Ret::Unit);
            });
            // Reader: epoch first, then the copy the epoch selects.
            let mut cr = f.client();
            let rid = cr.id();
            let hr = h.clone();
            let rbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = hr.invoke(rid, Op::RegRead { part: 0 });
                    let epoch = cr.read_u64(e).unwrap();
                    let v = if epoch == 0 {
                        cr.read_u64(d_a).unwrap()
                    } else {
                        cr.read_u64(d_b).unwrap()
                    };
                    hr.complete(t, Ret::Vals(vec![v]));
                }
            });
            PreparedRun {
                fabric: f,
                participants: vec![pid, rid],
                bodies: vec![pbody, rbody],
                history: h,
                finale: None,
            }
        }),
    }
}

/// The serving layer's TTL protocol (`farmem-serve`), shrunk to two far
/// words: an expiry flag (the record's TTL field, already past its
/// deadline) and the value word. A reader pins, consults the flag, and
/// serves the value only while the flag is clear — an expired record is
/// a miss (tombstone value 0). The expirer raises the flag with a CAS
/// (the unlink point), then retires the value word through the registry
/// and reclaims. Checked: race-freedom, register linearizability (a get
/// invoked after the expiry completed must miss — nothing is ever served
/// past its TTL), and a per-run invariant that expiry actually frees the
/// record's bytes.
pub fn serve_ttl_evict() -> Program {
    Program {
        name: "serve_ttl_evict",
        model: Some(Model::Register { init: 7 }),
        check_races: true,
        max_steps: 1000,
        build: Box::new(|| {
            let f = fabric(false);
            let alloc = FarAlloc::new(f.clone());
            let mut c0 = f.client();
            let reg = ReclaimRegistry::create(&mut c0, &alloc, 4).unwrap();
            let exp = word(&mut c0, &alloc);
            let val = alloc.alloc(8, AllocHint::Spread).unwrap();
            c0.write_u64(val, 7).unwrap();
            let h = Arc::new(History::new());
            h.seed(c0.id(), Op::RegWrite { part: 0, v: vec![7] }, Ret::Unit);
            let mut ca = f.client();
            let aid = ca.id();
            let sa = reg.attach(&mut ca, &alloc).unwrap();
            let mut cb = f.client();
            let bid = cb.id();
            let sb = reg.attach(&mut cb, &alloc).unwrap();
            let participants = vec![aid, bid];
            let h2 = h.clone();
            let abody: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..2 {
                    let t = h2.invoke(aid, Op::RegRead { part: 0 });
                    match pin(&sa, &mut ca) {
                        Ok(g) => {
                            let expired = ca.read_u64(exp).unwrap() != 0;
                            let v = if expired { 0 } else { ca.read_u64(val).unwrap() };
                            drop(g);
                            h2.complete(t, Ret::Vals(vec![v]));
                        }
                        Err(_) => h2.fail(t),
                    }
                }
            });
            let freed_flag = Arc::new(AtomicU64::new(0));
            let ff = freed_flag.clone();
            let h3 = h.clone();
            let bbody: Box<dyn FnOnce() + Send> = Box::new(move || {
                let t = h3.invoke(bid, Op::RegWrite { part: 0, v: vec![0] });
                // The unlink point: raising the flag is what turns the
                // record into a miss; everything after is reclamation.
                assert_eq!(cb.cas(exp, 0, 1).unwrap(), 0, "sole expirer");
                h3.complete(t, Ret::Unit);
                {
                    let mut hh = sb.lock().unwrap();
                    hh.retire(&mut cb, val, 8).unwrap();
                    hh.seal(&mut cb).unwrap();
                }
                // Enough rounds that the backoff out-waits a reader whose
                // published epoch lags (same lease path as reclaim_evict).
                // The freed word is never poisoned here: a lease-evicted
                // reader mid-read is legal fallout of the lease, and the
                // allocator's free is metadata-only.
                for _ in 0..400 {
                    let freed = sb.lock().unwrap().reclaim(&mut cb).unwrap();
                    if freed > 0 {
                        ff.store(freed, Ordering::SeqCst);
                        break;
                    }
                }
            });
            let finale: Box<dyn FnOnce() -> Option<String>> = Box::new(move || {
                if freed_flag.load(Ordering::SeqCst) == 8 {
                    None
                } else {
                    Some("expired record was never freed: retire/reclaim lost the bytes".into())
                }
            });
            PreparedRun {
                fabric: f,
                participants,
                bodies: vec![abody, bbody],
                history: h,
                finale: Some(finale),
            }
        }),
    }
}

/// The main-suite programs, in stable report order.
pub fn main_programs() -> Vec<Program> {
    vec![
        mutex_counter(false),
        rwlock_pair(false),
        queue_fifo(),
        httree_split(),
        reclaim_publish(),
        reclaim_evict(),
        replica_failover(),
        serve_ttl_evict(),
        mutex_counter(true),
        rwlock_pair(true),
    ]
}

// Referenced by the mutant builders; kept here so the main programs and
// mutants share setup idioms.
pub(crate) use helpers::*;

pub(crate) mod helpers {
    use super::*;

    /// Fresh single-node count-only fabric, no faults.
    pub(crate) fn plain_fabric() -> Arc<farmem_fabric::Fabric> {
        fabric(false)
    }

    /// Allocates one zeroed word.
    pub(crate) fn word(c0: &mut FabricClient, alloc: &Arc<FarAlloc>) -> FarAddr {
        let a = alloc.alloc(8, AllocHint::Spread).unwrap();
        c0.write_u64(a, 0).unwrap();
        a
    }
}
