//! Vector clocks over fabric client ids.
//!
//! Client ids are the fabric-assigned `u32`s; clocks grow on demand so a
//! detector never needs to know the client population up front. The
//! representation is a dense `Vec<u64>` indexed by client id — programs
//! under check use a handful of clients, so density costs nothing and
//! keeps `join` branch-free.

/// A grow-on-demand vector clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    t: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock { t: Vec::new() }
    }

    /// The component for `client` (zero if never ticked or joined).
    pub fn get(&self, client: u32) -> u64 {
        self.t.get(client as usize).copied().unwrap_or(0)
    }

    /// Sets the component for `client`.
    pub fn set(&mut self, client: u32, time: u64) {
        let i = client as usize;
        if self.t.len() <= i {
            self.t.resize(i + 1, 0);
        }
        self.t[i] = time;
    }

    /// Advances `client`'s own component by one and returns the new value.
    pub fn tick(&mut self, client: u32) -> u64 {
        let v = self.get(client) + 1;
        self.set(client, v);
        v
    }

    /// Component-wise maximum: after the call, `self` dominates both
    /// inputs. This is the happens-before join.
    pub fn join(&mut self, other: &VectorClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (i, &v) in other.t.iter().enumerate() {
            if self.t[i] < v {
                self.t[i] = v;
            }
        }
    }

    /// True when the epoch `(client, time)` happens-before this clock:
    /// the clock has observed at least `time` of `client`'s history.
    pub fn covers(&self, client: u32, time: u64) -> bool {
        self.get(client) >= time
    }
}

/// A scalar epoch: one client's clock value at the moment of an access.
/// Cheap to store per word (FastTrack-style) where a full clock would be
/// wasteful.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Epoch {
    /// The accessing client.
    pub client: u32,
    /// That client's own clock component at the access.
    pub time: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_covers() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(3);
        b.join(&a);
        assert!(b.covers(0, 2));
        assert!(b.covers(3, 1));
        assert!(!b.covers(0, 3));
        assert!(b.covers(7, 0)); // never-seen client: only time 0 covered
        assert_eq!(a.get(3), 0);
    }
}
