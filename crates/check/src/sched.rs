//! Deterministic cooperative scheduling of simulated clients.
//!
//! Every fabric verb attempt calls the installed
//! [`CheckObserver::gate`](farmem_fabric::CheckObserver::gate) before it
//! touches far memory. The [`Scheduler`] turns that hook into a
//! loom-style driver: each registered participant blocks at its gate
//! until the driver grants it exactly one step, so the interleaving of
//! fabric verbs is chosen entirely by the driver — the host OS scheduler
//! has no say. Clients that are not registered (the setup client) pass
//! straight through.
//!
//! The protocol is simple and deadlock-free under one assumption that
//! holds for every fabric verb: a participant thread always reaches its
//! next gate (or finishes) in bounded wall time once granted — verbs
//! never block on other *participants* between gates (waits are bounded
//! slices, locks are bounded attempts). The driver waits until every
//! participant is either parked at a gate or finished, picks one, and
//! repeats. A wall-clock watchdog turns a violated assumption into a
//! truncated (discarded) run instead of a hang.

use std::collections::BTreeSet;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Outcome of waiting for the system to quiesce.
pub enum Quiesce {
    /// Every participant is parked or finished; the sorted ids of the
    /// parked (runnable) ones. Empty means the run is over.
    Runnable(Vec<u32>),
    /// A participant failed to reach its gate within the watchdog
    /// window; the run must be poisoned and discarded.
    Stuck,
}

#[derive(Default)]
struct Inner {
    participants: BTreeSet<u32>,
    at_gate: BTreeSet<u32>,
    finished: BTreeSet<u32>,
    granted: Option<u32>,
    poisoned: bool,
}

/// The gate-and-grant scheduler shared between the driver thread and the
/// participant threads (via the fabric's check observer).
pub struct Scheduler {
    m: Mutex<Inner>,
    cv: Condvar,
}

impl Scheduler {
    /// A scheduler for the given participant client ids.
    pub fn new(participants: &[u32]) -> Scheduler {
        Scheduler {
            m: Mutex::new(Inner {
                participants: participants.iter().copied().collect(),
                ..Inner::default()
            }),
            cv: Condvar::new(),
        }
    }

    /// Called (via the observer) at every verb attempt. Blocks until the
    /// driver grants this client a step. Non-participants and poisoned
    /// runs pass through immediately.
    pub fn gate(&self, client: u32) {
        let mut g = self.m.lock().unwrap();
        if g.poisoned || !g.participants.contains(&client) {
            return;
        }
        g.at_gate.insert(client);
        self.cv.notify_all();
        while g.granted != Some(client) && !g.poisoned {
            g = self.cv.wait(g).unwrap();
        }
        if g.granted == Some(client) {
            g.granted = None;
        }
        g.at_gate.remove(&client);
        self.cv.notify_all();
    }

    /// Marks a participant's body as complete.
    pub fn finish(&self, client: u32) {
        let mut g = self.m.lock().unwrap();
        g.at_gate.remove(&client);
        g.finished.insert(client);
        self.cv.notify_all();
    }

    /// Driver side: waits until every participant is parked at a gate or
    /// finished, then reports the parked ones.
    pub fn wait_quiescent(&self) -> Quiesce {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut g = self.m.lock().unwrap();
        loop {
            if g.poisoned {
                return Quiesce::Stuck;
            }
            if g.granted.is_none()
                && g.at_gate.len() + g.finished.len() == g.participants.len()
            {
                return Quiesce::Runnable(g.at_gate.iter().copied().collect());
            }
            let (g2, _) = self.cv.wait_timeout(g, Duration::from_millis(50)).unwrap();
            g = g2;
            if Instant::now() >= deadline {
                return Quiesce::Stuck;
            }
        }
    }

    /// Driver side: grants one parked participant its next step.
    pub fn grant(&self, client: u32) {
        let mut g = self.m.lock().unwrap();
        debug_assert!(g.at_gate.contains(&client) && g.granted.is_none());
        g.granted = Some(client);
        self.cv.notify_all();
    }

    /// Releases every parked participant to free-run to completion. Used
    /// when truncating a run; results gathered after this are discarded.
    pub fn poison(&self) {
        let mut g = self.m.lock().unwrap();
        g.poisoned = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn driver_serialises_two_participants() {
        let s = Arc::new(Scheduler::new(&[1, 2]));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for id in [1u32, 2u32] {
            let s2 = s.clone();
            let o2 = order.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..3 {
                    s2.gate(id);
                    o2.lock().unwrap().push(id);
                }
                s2.finish(id);
            }));
        }
        // Alternate strictly: 1, 2, 1, 2, ...
        let mut expect = Vec::new();
        loop {
            match s.wait_quiescent() {
                Quiesce::Runnable(r) if r.is_empty() => break,
                Quiesce::Runnable(r) => {
                    let pick = if expect.len() % 2 == 0 { r[0] } else { *r.last().unwrap() };
                    expect.push(pick);
                    s.grant(pick);
                }
                Quiesce::Stuck => panic!("stuck"),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), expect);
    }
}
