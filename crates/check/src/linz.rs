//! Linearizability checking (Wing & Gong) over recorded histories.
//!
//! A history is linearizable when every completed operation can be
//! assigned a single linearization point between its invocation and
//! response stamps such that the sequence of points is a legal execution
//! of the sequential model. The checker runs the classic Wing–Gong
//! search: repeatedly pick a *minimal* pending operation (one invoked
//! before every pending response), apply it to the model state, and
//! recurse, memoising `(linearized-set, state)` pairs.
//!
//! Histories are first **partitioned** — by key for maps, by register
//! partition for registers — since operations on independent partitions
//! commute; this keeps the search tiny even for map workloads that
//! trigger a structural split. Counter and FIFO histories are a single
//! partition.

use std::collections::HashSet;

use crate::history::{Op, OpRecord, Ret};

/// The sequential model a history is checked against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// A fetch-and-add counter starting at 0 (`CtrAdd` returns the
    /// pre-add value).
    Counter,
    /// Multi-word atomic registers, partitioned by `part`; word 0 of the
    /// register starts as `init`.
    Register {
        /// Initial value of every word of every partition.
        init: u64,
    },
    /// A FIFO queue (`Deq` of an empty queue returns `None`).
    Fifo,
    /// A map of `u64` cells, partitioned by key (absent keys read
    /// `None`).
    Kv,
}

/// Sequential state of one partition.
#[derive(Clone, Debug, PartialEq, Eq)]
enum State {
    Ctr(u64),
    Reg(Vec<u64>),
    Fifo(Vec<u64>),
    Cell(Option<u64>),
}

impl State {
    /// Stable encoding for the memo table.
    fn encode(&self) -> Vec<u64> {
        match self {
            State::Ctr(v) => vec![*v],
            State::Reg(v) => v.clone(),
            State::Fifo(v) => v.clone(),
            State::Cell(None) => vec![0],
            State::Cell(Some(v)) => vec![1, *v],
        }
    }
}

/// Outcome of a check.
#[derive(Clone, Debug)]
pub struct LinReport {
    /// Completed operations examined (failed ops are excluded).
    pub checked_ops: usize,
    /// `None` when linearizable; otherwise a rendering of one
    /// non-linearizable partition.
    pub violation: Option<String>,
}

/// Checks a history against `model`. Failed operations are skipped;
/// pending operations must not remain (the explorer only checks
/// completed runs).
pub fn check(model: Model, ops: &[OpRecord]) -> LinReport {
    let live: Vec<&OpRecord> = ops.iter().filter(|o| !o.failed).collect();
    let mut parts: Vec<(u64, Vec<&OpRecord>)> = Vec::new();
    for o in &live {
        let p = partition(model, &o.op);
        match parts.iter_mut().find(|(k, _)| *k == p) {
            Some((_, v)) => v.push(o),
            None => parts.push((p, vec![o])),
        }
    }
    for (p, mut part_ops) in parts {
        part_ops.sort_by_key(|o| o.inv);
        if part_ops.len() > 63 {
            // The search mask is a u64; programs under check stay far
            // below this, so treat an overflow as a harness bug.
            return LinReport {
                checked_ops: live.len(),
                violation: Some(format!("partition {p}: too many ops ({})", part_ops.len())),
            };
        }
        if !linearizable(model, &part_ops) {
            let mut desc = format!("partition {p} not linearizable:");
            for o in &part_ops {
                desc.push_str(&format!("\n  {}", o.render()));
            }
            return LinReport { checked_ops: live.len(), violation: Some(desc) };
        }
    }
    LinReport { checked_ops: live.len(), violation: None }
}

fn partition(model: Model, op: &Op) -> u64 {
    match (model, op) {
        (Model::Register { .. }, Op::RegWrite { part, .. }) => *part,
        (Model::Register { .. }, Op::RegRead { part }) => *part,
        (Model::Kv, Op::Put { k, .. }) => *k,
        (Model::Kv, Op::Get { k }) => *k,
        (Model::Kv, Op::Remove { k }) => *k,
        _ => 0,
    }
}

fn initial(model: Model, ops: &[&OpRecord]) -> State {
    match model {
        Model::Counter => State::Ctr(0),
        Model::Register { init } => {
            // Width comes from the widest write/read in the partition.
            let w = ops
                .iter()
                .map(|o| match (&o.op, &o.ret) {
                    (Op::RegWrite { v, .. }, _) => v.len(),
                    (_, Ret::Vals(v)) => v.len(),
                    _ => 1,
                })
                .max()
                .unwrap_or(1);
            State::Reg(vec![init; w])
        }
        Model::Fifo => State::Fifo(Vec::new()),
        Model::Kv => State::Cell(None),
    }
}

/// Applies `op` to `state`; `None` when the recorded response is not
/// legal from this state.
fn apply(state: &State, o: &OpRecord) -> Option<State> {
    match (state, &o.op, &o.ret) {
        (State::Ctr(c), Op::CtrAdd { by }, Ret::Val(old)) => {
            (old == c).then(|| State::Ctr(c + by))
        }
        (State::Ctr(c), Op::CtrRead, Ret::Val(v)) => (v == c).then_some(State::Ctr(*c)),
        (State::Reg(_), Op::RegWrite { v, .. }, _) => Some(State::Reg(v.clone())),
        (State::Reg(cur), Op::RegRead { .. }, Ret::Vals(v)) => {
            (v == cur).then(|| State::Reg(cur.clone()))
        }
        (State::Fifo(q), Op::Enq { v }, _) => {
            let mut q = q.clone();
            q.push(*v);
            Some(State::Fifo(q))
        }
        (State::Fifo(q), Op::Deq, Ret::OptVal(None)) => {
            q.is_empty().then(|| State::Fifo(q.clone()))
        }
        (State::Fifo(q), Op::Deq, Ret::OptVal(Some(v))) => {
            (q.first() == Some(v)).then(|| State::Fifo(q[1..].to_vec()))
        }
        (State::Cell(_), Op::Put { v, .. }, _) => Some(State::Cell(Some(*v))),
        (State::Cell(c), Op::Get { .. }, Ret::OptVal(v)) => {
            (v == c).then_some(State::Cell(*c))
        }
        (State::Cell(_), Op::Remove { .. }, _) => Some(State::Cell(None)),
        _ => None,
    }
}

fn linearizable(model: Model, ops: &[&OpRecord]) -> bool {
    let n = ops.len();
    if n == 0 {
        return true;
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut memo: HashSet<(u64, Vec<u64>)> = HashSet::new();
    let init = initial(model, ops);
    search(ops, 0, &init, full, &mut memo)
}

fn search(
    ops: &[&OpRecord],
    mask: u64,
    state: &State,
    full: u64,
    memo: &mut HashSet<(u64, Vec<u64>)>,
) -> bool {
    if mask == full {
        return true;
    }
    if !memo.insert((mask, state.encode())) {
        return false;
    }
    // An operation can linearize next only if it was invoked before every
    // pending response (otherwise some pending op is strictly earlier).
    let min_res = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) == 0)
        .map(|(_, o)| o.res)
        .min()
        .unwrap();
    for (i, o) in ops.iter().enumerate() {
        if mask & (1 << i) != 0 || o.inv > min_res {
            continue;
        }
        if let Some(next) = apply(state, o) {
            if search(ops, mask | (1 << i), &next, full, memo) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(client: u32, op: Op, ret: Ret, inv: u64, res: u64) -> OpRecord {
        OpRecord { client, op, ret, inv, res, failed: false }
    }

    #[test]
    fn sequential_counter_is_linearizable() {
        let h = vec![
            rec(1, Op::CtrAdd { by: 1 }, Ret::Val(0), 0, 1),
            rec(2, Op::CtrAdd { by: 1 }, Ret::Val(1), 2, 3),
        ];
        assert!(check(Model::Counter, &h).violation.is_none());
    }

    #[test]
    fn lost_update_is_flagged() {
        // Two overlapping adds both observing 0: not linearizable.
        let h = vec![
            rec(1, Op::CtrAdd { by: 1 }, Ret::Val(0), 0, 3),
            rec(2, Op::CtrAdd { by: 1 }, Ret::Val(0), 1, 2),
        ];
        assert!(check(Model::Counter, &h).violation.is_some());
    }

    #[test]
    fn overlapping_reads_may_reorder() {
        // A read overlapping a write may see either value.
        let h = vec![
            rec(1, Op::RegWrite { part: 0, v: vec![5] }, Ret::Unit, 1, 4),
            rec(2, Op::RegRead { part: 0 }, Ret::Vals(vec![0]), 2, 3),
        ];
        assert!(check(Model::Register { init: 0 }, &h).violation.is_none());
    }

    #[test]
    fn torn_register_read_is_flagged() {
        let h = vec![
            rec(1, Op::RegWrite { part: 0, v: vec![1, 1] }, Ret::Unit, 0, 1),
            rec(1, Op::RegWrite { part: 0, v: vec![2, 2] }, Ret::Unit, 2, 5),
            rec(2, Op::RegRead { part: 0 }, Ret::Vals(vec![2, 1]), 3, 4),
        ];
        assert!(check(Model::Register { init: 0 }, &h).violation.is_some());
    }

    #[test]
    fn fifo_duplicate_dequeue_is_flagged() {
        let h = vec![
            rec(0, Op::Enq { v: 7 }, Ret::Unit, 0, 1),
            rec(1, Op::Deq, Ret::OptVal(Some(7)), 2, 3),
            rec(2, Op::Deq, Ret::OptVal(Some(7)), 4, 5),
        ];
        assert!(check(Model::Fifo, &h).violation.is_some());
        let ok = vec![
            rec(0, Op::Enq { v: 7 }, Ret::Unit, 0, 1),
            rec(1, Op::Deq, Ret::OptVal(Some(7)), 2, 3),
            rec(2, Op::Deq, Ret::OptVal(None), 4, 5),
        ];
        assert!(check(Model::Fifo, &ok).violation.is_none());
    }

    #[test]
    fn kv_partitions_are_independent() {
        // Interleaved ops on distinct keys each linearize on their own.
        let h = vec![
            rec(1, Op::Put { k: 1, v: 10 }, Ret::Unit, 0, 5),
            rec(2, Op::Put { k: 2, v: 20 }, Ret::Unit, 1, 4),
            rec(3, Op::Get { k: 1 }, Ret::OptVal(None), 2, 3),
            rec(3, Op::Get { k: 2 }, Ret::OptVal(Some(20)), 6, 7),
        ];
        assert!(check(Model::Kv, &h).violation.is_none());
        let bad = vec![
            rec(1, Op::Put { k: 1, v: 10 }, Ret::Unit, 0, 1),
            rec(3, Op::Get { k: 1 }, Ret::OptVal(None), 2, 3),
        ];
        assert!(check(Model::Kv, &bad).violation.is_some());
    }
}
