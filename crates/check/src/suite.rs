//! The deterministic check suite consumed by the `e16_check` driver and
//! the crate's own tests.
//!
//! [`run_suite`] explores every main program and every mutant under
//! seeded bounds and returns a [`SuiteResult`] whose JSON rendering is a
//! pure function of `(smoke, seed)`: no timestamps, no wall-clock
//! dependence, stable ordering everywhere. Smoke bounds are a strict
//! prefix of the full bounds (smaller DFS budget, fewer random seeds of
//! the same sequence), so everything the smoke run finds, the full run
//! finds too.

use crate::explore::{explore, ExploreBounds, Exploration, Program};
use crate::mutants::{all_mutants, Expect, Mutant};
use crate::programs::main_programs;

/// Suite configuration.
#[derive(Clone, Copy, Debug)]
pub struct SuiteConfig {
    /// Shrinks every bound (CI-sized); still asserts every invariant.
    pub smoke: bool,
    /// Seed for the random-schedule phases.
    pub seed: u64,
}

/// DFS/random budgets per program, `(full, smoke)` pairs.
fn bounds_for(name: &str, cfg: &SuiteConfig) -> ExploreBounds {
    let (dfs, rand) = match name {
        "mutex_counter" | "rwlock_pair" => ((150, 50), (24, 8)),
        "queue_fifo" | "reclaim_publish" => ((120, 40), (24, 8)),
        "httree_split" => ((60, 20), (12, 4)),
        "reclaim_evict" => ((80, 30), (12, 4)),
        "replica_failover" => ((120, 40), (24, 8)),
        "mutex_counter_chaos" | "rwlock_pair_chaos" => ((60, 20), (24, 8)),
        // Mutants: enough DFS to exhaust (or deeply cover) their small
        // choice trees deterministically.
        _ => ((160, 80), (24, 12)),
    };
    ExploreBounds {
        max_schedules: if cfg.smoke { dfs.1 } else { dfs.0 },
        random_schedules: if cfg.smoke { rand.1 } else { rand.0 },
        seed: cfg.seed,
    }
}

/// One mutant's outcome.
pub struct MutantResult {
    /// The exploration outcome of the broken program.
    pub exploration: Exploration,
    /// Labels of the analyses that were required to fire.
    pub expect: Vec<&'static str>,
    /// Whether every expected analysis fired.
    pub caught: bool,
}

/// The whole suite's outcome.
pub struct SuiteResult {
    /// Configuration the suite ran under.
    pub config: SuiteConfig,
    /// Main-program outcomes, report order.
    pub programs: Vec<Exploration>,
    /// Mutant outcomes, report order.
    pub mutants: Vec<MutantResult>,
}

impl SuiteResult {
    /// True when every main program came back clean.
    pub fn programs_clean(&self) -> bool {
        self.programs.iter().all(|p| p.clean())
    }

    /// True when every mutant was caught by every expected analysis.
    pub fn all_mutants_caught(&self) -> bool {
        self.mutants.iter().all(|m| m.caught)
    }

    /// Deterministic JSON rendering (see module docs).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n  \"schema_version\": 1,\n  \"suite\": \"e16_check\",\n");
        o.push_str(&format!("  \"smoke\": {},\n  \"seed\": {},\n", self.config.smoke, self.config.seed));
        o.push_str("  \"programs\": [\n");
        for (i, p) in self.programs.iter().enumerate() {
            o.push_str(&exploration_json(p, "    "));
            o.push_str(if i + 1 < self.programs.len() { ",\n" } else { "\n" });
        }
        o.push_str("  ],\n  \"mutants\": [\n");
        for (i, m) in self.mutants.iter().enumerate() {
            o.push_str("    {\n");
            o.push_str(&format!("      \"expect\": [{}],\n", m.expect.iter().map(|e| json_str(e)).collect::<Vec<_>>().join(", ")));
            o.push_str(&format!("      \"caught\": {},\n", m.caught));
            o.push_str("      \"exploration\":\n");
            o.push_str(&exploration_json(&m.exploration, "      "));
            o.push_str("\n    }");
            o.push_str(if i + 1 < self.mutants.len() { ",\n" } else { "\n" });
        }
        o.push_str("  ],\n  \"summary\": {\n");
        o.push_str(&format!("    \"programs_clean\": {},\n", self.programs_clean()));
        o.push_str(&format!("    \"mutants_total\": {},\n", self.mutants.len()));
        o.push_str(&format!(
            "    \"mutants_caught\": {}\n",
            self.mutants.iter().filter(|m| m.caught).count()
        ));
        o.push_str("  }\n}\n");
        o
    }
}

/// Renders one exploration as a JSON object (deterministic).
pub fn exploration_json(p: &Exploration, indent: &str) -> String {
    let mut o = format!("{indent}{{\n");
    let kv = |o: &mut String, k: &str, v: String, comma: bool| {
        o.push_str(&format!("{indent}  \"{k}\": {v}{}\n", if comma { "," } else { "" }));
    };
    kv(&mut o, "name", json_str(p.name), true);
    kv(&mut o, "schedules", p.schedules.to_string(), true);
    kv(&mut o, "random_schedules", p.random_schedules.to_string(), true);
    kv(&mut o, "exhausted", p.exhausted.to_string(), true);
    kv(&mut o, "truncated", p.truncated.to_string(), true);
    kv(&mut o, "panicked", p.panicked.to_string(), true);
    kv(&mut o, "steps", p.steps.to_string(), true);
    let races = p.races.iter().map(|r| json_str(&r.render())).collect::<Vec<_>>().join(", ");
    kv(&mut o, "races", format!("[{races}]"), true);
    kv(&mut o, "lin_checked", p.lin_checked.to_string(), true);
    kv(&mut o, "lin_violations", p.lin_violations.to_string(), true);
    kv(
        &mut o,
        "first_lin",
        p.first_lin.as_deref().map(json_str).unwrap_or_else(|| "null".into()),
        true,
    );
    kv(&mut o, "invariant_violations", p.invariant_violations.to_string(), true);
    kv(
        &mut o,
        "first_invariant",
        p.first_invariant.as_deref().map(json_str).unwrap_or_else(|| "null".into()),
        false,
    );
    o.push_str(&format!("{indent}}}"));
    o
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

/// Explores one program under the suite's bounds for it.
pub fn explore_with_suite_bounds(prog: &Program, cfg: &SuiteConfig) -> Exploration {
    explore(prog, &bounds_for(prog.name, cfg))
}

fn judge(m: &Mutant, x: &Exploration) -> bool {
    m.expect.iter().all(|e| match e {
        Expect::Races => !x.races.is_empty(),
        Expect::Lin => x.lin_violations > 0,
        Expect::Invariant => x.invariant_violations > 0,
    })
}

/// Runs the whole suite: every main program, then every mutant.
pub fn run_suite(cfg: &SuiteConfig) -> SuiteResult {
    let programs: Vec<Exploration> =
        main_programs().iter().map(|p| explore_with_suite_bounds(p, cfg)).collect();
    let mutants: Vec<MutantResult> = all_mutants()
        .iter()
        .map(|m| {
            let x = explore_with_suite_bounds(&m.program, cfg);
            let caught = judge(m, &x);
            MutantResult {
                expect: m.expect.iter().map(|e| e.label()).collect(),
                caught,
                exploration: x,
            }
        })
        .collect();
    SuiteResult { config: *cfg, programs, mutants }
}
