//! # farmem-check — mechanical checking of far-memory protocols
//!
//! Every data structure in this workspace is a *protocol*: an agreement
//! between clients about which fabric verbs, in which order, keep shared
//! far memory consistent. This crate checks those protocols mechanically
//! instead of by inspection, with three cooperating analyses over the
//! simulated fabric (DESIGN.md §9):
//!
//! * **Race detection** ([`race`]) — a vector-clock happens-before
//!   detector fed every fabric access through the zero-cost-when-off
//!   [`farmem_fabric::CheckObserver`] hook. Synchronisation edges come
//!   only from what the fabric really orders: atomics (CAS/FAA/guarded
//!   RMW), reads of atomically-published words, and notifications.
//! * **Bounded interleaving exploration** ([`mod@explore`], [`sched`]) — a
//!   loom-style cooperative scheduler gates every verb attempt and
//!   enumerates client interleavings depth-first (plus seeded random
//!   schedules that double as chaos runs under a fault plan).
//! * **Linearizability checking** ([`linz`], [`history`]) — Wing–Gong
//!   search, partitioned by key/register, over the operation histories
//!   the explored programs record.
//!
//! The checked programs live in [`programs`]; the mutation self-tests —
//! deliberately broken protocol variants every analysis must flag — in
//! [`mutants`]; and the deterministic suite the `e16_check` driver and
//! CI consume in [`suite`].
//!
//! Everything here is **dev tooling**: nothing in this crate runs in a
//! measured benchmark path, and with no observer installed the fabric
//! hook costs one relaxed atomic load per verb.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod history;
pub mod linz;
pub mod mutants;
pub mod programs;
pub mod race;
pub mod sched;
pub mod suite;
pub mod vc;

pub use explore::{explore, ExploreBounds, Exploration, PreparedRun, Program};
pub use history::{History, Op, OpRecord, OpToken, Ret};
pub use linz::{check as check_linearizable, LinReport, Model};
pub use mutants::{all_mutants, Expect, Mutant};
pub use programs::main_programs;
pub use race::{Race, RaceDetector, RaceKind};
pub use sched::{Quiesce, Scheduler};
pub use suite::{run_suite, SuiteConfig, SuiteResult};
pub use vc::VectorClock;
