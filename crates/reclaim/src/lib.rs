//! Epoch-based grace-period reclamation for far memory.
//!
//! The paper punts on reclamation: retired HT-tree tables are quarantined
//! because freeing them safely "needs client epochs". This crate supplies
//! those epochs, built from nothing but the fabric's existing one-sided
//! verbs (`read` / `cas` / `faa` plus a `notify0` subscription):
//!
//! * a **far-memory epoch registry**: one global epoch word and an array
//!   of per-client epoch slots, all in far memory so any client (and any
//!   *surviving* client, after a crash) can run grace detection;
//! * per-client **limbo lists** of `(addr, len, retire_epoch)` deferred
//!   frees, held in client-local memory (retiring costs zero far
//!   accesses; only *sealing* a batch bumps the global epoch — one FAA);
//! * a **grace-period detector** ([`ReclaimHandle::reclaim`]) that scans
//!   the registry in one read and drains every limbo entry whose retire
//!   epoch is strictly below the minimum registered epoch back into
//!   [`FarAlloc::free`];
//! * **crash eviction** borrowed from the PR-1 lease rule: a detector
//!   that observes a *lagging* slot word stay bit-identical across
//!   [`LEASE_NS`] of its **own accumulated waiting time** CAS-evicts the
//!   slot, so a dead peer cannot stall reclamation forever. Clients
//!   publish their slot with CAS (never blind writes), so an evicted
//!   client discovers the eviction on its next pin and re-registers.
//!
//! # The protocol
//!
//! Every structure operation pins a [`Guard`]. Pinning is **free** in the
//! common case: the client subscribes `notify0` on the global epoch word,
//! so "has the epoch moved?" is a local event-queue check. Only when the
//! epoch actually advanced does a pin cost two far accesses (read the
//! epoch word, CAS the client's slot forward). The pin returns the epoch
//! the client now stands at; integrating structures compare it against
//! the epoch they last validated their caches at and refresh any cached
//! far pointers when it moved. That yields the grace rule:
//!
//! > An object unlinked before the epoch bump that sealed it (retire
//! > epoch `e` = the FAA's pre-bump value) can be freed once every
//! > registered slot shows an epoch `> e` — every client has pinned
//! > after the bump, refreshed its caches past the unlinked object, and
//! > no guard from before the unlink is still running.
//!
//! # What the caller must uphold
//!
//! * Every operation that may dereference a retired object runs under a
//!   pinned [`Guard`], and cached far pointers are refreshed when the
//!   pin reports an epoch change.
//! * Addresses are retired exactly once, with the same length they were
//!   allocated with (the allocator's membership check turns violations
//!   into [`AllocError::BadFree`] instead of silent corruption).
//! * A guard is not held across [`LEASE_NS`] of other clients' detector
//!   waiting — the same liveness assumption the lease-fenced locks make.
//!   A wrongly evicted (slow, not dead) client is *safe*: its next pin
//!   CAS fails, it re-registers and refreshes every cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use farmem_alloc::{AllocError, Arena, FarAlloc};
use farmem_fabric::{FabricClient, FabricError, FarAddr, SubId, WORD};

/// Registry far layout: global epoch word, slot count, then the slots.
const R_EPOCH: u64 = 0;
const R_SLOTS: u64 = 16;

/// Low 48 bits of a slot word hold the observed epoch; the high 16 hold
/// the registrant's tag (`client.id() + 1`, truncated — same scheme as
/// the lease-fenced locks). A slot word of 0 means "free".
const TAG_SHIFT: u32 = 48;
/// Mask selecting the epoch half of a slot word.
pub const EPOCH_MASK: u64 = (1 << TAG_SHIFT) - 1;

/// Virtual-time lease on a lagging epoch slot, mirroring the lock lease:
/// a detector that accumulates this much of its *own* waiting time over a
/// bit-identical lagging slot concludes the registrant crashed and evicts
/// it. 100 ms of virtual time dwarfs any pinned operation (far accesses
/// cost ~2 µs each).
pub const LEASE_NS: u64 = 100_000_000;

/// First virtual wait slice a blocked detector charges itself per
/// grace-detection round; doubles per consecutive blocked round.
const WAIT_BASE_NS: u64 = 1_000_000;
/// Cap on the exponential wait slice (16 ms: out-waits a dead peer's
/// lease in ~a dozen rounds without leaping past it in one step).
const WAIT_CAP_NS: u64 = 16_000_000;

/// Retires buffered before an automatic [`ReclaimHandle::seal`] (each
/// seal is one FAA round trip; batching amortizes it over many retires).
const DEFAULT_SEAL_THRESHOLD: usize = 32;

/// Errors surfaced by the reclamation layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReclaimError {
    /// A fabric verb failed (after transparent retries).
    Fabric(FabricError),
    /// The allocator rejected an operation — notably
    /// [`AllocError::BadFree`] when a limbo entry was double-retired or
    /// retired with the wrong length.
    Alloc(AllocError),
    /// Every epoch slot is registered; raise `max_clients`.
    RegistryFull,
    /// The far-memory registry contents don't match the descriptor.
    Corrupted(&'static str),
    /// Invalid argument (zero-length or null retire, zero slots).
    BadConfig(&'static str),
}

impl From<FabricError> for ReclaimError {
    fn from(e: FabricError) -> Self {
        ReclaimError::Fabric(e)
    }
}

impl From<AllocError> for ReclaimError {
    fn from(e: AllocError) -> Self {
        ReclaimError::Alloc(e)
    }
}

impl std::fmt::Display for ReclaimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReclaimError::Fabric(e) => write!(f, "fabric: {e}"),
            ReclaimError::Alloc(e) => write!(f, "alloc: {e}"),
            ReclaimError::RegistryFull => write!(f, "epoch registry full"),
            ReclaimError::Corrupted(m) => write!(f, "registry corrupted: {m}"),
            ReclaimError::BadConfig(m) => write!(f, "bad config: {m}"),
        }
    }
}

impl std::error::Error for ReclaimError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ReclaimError>;

fn words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("word")))
        .collect()
}

/// The shared descriptor of a far-memory epoch registry: its base address
/// and slot count. `Copy` — share it like any other structure descriptor.
///
/// # Examples
///
/// ```
/// use farmem_fabric::FabricConfig;
/// use farmem_alloc::{AllocHint, FarAlloc};
/// use farmem_reclaim::{pin, ReclaimRegistry};
///
/// let fabric = FabricConfig::single_node(4 << 20).build();
/// let alloc = FarAlloc::new(fabric.clone());
/// let mut c = fabric.client();
/// let reg = ReclaimRegistry::create(&mut c, &alloc, 8).unwrap();
/// let shared = reg.attach(&mut c, &alloc).unwrap();
///
/// let block = alloc.alloc(64, AllocHint::Spread).unwrap();
/// {
///     let _g = pin(&shared, &mut c).unwrap(); // epoch-pinned operation
/// }
/// let live = alloc.stats().live_bytes;
/// let mut h = shared.lock().unwrap();
/// h.retire(&mut c, block, 64).unwrap();       // deferred, not freed yet
/// h.seal(&mut c).unwrap();                    // advance the global epoch
/// assert_eq!(alloc.stats().live_bytes, live); // still in limbo
/// h.reclaim(&mut c).unwrap();                 // sole client: grace is immediate
/// assert_eq!(alloc.stats().live_bytes, live - 64);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReclaimRegistry {
    base: FarAddr,
    n_slots: u64,
}

impl ReclaimRegistry {
    /// Allocates and initializes a registry for up to `max_clients`
    /// concurrently registered clients. The global epoch starts at 1.
    pub fn create(
        client: &mut FabricClient,
        alloc: &Arc<FarAlloc>,
        max_clients: u64,
    ) -> Result<ReclaimRegistry> {
        if max_clients == 0 {
            return Err(ReclaimError::BadConfig("need at least one epoch slot"));
        }
        let len = R_SLOTS + max_clients * WORD;
        let base = alloc.alloc(len, farmem_alloc::AllocHint::Spread)?;
        let mut bytes = Vec::with_capacity(len as usize);
        bytes.extend_from_slice(&1u64.to_le_bytes()); // epoch
        bytes.extend_from_slice(&max_clients.to_le_bytes());
        bytes.resize(len as usize, 0); // free slots
        client.write(base, &bytes)?;
        Ok(ReclaimRegistry { base, n_slots: max_clients })
    }

    /// The registry's base address (for sharing with other clients).
    pub fn base(&self) -> FarAddr {
        self.base
    }

    /// Number of epoch slots.
    pub fn n_slots(&self) -> u64 {
        self.n_slots
    }

    /// Far-memory footprint of the registry in bytes.
    pub fn far_len(&self) -> u64 {
        R_SLOTS + self.n_slots * WORD
    }

    fn epoch_addr(&self) -> FarAddr {
        self.base.offset(R_EPOCH)
    }

    fn slot_addr(&self, i: u64) -> FarAddr {
        self.base.offset(R_SLOTS + i * WORD)
    }

    /// Registers `client` and returns its shareable reclamation handle
    /// (one per client; clone the [`SharedReclaim`] into every structure
    /// handle the client attaches). Two to three far accesses.
    pub fn attach(
        &self,
        client: &mut FabricClient,
        alloc: &Arc<FarAlloc>,
    ) -> Result<SharedReclaim> {
        let (slot_idx, slot_word, observed) = claim_slot(client, self)?;
        let epoch_sub = client.notify0(self.epoch_addr(), WORD)?;
        Ok(Arc::new(Mutex::new(ReclaimHandle {
            registry: *self,
            alloc: alloc.clone(),
            epoch_sub,
            slot_idx,
            slot_word,
            observed,
            depth: 0,
            force_resync: false,
            pending: Vec::new(),
            limbo: VecDeque::new(),
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            watch: HashMap::new(),
            backoff_ns: WAIT_BASE_NS,
            stats: ReclaimStats::default(),
        })))
    }
}

/// Claims a free slot: read the registry, CAS a zero slot to
/// `tag | epoch`. Retries scans lost to racing registrants; errors with
/// [`ReclaimError::RegistryFull`] when a scan finds no free slot.
fn claim_slot(
    client: &mut FabricClient,
    registry: &ReclaimRegistry,
) -> Result<(u64, u64, u64)> {
    let tag = ((client.id() as u64 + 1) & 0xffff) << TAG_SHIFT;
    for _ in 0..registry.n_slots + 4 {
        // audit: rt-in-loop-ok: registration scan — one whole-registry read
        // per attempt; rescans only after losing every CAS to racers.
        let bytes = client.read(registry.base, registry.far_len())?;
        let w = words(&bytes);
        if w[1] != registry.n_slots {
            return Err(ReclaimError::Corrupted("slot count mismatch"));
        }
        let epoch = w[0] & EPOCH_MASK;
        let mut saw_free = false;
        for i in 0..registry.n_slots {
            if w[(2 + i) as usize] == 0 {
                saw_free = true;
                let word = tag | epoch;
                // audit: rt-in-loop-ok: one CAS per free slot until one
                // lands; a loss means a racing registrant claimed it.
                let prev = client.cas(registry.slot_addr(i), 0, word)?;
                if prev == 0 {
                    return Ok((i, word, epoch));
                }
            }
        }
        if !saw_free {
            return Err(ReclaimError::RegistryFull);
        }
    }
    Err(ReclaimError::RegistryFull)
}

/// A client's reclamation handle, shared (via [`SharedReclaim`]) between
/// every structure handle the client owns.
pub type SharedReclaim = Arc<Mutex<ReclaimHandle>>;

/// One deferred free awaiting its grace period.
#[derive(Clone, Copy, Debug)]
struct LimboEntry {
    addr: FarAddr,
    len: u64,
    epoch: u64,
}

/// Counters kept by one [`ReclaimHandle`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Limbo entries accepted by [`ReclaimHandle::retire`].
    pub retired_entries: u64,
    /// Bytes accepted into limbo.
    pub retired_bytes: u64,
    /// Limbo entries returned to the allocator.
    pub reclaimed_entries: u64,
    /// Bytes returned to the allocator.
    pub reclaimed_bytes: u64,
    /// Epoch bumps ([`ReclaimHandle::seal`]) this handle performed.
    pub seals: u64,
    /// Grace-detection rounds ([`ReclaimHandle::reclaim`] registry scans).
    pub rounds: u64,
    /// Lagging slots this handle evicted as crashed.
    pub evictions: u64,
    /// Times this handle found itself evicted and re-registered.
    pub evicted: u64,
}

impl ReclaimStats {
    /// Entries currently awaiting their grace period.
    pub fn limbo_entries(&self) -> u64 {
        self.retired_entries - self.reclaimed_entries
    }

    /// Bytes currently awaiting their grace period.
    pub fn limbo_bytes(&self) -> u64 {
        self.retired_bytes - self.reclaimed_bytes
    }
}

/// Per-client reclamation state: registry position, limbo list, grace
/// detector. Wrapped in a [`SharedReclaim`] so every structure handle of
/// the client can pin guards and retire memory through it.
pub struct ReclaimHandle {
    registry: ReclaimRegistry,
    alloc: Arc<FarAlloc>,
    epoch_sub: SubId,
    slot_idx: u64,
    /// The exact word we last installed in our slot (CAS expectation).
    slot_word: u64,
    /// The epoch our slot publishes (low 48 bits of `slot_word`).
    observed: u64,
    /// Guard nesting depth; epoch observation happens at depth 0 only.
    depth: u32,
    /// A resync failed mid-way (e.g. injected fault gave up); retry at
    /// the next pin even without a fresh notification.
    force_resync: bool,
    /// Retired but not yet sealed (no retire epoch assigned yet).
    pending: Vec<(FarAddr, u64)>,
    /// Sealed deferred frees, in nondecreasing retire-epoch order.
    limbo: VecDeque<LimboEntry>,
    /// Pending retires that trigger an automatic seal.
    seal_threshold: usize,
    /// Lease accounting per lagging slot: `slot → (word, waited_ns)`.
    watch: HashMap<u64, (u64, u64)>,
    /// Exponential wait slice charged per blocked detection round.
    backoff_ns: u64,
    stats: ReclaimStats,
}

/// RAII epoch pin. While any guard is alive the client's published epoch
/// does not advance, so no address retired at or after the pinned epoch
/// can be freed. Dropping is purely local (a depth decrement).
pub struct Guard {
    shared: SharedReclaim,
    epoch: u64,
}

impl Guard {
    /// The epoch this guard is pinned at. Structures compare it against
    /// the epoch they last validated their caches at: a difference means
    /// a restructure sealed since, and cached far pointers must be
    /// refreshed before the next far access.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Ok(mut h) = self.shared.lock() {
            debug_assert!(h.depth > 0, "guard drop without pin");
            h.depth = h.depth.saturating_sub(1);
        }
    }
}

/// Pins an epoch [`Guard`] for one structure operation. Zero far accesses
/// while the global epoch is unchanged (the check drains the local
/// `notify0` event queue); an epoch advance costs one read plus one CAS
/// to move the client's slot forward. If the CAS reveals this client was
/// evicted (a detector presumed it crashed), the client transparently
/// re-registers; the returned guard's epoch then forces every integrated
/// structure to refresh its caches.
pub fn pin(shared: &SharedReclaim, client: &mut FabricClient) -> Result<Guard> {
    let epoch = shared.lock().unwrap().pin_inner(client)?;
    Ok(Guard { shared: shared.clone(), epoch })
}

impl ReclaimHandle {
    /// This handle's counters.
    pub fn stats(&self) -> ReclaimStats {
        self.stats
    }

    /// The registry this handle is registered in.
    pub fn registry(&self) -> ReclaimRegistry {
        self.registry
    }

    /// The epoch this client currently publishes.
    pub fn observed_epoch(&self) -> u64 {
        self.observed
    }

    /// Overrides the automatic-seal threshold (pending retires per FAA).
    pub fn set_seal_threshold(&mut self, pending: usize) {
        self.seal_threshold = pending.max(1);
    }

    fn pin_inner(&mut self, client: &mut FabricClient) -> Result<u64> {
        if self.depth == 0 {
            let sub = self.epoch_sub;
            let fired = !client
                .take_events(|e| {
                    e.sub() == Some(sub) || matches!(e, farmem_fabric::Event::Lost { .. })
                })
                .is_empty();
            if fired || self.force_resync {
                self.resync(client)?;
            }
        }
        self.depth += 1;
        Ok(self.observed)
    }

    /// Wake-boundary epoch refresh for suspended tasks (the async
    /// runtime's *refresh-on-wake* rule; DESIGN.md §12).
    ///
    /// A client that blocks between structure operations republishes its
    /// epoch only at the next [`pin`] — fine when operations are frequent,
    /// but a *parked* logical client under an executor may not pin again
    /// for a long virtual time, and its stale published epoch would hold
    /// every retire at a newer epoch out of reclamation. Calling this at
    /// each wake boundary closes that gap:
    ///
    /// * **No guard held** (`depth == 0`): behaves exactly like the
    ///   depth-0 entry of [`pin`] — drains the epoch notification and, if
    ///   it fired (or a previous resync failed mid-way), re-reads the
    ///   global epoch and CASes the slot forward. Returns `Ok(true)` iff
    ///   the published epoch advanced; callers must then revalidate any
    ///   cached far pointers before the next dereference (the same
    ///   contract [`Guard::epoch`] documents).
    /// * **Guard held** (`depth > 0`): does nothing and returns
    ///   `Ok(false)`. Safety comes first — the pinned epoch must not
    ///   advance while a guard-protected traversal may hold unvalidated
    ///   far pointers. The slot stays bit-identical while parked, so the
    ///   lease detector charges no progress against a *live* task within
    ///   its lease; a task that never wakes again is indistinguishable
    ///   from a crashed client and is evicted after `LEASE_NS`, which is
    ///   safe by the re-registration protocol in [`publish`](ReclaimHandle).
    pub fn refresh_on_wake(&mut self, client: &mut FabricClient) -> Result<bool> {
        if self.depth > 0 {
            return Ok(false);
        }
        let sub = self.epoch_sub;
        let fired = !client
            .take_events(|e| {
                e.sub() == Some(sub) || matches!(e, farmem_fabric::Event::Lost { .. })
            })
            .is_empty();
        if !(fired || self.force_resync) {
            return Ok(false);
        }
        let before = self.observed;
        self.resync(client)?;
        Ok(self.observed != before)
    }

    /// Re-reads the global epoch and publishes it in our slot (CAS, so an
    /// eviction is detected rather than clobbered).
    fn resync(&mut self, client: &mut FabricClient) -> Result<()> {
        self.force_resync = true;
        let latest = client.read_u64(self.registry.epoch_addr())? & EPOCH_MASK;
        if latest != self.observed {
            self.publish(client, latest)?;
        }
        self.force_resync = false;
        Ok(())
    }

    /// CASes our slot from its last known word to `tag | epoch`,
    /// re-registering if the slot was stolen by an eviction.
    fn publish(&mut self, client: &mut FabricClient, epoch: u64) -> Result<()> {
        let tag = ((client.id() as u64 + 1) & 0xffff) << TAG_SHIFT;
        let new_word = tag | (epoch & EPOCH_MASK);
        let prev = client.cas(self.registry.slot_addr(self.slot_idx), self.slot_word, new_word)?;
        if prev == self.slot_word {
            self.slot_word = new_word;
            self.observed = epoch;
        } else {
            // Evicted (presumed crashed). Claim a fresh slot; the epoch
            // jump makes every integrated structure refresh its caches.
            self.stats.evicted += 1;
            let (idx, word, observed) = claim_slot(client, &self.registry)?;
            self.slot_idx = idx;
            self.slot_word = word;
            self.observed = observed;
        }
        Ok(())
    }

    /// Hands `[addr, addr + len)` to the limbo list. Zero far accesses:
    /// the entry becomes eligible for freeing only after a [`seal`]
    /// assigns its retire epoch (an automatic seal triggers every
    /// [`set_seal_threshold`] retires). The address must have been
    /// unlinked — no *new* reference can be formed — before this call,
    /// and must be retired exactly once with its allocation length.
    ///
    /// [`seal`]: ReclaimHandle::seal
    /// [`set_seal_threshold`]: ReclaimHandle::set_seal_threshold
    pub fn retire(&mut self, client: &mut FabricClient, addr: FarAddr, len: u64) -> Result<()> {
        if addr.is_null() || len == 0 {
            return Err(ReclaimError::BadConfig("null or empty retire"));
        }
        self.pending.push((addr, len));
        self.stats.retired_entries += 1;
        // lint: stats-ok: ReclaimStats bookkeeping; AccessStats moves via book_reclaim below
        self.stats.retired_bytes += len;
        client.book_reclaim(len, 0, 0);
        if self.pending.len() >= self.seal_threshold {
            self.seal(client)?;
        }
        Ok(())
    }

    /// Retires every chunk (and oversized item) an [`Arena`] ever drew,
    /// consuming it. The caller asserts no new references to arena items
    /// can be formed; concurrent guards from before the seal keep the
    /// chunks readable until their grace period elapses.
    pub fn retire_arena(&mut self, client: &mut FabricClient, arena: Arena) -> Result<()> {
        let (chunks, chunk_len, oversized) = arena.into_parts();
        for c in chunks {
            self.retire(client, c, chunk_len)?;
        }
        for (addr, len) in oversized {
            self.retire(client, addr, len)?;
        }
        Ok(())
    }

    /// Seals all pending retires: one FAA bumps the global epoch, and the
    /// FAA's *pre-bump* value becomes their retire epoch. Any guard that
    /// could still reach a sealed address was pinned at or below that
    /// value (a pin observing the bumped epoch starts after the bump,
    /// which starts after every sealed address was unlinked — and the
    /// epoch change makes that pin refresh its structure caches first).
    /// No-op when nothing is pending.
    pub fn seal(&mut self, client: &mut FabricClient) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let prev = client.faa(self.registry.epoch_addr(), 1)? & EPOCH_MASK;
        for (addr, len) in self.pending.drain(..) {
            self.limbo.push_back(LimboEntry { addr, len, epoch: prev });
        }
        self.stats.seals += 1;
        Ok(())
    }

    /// One grace-detection round. Seals any pending retires, scans the
    /// registry in **one read**, evicts lagging slots whose lease ran out
    /// (see [`LEASE_NS`]), and frees every limbo entry whose retire epoch
    /// every registered client has passed. Returns the bytes freed.
    ///
    /// Call it periodically (it is cheap when limbo is empty — no far
    /// access at all) or in a loop to out-wait a crashed peer's lease.
    pub fn reclaim(&mut self, client: &mut FabricClient) -> Result<u64> {
        self.seal(client)?;
        if self.limbo.is_empty() {
            self.watch.clear();
            self.backoff_ns = WAIT_BASE_NS;
            return Ok(0);
        }
        // One round trip: global epoch + every slot.
        let bytes = client.read(self.registry.base, self.registry.far_len())?;
        self.stats.rounds += 1;
        client.book_reclaim(0, 0, 1);
        let w = words(&bytes);
        let global = w[0] & EPOCH_MASK;
        // Keep our own slot current: outside any guard we hold no far
        // references, so advancing our published epoch is exactly what a
        // pin would do (and lets a sole client reclaim immediately).
        if self.depth == 0 && global != self.observed {
            self.publish(client, global)?;
        }
        let mut slot_epochs: Vec<(u64, u64, u64)> = Vec::new(); // (idx, word, epoch)
        for i in 0..self.registry.n_slots {
            let word = w[(2 + i) as usize];
            if word != 0 {
                slot_epochs.push((i, word, word & EPOCH_MASK));
            }
        }
        let oldest = self.limbo.front().expect("limbo non-empty").epoch;
        let blockers: Vec<(u64, u64)> = slot_epochs
            .iter()
            .filter(|&&(i, _, ep)| ep < global && ep <= oldest && i != self.slot_idx)
            .map(|&(i, word, _)| (i, word))
            .collect();
        let mut evicted: Vec<u64> = Vec::new();
        if blockers.is_empty() {
            self.watch.clear();
            self.backoff_ns = WAIT_BASE_NS;
        } else {
            // The detector is waiting out a lease: charge itself a wait
            // slice of virtual time (its own time, never another clock).
            let slice = self.backoff_ns;
            client.advance_time(slice);
            self.backoff_ns = (self.backoff_ns * 2).min(WAIT_CAP_NS);
            self.watch.retain(|i, _| blockers.iter().any(|&(b, _)| b == *i));
            for (i, word) in blockers {
                let entry = self.watch.entry(i).or_insert((word, 0));
                if entry.0 == word {
                    entry.1 += slice;
                } else {
                    *entry = (word, 0); // the registrant moved: reset
                }
                if entry.1 >= LEASE_NS {
                    // Presumed crashed: evict by CAS on the exact word we
                    // watched. Losing the race means the slot moved (the
                    // registrant lives or someone else evicted it).
                    // audit: rt-in-loop-ok: one eviction CAS per registrant
                    // presumed dead after a full lease of no movement (rare).
                    let prev = client.cas(self.registry.slot_addr(i), word, 0)?;
                    if prev == word {
                        self.stats.evictions += 1;
                        evicted.push(i);
                    }
                    self.watch.remove(&i);
                }
            }
        }
        // Grace rule: free entries strictly below the minimum epoch any
        // registered client (still) publishes. Our own slot uses the
        // local `observed` (authoritative even mid-publish).
        let mut min_ep = self.observed;
        for &(i, _, ep) in &slot_epochs {
            if i != self.slot_idx && !evicted.contains(&i) {
                min_ep = min_ep.min(ep);
            }
        }
        let mut freed = 0u64;
        while let Some(front) = self.limbo.front() {
            if front.epoch >= min_ep {
                break;
            }
            let e = self.limbo.pop_front().expect("front exists");
            self.alloc.free(e.addr, e.len)?;
            freed += e.len;
            self.stats.reclaimed_entries += 1;
            // lint: stats-ok: ReclaimStats bookkeeping; AccessStats moves via book_reclaim below
            self.stats.reclaimed_bytes += e.len;
        }
        if freed > 0 {
            client.book_reclaim(0, freed, 0);
        }
        Ok(freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmem_alloc::AllocHint;
    use farmem_fabric::FabricConfig;

    fn setup() -> (Arc<farmem_fabric::Fabric>, Arc<FarAlloc>, ReclaimRegistry) {
        let f = FabricConfig::count_only(16 << 20).build();
        let a = FarAlloc::new(f.clone());
        let mut c = f.client();
        let reg = ReclaimRegistry::create(&mut c, &a, 4).unwrap();
        (f, a, reg)
    }

    #[test]
    fn pin_is_free_until_the_epoch_moves() {
        let (f, a, reg) = setup();
        let mut c = f.client();
        let shared = reg.attach(&mut c, &a).unwrap();
        let before = c.stats();
        for _ in 0..100 {
            let _g = pin(&shared, &mut c).unwrap();
        }
        assert_eq!(c.stats().since(&before).round_trips, 0, "steady-state pin is free");
    }

    #[test]
    fn sole_client_reclaims_after_one_round() {
        let (f, a, reg) = setup();
        let mut c = f.client();
        let shared = reg.attach(&mut c, &a).unwrap();
        let block = a.alloc(128, AllocHint::Spread).unwrap();
        let live = a.stats().live_bytes;
        let mut h = shared.lock().unwrap();
        h.retire(&mut c, block, 128).unwrap();
        h.seal(&mut c).unwrap();
        assert_eq!(a.stats().live_bytes, live, "sealed but not yet freed");
        assert_eq!(h.stats().limbo_bytes(), 128);
        let freed = h.reclaim(&mut c).unwrap();
        assert_eq!(freed, 128);
        assert_eq!(a.stats().live_bytes, live - 128);
        assert_eq!(h.stats().limbo_bytes(), 0);
    }

    #[test]
    fn grace_waits_for_a_pinned_peer() {
        let (f, a, reg) = setup();
        let mut c1 = f.client();
        let mut c2 = f.client();
        let s1 = reg.attach(&mut c1, &a).unwrap();
        let s2 = reg.attach(&mut c2, &a).unwrap();
        // c2 pins *before* the retire: it could still hold a reference.
        let g2 = pin(&s2, &mut c2).unwrap();
        let block = a.alloc(256, AllocHint::Spread).unwrap();
        {
            let mut h1 = s1.lock().unwrap();
            h1.retire(&mut c1, block, 256).unwrap();
            h1.seal(&mut c1).unwrap();
            for _ in 0..5 {
                assert_eq!(h1.reclaim(&mut c1).unwrap(), 0, "c2's guard blocks the free");
            }
        }
        drop(g2);
        // c2 pins again: the notification resyncs its slot past the seal.
        let _g2 = pin(&s2, &mut c2).unwrap();
        let mut h1 = s1.lock().unwrap();
        assert_eq!(h1.reclaim(&mut c1).unwrap(), 256);
    }

    #[test]
    fn refresh_on_wake_unblocks_grace_without_a_pin() {
        let (f, a, reg) = setup();
        let mut c1 = f.client();
        let mut c2 = f.client();
        let s1 = reg.attach(&mut c1, &a).unwrap();
        let s2 = reg.attach(&mut c2, &a).unwrap();
        // c2 is a parked logical client: no guard held, not pinning.
        let block = a.alloc(256, AllocHint::Spread).unwrap();
        {
            let mut h1 = s1.lock().unwrap();
            h1.retire(&mut c1, block, 256).unwrap();
            h1.seal(&mut c1).unwrap();
            assert_eq!(h1.reclaim(&mut c1).unwrap(), 0, "c2's stale slot blocks the free");
        }
        // A wake boundary republishes c2's epoch without any pin.
        let advanced = s2.lock().unwrap().refresh_on_wake(&mut c2).unwrap();
        assert!(advanced, "the seal's epoch notification fired while parked");
        assert_eq!(s1.lock().unwrap().reclaim(&mut c1).unwrap(), 256);
    }

    #[test]
    fn refresh_on_wake_is_inert_while_a_guard_is_held() {
        let (f, a, reg) = setup();
        let mut c1 = f.client();
        let mut c2 = f.client();
        let s1 = reg.attach(&mut c1, &a).unwrap();
        let s2 = reg.attach(&mut c2, &a).unwrap();
        // c2 pins *before* the retire and then suspends with the guard
        // held across the park.
        let g2 = pin(&s2, &mut c2).unwrap();
        let block = a.alloc(256, AllocHint::Spread).unwrap();
        {
            let mut h1 = s1.lock().unwrap();
            h1.retire(&mut c1, block, 256).unwrap();
            h1.seal(&mut c1).unwrap();
        }
        // Wake boundaries inside the guard must not advance the epoch.
        assert!(!s2.lock().unwrap().refresh_on_wake(&mut c2).unwrap());
        assert_eq!(s1.lock().unwrap().reclaim(&mut c1).unwrap(), 0, "guard still pins");
        drop(g2);
        // The first wake boundary after the drop releases the pin.
        assert!(s2.lock().unwrap().refresh_on_wake(&mut c2).unwrap());
        assert_eq!(s1.lock().unwrap().reclaim(&mut c1).unwrap(), 256);
    }

    #[test]
    fn dead_peer_is_evicted_after_its_lease() {
        let (f, a, reg) = setup();
        let mut c1 = f.client();
        let mut c2 = f.client();
        let s1 = reg.attach(&mut c1, &a).unwrap();
        let _s2 = reg.attach(&mut c2, &a).unwrap();
        // c2 "crashes": it never pins again.
        let block = a.alloc(64, AllocHint::Spread).unwrap();
        let mut h1 = s1.lock().unwrap();
        h1.retire(&mut c1, block, 64).unwrap();
        h1.seal(&mut c1).unwrap();
        let mut freed = 0;
        for _ in 0..64 {
            freed = h1.reclaim(&mut c1).unwrap();
            if freed > 0 {
                break;
            }
        }
        assert_eq!(freed, 64, "eviction unblocked reclamation");
        assert_eq!(h1.stats().evictions, 1);
    }

    #[test]
    fn evicted_client_reregisters_on_next_pin() {
        let (f, a, reg) = setup();
        let mut c1 = f.client();
        let mut c2 = f.client();
        let s1 = reg.attach(&mut c1, &a).unwrap();
        let s2 = reg.attach(&mut c2, &a).unwrap();
        let block = a.alloc(64, AllocHint::Spread).unwrap();
        {
            let mut h1 = s1.lock().unwrap();
            h1.retire(&mut c1, block, 64).unwrap();
            h1.seal(&mut c1).unwrap();
            for _ in 0..64 {
                if h1.reclaim(&mut c1).unwrap() > 0 {
                    break;
                }
            }
            assert_eq!(h1.stats().evictions, 1, "c2 was evicted");
        }
        // c2 wakes up: its pin detects the stolen slot and re-registers.
        let g = pin(&s2, &mut c2).unwrap();
        let h2 = s2.lock().unwrap();
        assert_eq!(h2.stats().evicted, 1);
        assert_eq!(g.epoch(), h2.observed_epoch());
        // And it still participates in grace from its fresh slot.
        assert!(g.epoch() >= 2);
    }

    #[test]
    fn auto_seal_triggers_at_threshold() {
        let (f, a, reg) = setup();
        let mut c = f.client();
        let shared = reg.attach(&mut c, &a).unwrap();
        let mut h = shared.lock().unwrap();
        h.set_seal_threshold(4);
        for _ in 0..8 {
            let block = a.alloc(32, AllocHint::Spread).unwrap();
            h.retire(&mut c, block, 32).unwrap();
        }
        assert_eq!(h.stats().seals, 2, "two automatic seals at threshold 4");
    }

    #[test]
    fn double_retire_surfaces_as_bad_free() {
        let (f, a, reg) = setup();
        let mut c = f.client();
        let shared = reg.attach(&mut c, &a).unwrap();
        let block = a.alloc(64, AllocHint::Spread).unwrap();
        let mut h = shared.lock().unwrap();
        h.retire(&mut c, block, 64).unwrap();
        h.retire(&mut c, block, 64).unwrap(); // the bug
        h.seal(&mut c).unwrap();
        let err = h.reclaim(&mut c).unwrap_err();
        assert!(matches!(err, ReclaimError::Alloc(AllocError::BadFree { .. })));
    }

    #[test]
    fn retire_arena_returns_all_chunks() {
        let (f, a, reg) = setup();
        let mut c = f.client();
        let shared = reg.attach(&mut c, &a).unwrap();
        let baseline = a.stats().live_bytes;
        let mut arena = Arena::new(a.clone(), 4096, AllocHint::Spread);
        for _ in 0..200 {
            arena.alloc(64).unwrap();
        }
        arena.alloc(10_000).unwrap(); // oversized: dedicated allocation
        assert!(a.stats().live_bytes > baseline);
        let mut h = shared.lock().unwrap();
        h.retire_arena(&mut c, arena).unwrap();
        h.reclaim(&mut c).unwrap();
        assert_eq!(a.stats().live_bytes, baseline, "all chunks and oversized items freed");
    }

    #[test]
    fn registry_full_is_reported() {
        let f = FabricConfig::count_only(16 << 20).build();
        let a = FarAlloc::new(f.clone());
        let mut c = f.client();
        let reg = ReclaimRegistry::create(&mut c, &a, 2).unwrap();
        let _s1 = reg.attach(&mut c, &a).unwrap();
        let _s2 = reg.attach(&mut c, &a).unwrap();
        let err = match reg.attach(&mut c, &a) {
            Err(e) => e,
            Ok(_) => panic!("third attach must fail"),
        };
        assert_eq!(err, ReclaimError::RegistryFull);
    }
}
