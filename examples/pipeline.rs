//! A bulk-synchronous analytics pipeline in far memory, exercising the
//! extended structure set: worker threads rendezvous on an epoch barrier
//! each superstep, pull work from the far queue, publish variable-length
//! artifacts into a blob map under a reader-writer lock, and a
//! write-combining producer streams metrics with one far access per
//! superstep.
//!
//! Run with: `cargo run --release --example pipeline`

use farmem::prelude::*;
use std::time::Duration;

const WORKERS: u64 = 4;
const SUPERSTEPS: u64 = 5;
const TASKS_PER_STEP: u64 = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = FabricConfig { nodes: 4, node_capacity: 128 << 20, ..FabricConfig::default() }
        .build();
    let alloc = FarAlloc::new(fabric.clone());
    let mut coord = fabric.client();

    // Shared far state.
    let queue = FarQueue::create(&mut coord, &alloc, QueueConfig::new(1024, WORKERS + 1))?;
    let barrier = FarEpochBarrier::create(&mut coord, &alloc, WORKERS, AllocHint::Spread)?;
    let results = HtTree::create(&mut coord, &alloc, HtTreeConfig::default())?;
    let results_lock = FarRwLock::create(&mut coord, &alloc, AllocHint::Spread)?;
    let metrics = FarVec::create(&mut coord, &alloc, 64, AllocHint::Striped)?;

    // Seed superstep 0.
    let mut qh = FarQueue::attach(&mut coord, queue.hdr())?;
    for t in 0..TASKS_PER_STEP {
        qh.enqueue(&mut coord, t)?;
    }

    let mut workers = Vec::new();
    for wid in 0..WORKERS {
        let fabric = fabric.clone();
        let alloc = alloc.clone();
        workers.push(std::thread::spawn(move || -> Result<(u64, AccessStats), CoreError> {
            let mut c = fabric.client();
            let mut q = FarQueue::attach(&mut c, queue.hdr())?;
            let barrier = FarEpochBarrier::attach(barrier.addr(), WORKERS);
            let mut blobs =
                FarBlobMap::attach(&mut c, &alloc, results, HtTreeConfig::default())?;
            let mut done = 0u64;
            for step in 0..SUPERSTEPS {
                // Drain this superstep's tasks cooperatively.
                loop {
                    match q.dequeue(&mut c) {
                        Ok(task) => {
                            // "Analyze" the task and publish an artifact.
                            let artifact =
                                format!("step{step}:task{task}:worker{wid}:checksum{:x}",
                                        task.wrapping_mul(0x9e3779b97f4a7c15));
                            results_lock.read_lock(&mut c, 100_000)?;
                            blobs.put_bytes(&mut c, step << 32 | task, artifact.as_bytes())?;
                            results_lock.read_unlock(&mut c)?;
                            metrics.add(&mut c, (step % 64).min(63), 1)?;
                            done += 1;
                        }
                        Err(CoreError::QueueEmpty) => break,
                        Err(e) => return Err(e),
                    }
                }
                // Rendezvous; worker 0 then seeds the next superstep.
                let gen = barrier.arrive_and_wait(&mut c, Duration::from_secs(30))?;
                assert_eq!(gen, 2 * step, "two rendezvous per superstep");
                if wid == 0 && step + 1 < SUPERSTEPS {
                    for t in 0..TASKS_PER_STEP {
                        q.enqueue_wait(&mut c, t, 10_000)?;
                    }
                }
                // Second rendezvous so nobody races ahead of the seeding.
                barrier.arrive_and_wait(&mut c, Duration::from_secs(30))?;
            }
            Ok((done, c.stats()))
        }));
    }

    let mut total_done = 0u64;
    let mut total = AccessStats::new();
    for w in workers {
        let (done, stats) = w.join().expect("worker panicked")?;
        total_done += done;
        total.merge(&stats);
    }
    println!(
        "{total_done} tasks processed across {WORKERS} workers × {SUPERSTEPS} supersteps"
    );
    assert_eq!(total_done, SUPERSTEPS * TASKS_PER_STEP);

    // Audit: every artifact is present and well-formed.
    let mut blobs = FarBlobMap::attach(&mut coord, &alloc, results, HtTreeConfig::default())?;
    results_lock.write_lock(&mut coord, 100_000)?;
    let mut verified = 0;
    for step in 0..SUPERSTEPS {
        for task in 0..TASKS_PER_STEP {
            let artifact = blobs
                .get_bytes(&mut coord, step << 32 | task)?
                .expect("artifact missing");
            let s = String::from_utf8(artifact).expect("utf8");
            assert!(s.starts_with(&format!("step{step}:task{task}:")), "bad artifact {s}");
            verified += 1;
        }
    }
    results_lock.write_unlock(&mut coord)?;
    println!("{verified} artifacts verified under the write lock");

    // Metrics: one histogram slot per superstep.
    let counts = metrics.read_range(&mut coord, 0, SUPERSTEPS)?;
    println!("per-superstep task counts: {counts:?}");
    assert!(counts.iter().all(|&c| c == TASKS_PER_STEP));

    println!(
        "\nfleet totals: {} far round trips, {} messages, {} notifications",
        total.round_trips, total.messages, total.notifications
    );
    Ok(())
}
