//! A distributed-ML parameter server on refreshable vectors (§5.4).
//!
//! A trainer writes model parameters into far memory; workers keep cached
//! copies with bounded staleness, refreshing between mini-batches. As the
//! "training" converges and updates slow down, the readers' dynamic
//! policy shifts from version polling to notifications — watch the mode
//! switch and the refresh cost collapse.
//!
//! Run with: `cargo run --example parameter_server`

use farmem::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = FabricConfig { nodes: 4, node_capacity: 64 << 20, ..FabricConfig::default() }
        .build();
    let alloc = FarAlloc::new(fabric.clone());

    // A model of 16Ki parameters in groups of 64.
    let dim = 16 * 1024;
    let mut trainer = fabric.client();
    let model = RefreshableVec::create(&mut trainer, &alloc, dim, 64, AllocHint::Striped)?;
    let writer = VecWriter::new(model);

    let mut worker_client = fabric.client();
    let mut worker = VecReader::new(&mut worker_client, model, RefreshPolicy::default())?;

    let mut rng = StdRng::seed_from_u64(11);
    // Simulated training: the number of parameters touched per step decays
    // as gradients shrink.
    let mut updates_per_step = 512.0f64;
    for step in 0..40u64 {
        let k = updates_per_step.round() as u64;
        let updates: Vec<(u64, u64)> = (0..k)
            .map(|_| (rng.gen_range(0..dim), rng.gen_range(0..1000)))
            .collect();
        if !updates.is_empty() {
            writer.write_batch(&mut trainer, &updates)?;
        }
        updates_per_step *= 0.75;

        // The worker refreshes before its mini-batch.
        let before = worker_client.stats();
        let changed = worker.refresh(&mut worker_client)?;
        let cost = worker_client.stats().since(&before);
        // "Read" some parameters — zero far accesses against the cache.
        let mut acc = 0u64;
        for i in (0..dim).step_by(97) {
            acc = acc.wrapping_add(worker.get(&mut worker_client, i)?);
        }
        if step % 5 == 0 || changed == 0 {
            println!(
                "step {step:>2}: {:>4} params written, {changed:>3} groups refreshed, \
                 {} far access(es), mode {:?}, checksum {acc:>8}",
                k,
                cost.round_trips,
                worker.mode()
            );
        }
    }
    let stats = worker.stats();
    println!(
        "\nworker totals: {} refreshes, {} groups refetched, {} version polls, \
         {} mode switches",
        stats.refreshes, stats.groups_refreshed, stats.version_polls, stats.mode_switches
    );
    assert!(stats.mode_switches >= 1, "the dynamic policy kicked in");
    Ok(())
}
