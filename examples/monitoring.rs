//! The §6 monitoring case study, end to end: a producer tracks CPU
//! utilization in far-memory histograms; consumers with different alarm
//! thresholds react to notifications; a naive sample-log design runs the
//! same workload for comparison.
//!
//! Run with: `cargo run --example monitoring`

use farmem::monitor::{AlarmSpec, HistogramMonitor, NaiveMonitor, Severity};
use farmem::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = FabricConfig { nodes: 2, node_capacity: 64 << 20, ..FabricConfig::default() }
        .build();
    let alloc = FarAlloc::new(fabric.clone());
    let mut producer_client = fabric.client();

    let spec = AlarmSpec { warning: 70, critical: 85, failure: 95, duration: 5 };
    let monitor =
        HistogramMonitor::create(&mut producer_client, &alloc, 101, 100, 8, spec)?;
    let mut producer = monitor.producer(&mut producer_client);

    // Three consumers with different interests.
    let mut ops_client = fabric.client();
    let mut oncall_client = fabric.client();
    let mut pager_client = fabric.client();
    let mut ops = monitor.consumer(&mut ops_client, Severity::Warning)?;
    let mut oncall = monitor.consumer(&mut oncall_client, Severity::Critical)?;
    let mut pager = monitor.consumer(&mut pager_client, Severity::Failure)?;

    // Drive 4 windows of CPU samples: mostly calm, one overload window.
    let mut rng = StdRng::seed_from_u64(7);
    for window in 0..4u64 {
        let overloaded = window == 2;
        for _ in 0..1000 {
            let sample: u64 = if overloaded {
                80 + rng.gen_range(0..20)
            } else {
                20 + rng.gen_range(0..40)
            };
            producer.record(&mut producer_client, sample)?;
        }
        for (name, cons, client) in [
            ("ops   ", &mut ops, &mut ops_client),
            ("oncall", &mut oncall, &mut oncall_client),
            ("pager ", &mut pager, &mut pager_client),
        ] {
            for alarm in cons.poll(client)? {
                println!(
                    "window {window}: {name} sees {:?} ({} hot samples)",
                    alarm.severity, alarm.count
                );
            }
        }
        producer.end_window(&mut producer_client)?;
    }

    let n_samples = 4 * 1000u64;
    println!("\n--- traffic: histogram + notifications design (§6) ---");
    println!(
        "producer: {} far accesses for {} samples (one each)",
        producer_client.stats().round_trips,
        n_samples
    );
    for (name, cons, client) in [
        ("ops   ", &ops, &ops_client),
        ("oncall", &oncall, &oncall_client),
        ("pager ", &pager, &pager_client),
    ] {
        println!(
            "{name}: {} notifications, {} far accesses, {} bytes read",
            cons.notifications_seen(),
            client.stats().round_trips,
            client.stats().bytes_read
        );
    }

    // The naive design on the same workload.
    let mut np_client = fabric.client();
    let naive = NaiveMonitor::create(&mut np_client, &alloc, n_samples)?;
    let mut np = naive.producer();
    let mut rng = StdRng::seed_from_u64(7);
    for window in 0..4u64 {
        let overloaded = window == 2;
        for _ in 0..1000 {
            let s: u64 = if overloaded { 80 + rng.gen_range(0..20) } else { 20 + rng.gen_range(0..40) };
            np.record(&mut np_client, s)?;
        }
    }
    let mut naive_consumer_bytes = 0u64;
    for _ in 0..3 {
        let mut cc = fabric.client();
        let mut cons = naive.consumer();
        cons.poll(&mut cc)?;
        naive_consumer_bytes += cc.stats().bytes_read;
    }
    println!("\n--- traffic: naive sample-log design ---");
    println!(
        "producer: {} far accesses; consumers: {} bytes read ((k+1)·N transfers)",
        np_client.stats().round_trips,
        naive_consumer_bytes
    );
    Ok(())
}
