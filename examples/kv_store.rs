//! A far-memory key-value store three ways: the HT-tree (§5.2) against a
//! traditional one-sided chained hash table and an RPC server — the
//! paper's central comparison, on a YCSB-C-style workload.
//!
//! Run with: `cargo run --release --example kv_store`

use farmem::baselines::{ChainedHash, RpcKv};
use farmem::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEYS: u64 = 50_000;
const OPS: u64 = 20_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = FabricConfig { nodes: 4, node_capacity: 256 << 20, ..FabricConfig::default() }
        .build();
    let alloc = FarAlloc::new(fabric.clone());
    let mut rng = StdRng::seed_from_u64(99);
    let keys: Vec<u64> = (0..OPS).map(|_| rng.gen_range(0..KEYS)).collect();

    // --- HT-tree ---
    let mut c = fabric.client();
    let cfg = HtTreeConfig { initial_buckets: 4096, ..HtTreeConfig::default() };
    let map = HtTree::create(&mut c, &alloc, cfg)?;
    let mut h = map.attach(&mut c, &alloc, cfg)?;
    for k in 0..KEYS {
        h.put(&mut c, k, k + 1)?;
    }
    let before = c.stats();
    let t0 = c.now_ns();
    for &k in &keys {
        assert_eq!(h.get(&mut c, k)?, Some(k + 1));
    }
    let d = c.stats().since(&before);
    println!(
        "HT-tree      : {:.2} far accesses/lookup, {:>5.0} ns/op, {:>3} B/op, \
         client cache {} KiB",
        d.round_trips as f64 / OPS as f64,
        (c.now_ns() - t0) as f64 / OPS as f64,
        d.bytes_read / OPS,
        h.cache_bytes() / 1024,
    );

    // --- traditional one-sided chained hash table ---
    let mut c = fabric.client();
    let mut table = ChainedHash::create(&mut c, &alloc, 65_536, false)?;
    for k in 0..KEYS {
        table.insert(&mut c, k, k + 1)?;
    }
    let before = c.stats();
    let t0 = c.now_ns();
    for &k in &keys {
        assert_eq!(table.get(&mut c, k)?, Some(k + 1));
    }
    let d = c.stats().since(&before);
    println!(
        "chained hash : {:.2} far accesses/lookup, {:>5.0} ns/op, {:>3} B/op",
        d.round_trips as f64 / OPS as f64,
        (c.now_ns() - t0) as f64 / OPS as f64,
        d.bytes_read / OPS,
    );

    // --- RPC server ---
    let server = RpcKv::serve(ServerCpu::DEFAULT, *fabric.cost());
    let mut kv = RpcKv::connect(vec![server]);
    for k in 0..KEYS {
        kv.put(k, k + 1);
    }
    let calls0 = kv.rpc().stats().calls;
    let t0 = kv.now_ns();
    for &k in &keys {
        assert_eq!(kv.get(k), Some(k + 1));
    }
    println!(
        "RPC store    : {:.2} round trips/lookup,  {:>5.0} ns/op (server CPU serialized)",
        (kv.rpc().stats().calls - calls0) as f64 / OPS as f64,
        (kv.now_ns() - t0) as f64 / OPS as f64,
    );

    println!(
        "\nThe HT-tree matches RPC's single round trip without consuming a \
         memory-side CPU;\nthe traditional one-sided table pays double."
    );
    Ok(())
}
