//! A multi-producer multi-consumer work queue on the §5.3 far queue,
//! driven by real OS threads, with the lock-based design alongside for
//! contrast.
//!
//! Run with: `cargo run --release --example work_queue`

use farmem::baselines::LockQueue;
use farmem::prelude::*;

const PRODUCERS: usize = 3;
const CONSUMERS: usize = 3;
const PER_PRODUCER: u64 = 2_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = FabricConfig { nodes: 2, node_capacity: 64 << 20, ..FabricConfig::default() }
        .build();
    let alloc = FarAlloc::new(fabric.clone());
    let mut c0 = fabric.client();

    // --- the paper's saai/faai queue ---
    let q = FarQueue::create(
        &mut c0,
        &alloc,
        QueueConfig::new(1 << 14, (PRODUCERS + CONSUMERS) as u64),
    )?;
    let done = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let total = (PRODUCERS as u64) * PER_PRODUCER;
    let mut threads = Vec::new();
    for p in 0..PRODUCERS {
        let fabric = fabric.clone();
        threads.push(std::thread::spawn(move || {
            let mut c = fabric.client();
            let mut h = FarQueue::attach(&mut c, q.hdr()).expect("attach");
            for i in 0..PER_PRODUCER {
                h.enqueue_wait(&mut c, (p as u64) << 32 | i, 10_000).expect("enqueue");
            }
            (c.stats(), h.stats())
        }));
    }
    let mut consumers = Vec::new();
    for _ in 0..CONSUMERS {
        let fabric = fabric.clone();
        let done = done.clone();
        consumers.push(std::thread::spawn(move || {
            let mut c = fabric.client();
            let mut h = FarQueue::attach(&mut c, q.hdr()).expect("attach");
            let mut sum = 0u64;
            loop {
                if done.load(std::sync::atomic::Ordering::Relaxed) >= total {
                    break;
                }
                match h.dequeue(&mut c) {
                    Ok(v) => {
                        sum = sum.wrapping_add(v);
                        done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Err(CoreError::QueueEmpty) => std::thread::yield_now(),
                    Err(e) => panic!("dequeue failed: {e}"),
                }
            }
            (c.stats(), h.stats(), sum)
        }));
    }
    let mut prod_rts = 0u64;
    let mut prod_ops = 0u64;
    for t in threads {
        let (stats, qstats) = t.join().expect("producer");
        prod_rts += stats.round_trips;
        prod_ops += qstats.enq_fast;
    }
    let mut cons_rts = 0u64;
    let mut cons_ops = 0u64;
    for t in consumers {
        let (stats, qstats, _) = t.join().expect("consumer");
        cons_rts += stats.round_trips;
        cons_ops += qstats.deq_fast;
    }
    println!("far queue (saai/faai, §5.3):");
    println!(
        "  {} items through {} producers / {} consumers",
        total, PRODUCERS, CONSUMERS
    );
    println!(
        "  producers: {:.2} far accesses/op   consumers: {:.2} far accesses/op",
        prod_rts as f64 / prod_ops.max(1) as f64,
        cons_rts as f64 / cons_ops.max(1) as f64
    );

    // --- the lock-based comparator, single-threaded for its op count ---
    let mut c = fabric.client();
    let lq = LockQueue::create(&mut c, &alloc, 1 << 14)?;
    let before = c.stats();
    for i in 0..1000u64 {
        lq.enqueue(&mut c, i)?;
    }
    for _ in 0..1000u64 {
        lq.dequeue(&mut c)?;
    }
    let d = c.stats().since(&before);
    println!("\nlock-based queue (comparator):");
    println!("  {:.2} far accesses/op, uncontended", d.round_trips as f64 / 2000.0);
    Ok(())
}
