//! Quickstart: build a fabric, share data structures between clients, and
//! watch the far-access accounting that the paper's argument rests on.
//!
//! Run with: `cargo run --example quickstart`

use farmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A far-memory pool of 4 nodes × 64 MiB, page-striped for bandwidth,
    // with the paper's default latency regime (~2 µs far round trips).
    let fabric = FabricConfig {
        nodes: 4,
        node_capacity: 64 << 20,
        striping: Striping::Striped { stripe: 64 << 10 },
        ..FabricConfig::default()
    }
    .build();
    let alloc = FarAlloc::new(fabric.clone());

    // Two independent compute nodes.
    let mut a = fabric.client();
    let mut b = fabric.client();

    // --- A shared counter (§5.1): every op is one far access. ---
    let counter = FarCounter::create(&mut a, &alloc, 0, AllocHint::Spread)?;
    counter.increment(&mut a)?;
    counter.add(&mut b, 10)?;
    println!("counter = {}", counter.get(&mut a)?);

    // --- The HT-tree map (§5.2): 1-far-access lookups. ---
    let cfg = HtTreeConfig { initial_buckets: 4096, ..HtTreeConfig::default() };
    let map = HtTree::create(&mut a, &alloc, cfg)?;
    let mut ha = map.attach(&mut a, &alloc, cfg)?;
    for k in 0..1000u64 {
        ha.put(&mut a, k, k * k)?;
    }
    // Attach b after the load so its cached tree is fresh.
    let mut hb = map.attach(&mut b, &alloc, cfg)?;
    let before = b.stats();
    for k in 0..1000u64 {
        assert_eq!(hb.get(&mut b, k)?, Some(k * k));
    }
    let delta = b.stats().since(&before);
    let per_op = delta.round_trips as f64 / 1000.0;
    println!(
        "map: 1000 lookups cost {:.3} far accesses each ({} bytes total)",
        per_op, delta.bytes_read
    );
    assert!(per_op < 1.25, "HT-tree lookups are ~ONE far access");

    // --- A far queue (§5.3): lock-free 1-far-access enqueue/dequeue. ---
    let q = FarQueue::create(&mut a, &alloc, QueueConfig::new(1024, 8))?;
    let mut qa = FarQueue::attach(&mut a, q.hdr())?;
    let mut qb = FarQueue::attach(&mut b, q.hdr())?;
    for item in [3u64, 1, 4, 1, 5] {
        qa.enqueue(&mut a, item)?;
    }
    print!("queue drains:");
    while let Ok(v) = qb.dequeue(&mut b) {
        print!(" {v}");
    }
    println!();

    // --- Notifications (§4.3): learn about changes without polling. ---
    let cell = FarCounter::create(&mut a, &alloc, 0, AllocHint::Spread)?;
    cell.watch_equal(&mut b, 3)?;
    for _ in 0..3 {
        cell.increment(&mut a)?;
    }
    let events = b.recv_events();
    println!("b was notified: {events:?}");

    // Final accounting.
    let (sa, sb) = (a.stats(), b.stats());
    println!(
        "\nclient a: {} far round trips, {} messages, {} bytes moved",
        sa.round_trips,
        sa.messages,
        sa.bytes_total()
    );
    println!(
        "client b: {} far round trips, {} notifications, virtual time {:.1} µs",
        sb.round_trips,
        sb.notifications,
        b.now_ns() as f64 / 1000.0
    );
    Ok(())
}
